//! Machine-readable simulator benchmarks: `BENCH_sim.json`.
//!
//! Re-measures the `simulator_throughput` and `policy_overhead` Criterion
//! benches with a plain wall-clock loop and writes the medians as JSON, so
//! CI and the PR trajectory can diff numbers across commits without
//! scraping human-oriented bench output.
//!
//! Run: `cargo run --release -p bbsched-bench --bin bench_sim -- \
//!         [--short] [--out PATH] [--baseline PATH] [--max-regression PCT]`
//!
//! * `--short` shrinks traces/generations to smoke-test sizes (CI); the
//!   emitted JSON is tagged `"mode": "short"` so numbers are not compared
//!   across modes.
//! * `--baseline PATH` embeds a previously emitted file's results under
//!   `"baseline"` and reports per-benchmark `delta_pct`.
//! * `--max-regression PCT` (requires `--baseline`) turns the run into a
//!   regression guard: exit nonzero if any benchmark's best-of-N floor
//!   (`min_s`) exceeds the *baseline median* by more than `PCT`. On a
//!   shared runner the floor is the only stable statistic a single run
//!   produces, and on a quiet machine it sits well below the median — so
//!   noise has headroom while a real slowdown (which lifts the floor past
//!   the old typical time) still fails the build. `delta_pct` keeps
//!   reporting the median-vs-median change. The baseline must have been
//!   produced in the same mode — short and full numbers are not
//!   comparable.

use bbsched_core::pools::PoolState;
use bbsched_core::problem::JobDemand;
use bbsched_policies::{GaParams, PolicyKind};
use bbsched_sched::{AvailabilityProfile, SchedConfig, SchedCore};
use bbsched_sim::{BackfillAlgorithm, BackfillScope, BaseScheduler, SimConfig, Simulator};
use bbsched_workloads::{generate, swf, GeneratorConfig, Job, MachineProfile, Trace};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::Instant;

#[derive(Clone, Debug, Serialize, Deserialize)]
struct BenchEntry {
    /// Benchmark id, `group/case`.
    name: String,
    /// Median seconds per iteration.
    median_s: f64,
    /// Fastest sample (seconds per iteration).
    min_s: f64,
    /// Timing samples taken.
    samples: usize,
    /// Change vs the baseline's median, percent (positive = slower).
    delta_pct: Option<f64>,
    /// Encoded artifact size, for the snapshot wire-format benches
    /// (`snapshot_encode_w50/*`): binary vs JSON is a size claim as much
    /// as a speed claim, so the report carries both.
    #[serde(default)]
    bytes: Option<u64>,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct BenchReport {
    schema: String,
    mode: String,
    results: Vec<BenchEntry>,
    baseline: Option<Vec<BenchEntry>>,
}

/// Median per-iteration seconds of `routine`, batched so each sample runs
/// at least `min_sample_s` of wall clock.
fn measure<O, F: FnMut() -> O>(samples: usize, min_sample_s: f64, mut routine: F) -> (f64, f64) {
    let t0 = Instant::now();
    std::hint::black_box(routine());
    let per_iter = t0.elapsed().as_secs_f64().max(1e-9);
    let batch = ((min_sample_s / per_iter).ceil() as u64).clamp(1, 1_000_000);
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            t.elapsed().as_secs_f64() / batch as f64
        })
        .collect();
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], times[0])
}

fn trace(n: usize) -> (MachineProfile, Trace) {
    let profile = MachineProfile::theta().scaled(0.05);
    let t = generate(
        &profile,
        &GeneratorConfig { n_jobs: n, seed: 21, load_factor: 1.1, ..GeneratorConfig::default() },
    );
    (profile, t)
}

/// Month-scale trace for the `simulate_large` family: a bigger Theta slice
/// (so hundreds of jobs run concurrently and availability profiles carry
/// real segment counts) at a load that keeps the queue deep without
/// diverging.
fn large_trace(n: usize) -> (MachineProfile, Trace) {
    let profile = MachineProfile::theta().scaled(0.2);
    let t = generate(
        &profile,
        &GeneratorConfig { n_jobs: n, seed: 77, load_factor: 1.05, ..GeneratorConfig::default() },
    );
    (profile, t)
}

fn overhead_window(w: usize) -> Vec<JobDemand> {
    let mut rng = SmallRng::seed_from_u64(11);
    (0..w)
        .map(|_| {
            JobDemand::cpu_bb(
                rng.random_range(8..200),
                if rng.random_bool(0.75) { rng.random_range(100.0..30_000.0) } else { 0.0 },
            )
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let short = args.iter().any(|a| a == "--short");
    let opt = |key: &str| {
        args.iter().position(|a| a == key).and_then(|i| args.get(i + 1)).map(String::as_str)
    };
    let out = opt("--out").unwrap_or("BENCH_sim.json").to_string();
    let only = opt("--only").map(str::to_string);
    let max_regression: Option<f64> = opt("--max-regression").map(|v| {
        v.parse().unwrap_or_else(|e| panic!("--max-regression wants a percentage, got '{v}': {e}"))
    });
    let baseline: Option<Vec<BenchEntry>> = opt("--baseline").map(|path| {
        let bytes = std::fs::read(path).unwrap_or_else(|e| panic!("cannot read '{path}': {e}"));
        let report: BenchReport =
            serde_json::from_slice(&bytes).unwrap_or_else(|e| panic!("cannot parse '{path}': {e}"));
        let mode = if short { "short" } else { "full" };
        assert_eq!(report.mode, mode, "baseline '{path}' mode mismatch: numbers not comparable");
        report.results
    });
    if max_regression.is_some() && baseline.is_none() {
        panic!("--max-regression needs --baseline to compare against");
    }

    let (samples, sim_samples) = if short { (7, 5) } else { (7, 7) };
    // Batch the fast simulation cases (sub-ms per run) so one sample is a
    // stable wall-clock chunk; single-iteration samples swing ±30% run to
    // run. The heavy GA cases self-batch via their own cost. Short mode
    // batches too: its minimums feed the CI regression guard.
    let sim_min_s = 0.02;
    let (n_small, n_large) = if short { (60, 120) } else { (200, 500) };
    let (g_sched, g_heavy) = if short { (20, 60) } else { (100, 2_000) };

    let mut results: Vec<BenchEntry> = Vec::new();
    let mut push = |name: &str, samples: usize, min_s: f64, routine: &mut dyn FnMut() -> usize| {
        // `--only SUBSTR` runs the matching subset (iteration speed when
        // chasing one number); subset reports are for eyeballs, not for
        // pinning as baselines.
        if only.as_deref().is_some_and(|f| !name.contains(f)) {
            return;
        }
        let (median_s, min_sample) = measure(samples, min_s, routine);
        eprintln!("{name:<44} {:.4} ms", median_s * 1e3);
        results.push(BenchEntry {
            name: name.to_string(),
            median_s,
            min_s: min_sample,
            samples,
            delta_pct: None,
            bytes: None,
        });
    };
    let mut sizes: Vec<(String, u64)> = Vec::new();

    // --- simulator_throughput ---
    for n in [n_small, n_large] {
        let (profile, t) = trace(n);
        push(&format!("simulate_baseline/{n}"), sim_samples, sim_min_s, &mut || {
            let sim = Simulator::new(&profile.system, &t, SimConfig::default()).unwrap();
            sim.run(PolicyKind::Baseline.build(GaParams::default())).records.len()
        });
    }
    {
        let (profile, t) = trace(n_small);
        let ga = GaParams { generations: g_sched, ..GaParams::default() };
        push(
            &format!("simulate_bbsched_g{g_sched}/{n_small}"),
            sim_samples,
            sim_min_s,
            &mut || {
                let sim = Simulator::new(&profile.system, &t, SimConfig::default()).unwrap();
                sim.run(PolicyKind::BbSched.build(ga)).records.len()
            },
        );
    }
    for (label, scope) in [("window", BackfillScope::Window), ("queue", BackfillScope::Queue)] {
        let (profile, t) = trace(n_large);
        let cfg = SimConfig { backfill: scope, ..SimConfig::default() };
        push(&format!("backfill_scope_{n_large}/{label}"), sim_samples, sim_min_s, &mut || {
            let sim = Simulator::new(&profile.system, &t, cfg.clone()).unwrap();
            sim.run(PolicyKind::Baseline.build(GaParams::default())).records.len()
        });
    }

    // --- simulate_large: 20k-job traces through the pure sim layers ---
    // Baseline policy so queue/backfill/profile machinery dominates the
    // cost; few samples (each iteration is a full month-scale run). The
    // `conservative_rebuild` case drives the same trace through the frozen
    // pre-incremental rebuild-per-pass path — the tentpole's speedup is
    // `conservative_fcfs` vs that reference.
    let n_big = if short { 2_000 } else { 20_000 };
    let big_label = if short { "2k" } else { "20k" };
    let big_samples = 3;
    {
        let (profile, t) = large_trace(n_big);
        // EASY runs the paper's window scope; conservative runs
        // queue-scoped (the textbook discipline reserves for *every*
        // waiting job), which is exactly the deep-profile regime the
        // persistent profile and skyline index target. The rebuild
        // reference uses the same scope as `conservative_fcfs` so the two
        // time the same schedule.
        let combos: [(&str, BaseScheduler, BackfillAlgorithm, BackfillScope); 5] = [
            ("easy_fcfs", BaseScheduler::Fcfs, BackfillAlgorithm::Easy, BackfillScope::Window),
            ("easy_wfp", BaseScheduler::Wfp, BackfillAlgorithm::Easy, BackfillScope::Window),
            (
                "conservative_fcfs",
                BaseScheduler::Fcfs,
                BackfillAlgorithm::Conservative,
                BackfillScope::Queue,
            ),
            (
                "conservative_wfp",
                BaseScheduler::Wfp,
                BackfillAlgorithm::Conservative,
                BackfillScope::Queue,
            ),
            (
                "conservative_rebuild_fcfs",
                BaseScheduler::Fcfs,
                BackfillAlgorithm::ConservativeRebuild,
                BackfillScope::Queue,
            ),
        ];
        for (label, base, algo, scope) in combos {
            let cfg = SimConfig {
                base,
                backfill_algorithm: algo,
                backfill: scope,
                ..SimConfig::default()
            };
            push(&format!("simulate_large/{big_label}_{label}"), big_samples, 0.0, &mut || {
                let sim = Simulator::new(&profile.system, &t, cfg.clone()).unwrap();
                sim.run(PolicyKind::Baseline.build(GaParams::default())).records.len()
            });
        }
        // SWF-derived variant: the same jobs round-tripped through the
        // Standard Workload Format (integer-second submits/runtimes, as a
        // real archive log would have). Conversion happens outside the
        // timed region.
        let swf_trace = swf::parse_swf(&swf::to_swf_string(&t)).expect("SWF round-trip");
        for (label, algo, scope) in [
            ("easy_fcfs", BackfillAlgorithm::Easy, BackfillScope::Window),
            ("conservative_fcfs", BackfillAlgorithm::Conservative, BackfillScope::Queue),
        ] {
            let cfg =
                SimConfig { backfill_algorithm: algo, backfill: scope, ..SimConfig::default() };
            push(&format!("simulate_large/swf{big_label}_{label}"), big_samples, 0.0, &mut || {
                let sim = Simulator::new(&profile.system, &swf_trace, cfg.clone()).unwrap();
                sim.run(PolicyKind::Baseline.build(GaParams::default())).records.len()
            });
        }
    }

    // --- profile_ops: availability-profile query/reserve micro-benches ---
    // Isolates the hierarchical profile index from the simulator: build an
    // S-segment profile (S-1 staggered releases on a large machine), then
    // time `earliest_start` probes and `reserve` carvings directly. Runs
    // in both modes at both sizes — the ops are microseconds either way,
    // so short mode pays nothing for keeping the CI guard's coverage.
    for s in [256usize, 4096] {
        // One single-node running job per future segment plus a little
        // head-room free now: the machine scales with S so both sizes
        // start from the same "nearly drained" shape.
        let nodes_total = u32::try_from(s).unwrap() + 63;
        let mut pool = PoolState::cpu_bb(nodes_total, (s as f64) * 120.0);
        let mut rng = SmallRng::seed_from_u64(1_234);
        let releases: Vec<(f64, JobDemand, bbsched_core::pools::NodeAssignment)> = (1..s)
            .map(|i| {
                let d = JobDemand::cpu_bb(
                    1,
                    if rng.random_bool(0.5) { rng.random_range(10.0..100.0) } else { 0.0 },
                );
                let asn = pool.alloc(&d);
                (i as f64 * 60.0, d, asn)
            })
            .collect();
        let base = AvailabilityProfile::new(0.0, pool, releases);
        assert_eq!(base.segments(), s);
        let probes: Vec<(JobDemand, f64, f64)> = (0..64)
            .map(|_| {
                (
                    JobDemand::cpu_bb(rng.random_range(1..256), rng.random_range(0.0..2_000.0)),
                    rng.random_range(0.0..(s as f64 * 60.0)),
                    rng.random_range(60.0..86_400.0),
                )
            })
            .collect();
        push(&format!("profile_ops/earliest_start_s{s}"), samples, 0.01, &mut || {
            let mut hits = 0usize;
            for (d, from, dur) in &probes {
                if base.earliest_start(d, *from, *dur).is_finite() {
                    hits += 1;
                }
            }
            hits
        });
        push(&format!("profile_ops/reserve_s{s}"), samples, 0.01, &mut || {
            let mut p = base.clone();
            for (d, from, dur) in &probes {
                let t = p.earliest_start(d, *from, *dur);
                if t.is_finite() {
                    p.reserve(d, t, *dur);
                }
            }
            p.segments()
        });
    }

    // --- sched_invoke: one cold six-phase invocation of the service core ---
    // Times the driver-agnostic `SchedCore` directly (no event loop): build
    // a core, submit `w` queued jobs, run a single `invoke(0.0)`. Baseline
    // policy, so the queue ordering / window fill / shadow-and-leftover /
    // backfill machinery dominates rather than the optimizer.
    {
        let profile = MachineProfile::cori().scaled(0.05);
        for w in [20usize, 50] {
            let jobs: Vec<(Job, JobDemand)> = overhead_window(w)
                .into_iter()
                .enumerate()
                .map(|(i, d)| {
                    let job = Job::new(i as u64, 0.0, d.nodes, 1_800.0, 3_600.0).with_bb(d.bb_gb);
                    (job, d)
                })
                .collect();
            push(&format!("sched_invoke_w{w}/Baseline"), samples, 0.01, &mut || {
                let mut core = SchedCore::new(
                    &profile.system,
                    SchedConfig::default(),
                    PolicyKind::Baseline.build(GaParams::default()),
                    Vec::new(),
                )
                .unwrap();
                for (job, demand) in &jobs {
                    core.submit(job.clone(), *demand).unwrap();
                }
                core.invoke(0.0).len()
            });
        }
    }

    // --- queue_resort: kinetic WFP priority maintenance ---
    // Drives `QueueManager` directly: seed `w` waiting jobs, then run 64
    // scheduling invocations at advancing `now`, each re-establishing the
    // exact WFP permutation. `wfp_kinetic` is the engine's path — the
    // certificate index pays per *crossing*, so a quiescent invocation is
    // a heap peek; `wfp_full_resort` is the pre-kinetic discipline (score
    // every job, stable-sort the cached scores) on the same job stream,
    // kept as the honest old-vs-new contrast for DESIGN.md §10.2. Two
    // regimes bracket real workloads: `burst` starts invoking right after
    // the submit window, when every wait is still small and score
    // crossings are dense (the kinetic worst case — the storm guard falls
    // back to the rebuild there); `aged` starts invoking two days later,
    // when the order has largely converged and crossings are sparse (the
    // regime a live queue spends almost all wall-clock time in).
    {
        let mut rng = SmallRng::seed_from_u64(4_242);
        for w in [1_000usize, 10_000] {
            let label = if w == 1_000 { "1k" } else { "10k" };
            let jobs: Vec<Job> = (0..w)
                .map(|i| {
                    let submit = rng.random_range(0.0..7_200.0);
                    let nodes = 1u32 << rng.random_range(0..9);
                    let wall =
                        [300.0, 1_800.0, 3_600.0, 14_400.0, 43_200.0][rng.random_range(0..5usize)];
                    Job::new(i as u64, submit, nodes, wall * 0.7, wall)
                })
                .collect();
            for (regime, start) in [("burst", 7_260.0f64), ("aged", 180_000.0f64)] {
                push(
                    &format!("queue_resort_w{label}/wfp_kinetic_{regime}"),
                    samples,
                    0.02,
                    &mut || {
                        let mut q = bbsched_sched::QueueManager::new(BaseScheduler::Wfp);
                        for i in 0..jobs.len() {
                            q.push(i, &jobs);
                        }
                        let mut acc = 0usize;
                        let mut now = start;
                        for _ in 0..64 {
                            q.order(&jobs, now);
                            acc ^= q.as_slice()[0];
                            now += 30.0;
                        }
                        acc
                    },
                );
                push(
                    &format!("queue_resort_w{label}/wfp_full_resort_{regime}"),
                    samples,
                    0.02,
                    &mut || {
                        let mut q: Vec<usize> = (0..jobs.len()).collect();
                        let mut acc = 0usize;
                        let mut now = start;
                        for _ in 0..64 {
                            BaseScheduler::Wfp.order(&mut q, &jobs, now);
                            acc ^= q[0];
                            now += 30.0;
                        }
                        acc
                    },
                );
            }
        }
    }

    // --- snapshot_restore: the explicit-state round trip (DESIGN.md §12) ---
    // Times extract + JSON wire encode + decode + inject of a warmed core
    // with `w` known jobs: the full cost a checkpoint write plus a resume
    // pays per checkpoint. Kept separate from `sched_invoke` so the guard
    // can show that snapshot plumbing adds nothing to the simulate_* path.
    {
        let profile = MachineProfile::cori().scaled(0.05);
        for w in [20usize, 50] {
            let jobs: Vec<(Job, JobDemand)> = overhead_window(w)
                .into_iter()
                .enumerate()
                .map(|(i, d)| {
                    let job = Job::new(i as u64, 0.0, d.nodes, 1_800.0, 3_600.0).with_bb(d.bb_gb);
                    (job, d)
                })
                .collect();
            let mut core = SchedCore::new(
                &profile.system,
                SchedConfig {
                    backfill_algorithm: BackfillAlgorithm::Conservative,
                    ..SchedConfig::default()
                },
                PolicyKind::Baseline.build(GaParams::default()),
                Vec::new(),
            )
            .unwrap();
            for (job, demand) in &jobs {
                core.submit(job.clone(), *demand).unwrap();
            }
            core.invoke(0.0);
            push(&format!("snapshot_restore_w{w}/Baseline"), samples, 0.01, &mut || {
                let json = core.snapshot().to_json();
                let decoded = bbsched_sched::CoreSnapshot::from_json(&json).unwrap();
                let restored = SchedCore::restore(
                    decoded,
                    PolicyKind::Baseline.build(GaParams::default()),
                    Vec::new(),
                )
                .unwrap();
                restored.jobs_submitted() + json.len()
            });
        }
    }

    // --- snapshot_encode: durability wire encodings (DESIGN.md §13) ---
    // Encode + decode a warmed w50 core snapshot through both checkpoint
    // encodings. JSON is the golden wire form; the length-prefixed binary
    // container trades readability for size (string interning + varints)
    // — the report carries the encoded byte counts so the ≥2× reduction
    // claim is a pinned number, not prose.
    {
        use bbsched_sched::durability::{from_bytes, to_bytes, Encoding};
        let profile = MachineProfile::cori().scaled(0.05);
        let jobs: Vec<(Job, JobDemand)> = overhead_window(50)
            .into_iter()
            .enumerate()
            .map(|(i, d)| {
                let job = Job::new(i as u64, 0.0, d.nodes, 1_800.0, 3_600.0).with_bb(d.bb_gb);
                (job, d)
            })
            .collect();
        let mut core = SchedCore::new(
            &profile.system,
            SchedConfig {
                backfill_algorithm: BackfillAlgorithm::Conservative,
                ..SchedConfig::default()
            },
            PolicyKind::Baseline.build(GaParams::default()),
            Vec::new(),
        )
        .unwrap();
        for (job, demand) in &jobs {
            core.submit(job.clone(), *demand).unwrap();
        }
        core.invoke(0.0);
        let snap = core.snapshot();
        for encoding in [Encoding::Json, Encoding::Binary] {
            let encoded = to_bytes(&snap, encoding);
            eprintln!("snapshot_encode_w50/{encoding}: {} bytes", encoded.len());
            sizes.push((format!("snapshot_encode_w50/{encoding}"), encoded.len() as u64));
            sizes.push((format!("snapshot_decode_w50/{encoding}"), encoded.len() as u64));
            push(&format!("snapshot_encode_w50/{encoding}"), samples, 0.01, &mut || {
                to_bytes(&snap, encoding).len()
            });
            push(&format!("snapshot_decode_w50/{encoding}"), samples, 0.01, &mut || {
                let (decoded, e) =
                    from_bytes::<bbsched_sched::CoreSnapshot>(&encoded).expect("round trip");
                assert_eq!(e, encoding);
                decoded.schema_version as usize
            });
        }
    }

    // --- policy_overhead ---
    let w = overhead_window(50);
    let avail = PoolState::cpu_bb(800, 60_000.0);
    let gens = if short { 50 } else { 500 };
    for kind in PolicyKind::main_roster() {
        let ga = GaParams { generations: gens, ..GaParams::default() };
        let mut policy = kind.build(ga);
        let mut inv = 0u64;
        push(&format!("decision_w50_g{gens}/{}", kind.name()), samples, 0.01, &mut || {
            inv += 1;
            policy.select(std::hint::black_box(&w), &avail, inv).len()
        });
    }
    {
        let ga = GaParams { generations: g_heavy, ..GaParams::default() };
        let mut policy = PolicyKind::BbSched.build(ga);
        let mut inv = 0u64;
        push(&format!("bbsched_g{g_heavy}_w50/BBSched"), samples, 0.01, &mut || {
            inv += 1;
            policy.select(std::hint::black_box(&w), &avail, inv).len()
        });
    }

    for (name, b) in sizes {
        if let Some(entry) = results.iter_mut().find(|e| e.name == name) {
            entry.bytes = Some(b);
        }
    }

    if let Some(base) = &baseline {
        let mut fresh = 0usize;
        for entry in results.iter_mut() {
            if let Some(b) = base.iter().find(|b| b.name == entry.name) {
                entry.delta_pct = Some((entry.median_s / b.median_s - 1.0) * 100.0);
            } else {
                // Not in the baseline: the regression guard cannot cover
                // it. Say so explicitly instead of omitting it silently,
                // so CI output shows the coverage gap until the baseline
                // is re-pinned.
                eprintln!("  {:<44} new (no baseline)", entry.name);
                fresh += 1;
            }
        }
        if fresh > 0 {
            eprintln!(
                "{fresh} benchmark(s) have no baseline entry and are exempt from the \
                 regression guard; re-pin the baseline to cover them"
            );
        }
    }

    let report = BenchReport {
        schema: "bbsched/bench_sim/v1".into(),
        mode: if short { "short" } else { "full" }.into(),
        results,
        baseline,
    };
    let bytes = serde_json::to_vec_pretty(&report).expect("serialize report");
    std::fs::write(&out, bytes).unwrap_or_else(|e| panic!("cannot write '{out}': {e}"));
    println!("wrote {out}");

    if let Some(limit) = max_regression {
        let base = report.baseline.as_deref().expect("guard requires --baseline");
        let regressed: Vec<(&str, f64)> = report
            .results
            .iter()
            .filter_map(|e| {
                let b = base.iter().find(|b| b.name == e.name)?;
                let delta_floor = (e.min_s / b.median_s - 1.0) * 100.0;
                (delta_floor > limit).then_some((e.name.as_str(), delta_floor))
            })
            .collect();
        if !regressed.is_empty() {
            eprintln!("\nregressions above +{limit}% vs baseline (run floor vs baseline median):");
            for (name, delta) in &regressed {
                eprintln!("  {name:<44} {delta:+.1}%");
            }
            std::process::exit(1);
        }
        println!("regression guard passed (every run floor <= baseline median +{limit}%)");
    }
}
