//! Figure 10: breakdown of average job wait time by burst-buffer request
//! (Theta-S4).
//!
//! Paper shape: jobs with burst-buffer requests wait far longer than jobs
//! without; BBSched and the weighted methods cut the waits of
//! BB-requesting jobs most; Constrained_CPU *increases* them (it optimizes
//! nodes only and lets BB jobs pile up).
//!
//! Burst-buffer bins are the paper's 0 / 0–100 TB / 100–200 TB / >200 TB
//! classes, scaled by the machine factor.
//!
//! Run: `cargo run --release -p bbsched-bench --bin fig10_wait_by_bb`

use bbsched_bench::experiments::{cell_result, Machine, Scale};
use bbsched_bench::report::{hours, Table};
use bbsched_metrics::{breakdown_by, Bin, MeasurementWindow};
use bbsched_policies::PolicyKind;
use bbsched_workloads::{Workload, GB_PER_TB};

fn main() {
    let scale = Scale::from_env();
    let f = scale.system_factor;
    let t100 = 100.0 * GB_PER_TB * f;
    let t200 = 200.0 * GB_PER_TB * f;
    let bins = vec![
        Bin::new(0.0, f64::MIN_POSITIVE, "no BB"),
        Bin::new(f64::MIN_POSITIVE, t100, "0-100TB*"),
        Bin::new(t100, t200, "100-200TB*"),
        Bin::new(t200, f64::INFINITY, ">200TB*"),
    ];

    println!(
        "Figure 10: average wait time by burst-buffer request on Theta-S4\n\
         (* paper-scale TB classes, scaled by factor {f})\n"
    );
    let mut table = Table::new(vec!["Method", "no BB", "0-100TB*", "100-200TB*", ">200TB*"]);
    let window = MeasurementWindow::default();
    for kind in PolicyKind::main_roster() {
        let result = cell_result(Machine::Theta, Workload::S4, kind, &scale);
        let (t0, t1) = window.interval(&result.records);
        let measured: Vec<_> =
            result.records.iter().filter(|r| window.contains(r, t0, t1)).cloned().collect();
        let rows = breakdown_by(&measured, &bins, |r| r.bb_gb);
        let mut out = vec![kind.name().to_string()];
        out.extend(rows.iter().map(|(_, avg, n)| format!("{} (n={})", hours(*avg), n)));
        table.row(out);
    }
    table.print();
    println!(
        "\nExpected shape: waits grow with the BB request under every method; BBSched\n\
         and Weighted_BB shrink the BB classes most; Constrained_CPU helps only 'no BB'."
    );
}
