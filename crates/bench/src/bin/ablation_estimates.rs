//! Ablation (beyond the paper): how sensitive are the results to walltime
//! estimate quality?
//!
//! EASY backfilling trusts requested walltimes for its reservations; the
//! paper's companion work (\[15\] in its bibliography) studies exactly this
//! accuracy trade-off. We rewrite Theta-S2's walltimes under four
//! [`bbsched_workloads::EstimateModel`]s and rerun Baseline and BBSched.
//!
//! Run: `cargo run --release -p bbsched-bench --bin ablation_estimates`

use bbsched_bench::experiments::{workload_trace, Machine, Scale};
use bbsched_bench::report::{fixed, pct, Table};
use bbsched_metrics::{MeasurementWindow, MethodSummary};
use bbsched_policies::PolicyKind;
use bbsched_sim::{SimConfig, Simulator};
use bbsched_workloads::{EstimateModel, Workload};

fn main() {
    let scale = Scale::from_env();
    let machine = Machine::Theta;
    let base = workload_trace(machine, Workload::S2, &scale);
    let profile = machine.profile(scale.system_factor);

    let models: [(&str, EstimateModel); 4] = [
        ("exact (oracle)", EstimateModel::Exact),
        ("user x2", EstimateModel::Multiplicative { factor: 2.0, cap: 43_200.0 }),
        ("user x5", EstimateModel::Multiplicative { factor: 5.0, cap: 86_400.0 }),
        ("site max", EstimateModel::SiteMax { limit: 43_200.0 }),
    ];

    println!(
        "Walltime-estimate ablation on Theta-S2 ({} jobs, G={})\n",
        scale.n_jobs, scale.generations
    );
    let mut table = Table::new(vec!["Estimates", "Policy", "Node", "Avg wait (h)", "Backfilled"]);
    for (label, model) in models {
        let trace = model.apply(&base, scale.seed ^ 0xe577);
        for kind in [PolicyKind::Baseline, PolicyKind::BbSched] {
            let mut cfg = SimConfig { base: machine.base(), ..SimConfig::default() };
            cfg.window.size = scale.window;
            let result = Simulator::new(&profile.system, &trace, cfg)
                .expect("setup")
                .run(kind.build(scale.ga()));
            let m = MethodSummary::from_result(&result, MeasurementWindow::default());
            table.row(vec![
                label.to_string(),
                kind.name().to_string(),
                pct(m.node_usage()),
                fixed(m.avg_wait / 3600.0, 2),
                result.backfilled.to_string(),
            ]);
        }
    }
    table.print();
    println!(
        "\nReading: oracle estimates let EASY backfill most aggressively; 'site max'\n\
         disables ends-before-shadow backfilling entirely, so only leftover-fitting\n\
         jobs move up — the cost of lazy walltime requests, quantified."
    );
}
