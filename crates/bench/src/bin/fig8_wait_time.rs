//! Figure 8: average job wait time of all eight methods across all ten
//! workloads (lower is better).
//!
//! Paper shape: all methods beat the baseline; BBSched achieves the
//! largest reductions (up to 33.44% on Cori, 41% on Theta), and the gains
//! grow with burst-buffer pressure (Original -> S4).
//!
//! Run: `cargo run --release -p bbsched-bench --bin fig8_wait_time`

use bbsched_bench::experiments::{cell_summary, Machine, Scale};
use bbsched_bench::figures::{print_metric_grid, reduction_pct};
use bbsched_bench::report::hours;
use bbsched_policies::PolicyKind;
use bbsched_workloads::Workload;

fn main() {
    let scale = Scale::from_env();
    print_metric_grid("Figure 8: average job wait time", &scale, |s| hours(s.avg_wait));

    println!("BBSched wait-time reduction vs Baseline:");
    for machine in Machine::both() {
        let mut best: f64 = f64::NEG_INFINITY;
        for workload in Workload::main_grid() {
            let base = cell_summary(machine, workload, PolicyKind::Baseline, &scale);
            let bb = cell_summary(machine, workload, PolicyKind::BbSched, &scale);
            let red = reduction_pct(base.avg_wait, bb.avg_wait);
            println!("  {}-{}: {red:+.2}%", machine.name(), workload.name());
            best = best.max(red);
        }
        println!(
            "  => best on {}: {best:+.2}% (paper: up to {}%)\n",
            machine.name(),
            if machine == Machine::Cori { "33.44" } else { "41" }
        );
    }
}
