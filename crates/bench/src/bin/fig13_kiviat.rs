//! Figure 13: holistic Kiviat comparison on the main grid.
//!
//! Four axes per method — node usage, burst-buffer usage, 1/avg-wait,
//! 1/avg-slowdown — each normalized to [0, 1] across methods; the polygon
//! area summarizes overall performance ("the larger the area is, the
//! better").
//!
//! Run: `cargo run --release -p bbsched-bench --bin fig13_kiviat`

use bbsched_bench::experiments::{cell_summary, Machine, Scale};
use bbsched_bench::report::{fixed, Table};
use bbsched_metrics::{kiviat_area, normalize_axes, safe_reciprocal};
use bbsched_policies::PolicyKind;
use bbsched_workloads::Workload;

fn main() {
    let scale = Scale::from_env();
    println!("Figure 13: Kiviat areas (node, BB, 1/wait, 1/slowdown; larger = better)\n");

    for machine in Machine::both() {
        let mut header = vec!["Method".to_string()];
        header.extend(
            Workload::main_grid().iter().map(|w| format!("{}-{}", machine.name(), w.name())),
        );
        let mut table = Table::new(header);
        let roster = PolicyKind::main_roster();

        // areas[workload][policy]
        let mut areas = vec![vec![0.0f64; roster.len()]; Workload::main_grid().len()];
        for (wi, workload) in Workload::main_grid().into_iter().enumerate() {
            let summaries: Vec<_> =
                roster.iter().map(|&k| cell_summary(machine, workload, k, &scale)).collect();
            let axis = |vals: Vec<f64>| normalize_axes(&vals);
            let node = axis(summaries.iter().map(|s| s.node_usage()).collect());
            let bb = axis(summaries.iter().map(|s| s.bb_usage()).collect());
            let wait = axis(summaries.iter().map(|s| safe_reciprocal(s.avg_wait)).collect());
            let slow = axis(summaries.iter().map(|s| safe_reciprocal(s.avg_slowdown)).collect());
            for pi in 0..roster.len() {
                areas[wi][pi] = kiviat_area(&[node[pi], bb[pi], wait[pi], slow[pi]]);
            }
        }
        for (pi, kind) in roster.iter().enumerate() {
            let mut row = vec![kind.name().to_string()];
            for area_row in areas.iter().take(Workload::main_grid().len()) {
                row.push(fixed(area_row[pi], 3));
            }
            table.row(row);
        }
        println!("--- {} ---", machine.name());
        table.print();
        println!();
    }
    println!(
        "Expected shape: BBSched has the largest and most balanced area on every workload;\n\
         biased methods shine on one axis and collapse on others; areas of all non-BBSched\n\
         methods shrink as burst-buffer pressure grows (S1 -> S4)."
    );
}
