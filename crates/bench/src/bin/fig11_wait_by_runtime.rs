//! Figure 11: breakdown of average job wait time by job runtime
//! (Theta-S4).
//!
//! Paper shape: wait times rise with runtime (WFP prioritizes short
//! walltimes and EASY backfills short jobs); the optimization methods
//! reduce waits of *long* jobs but can lengthen the *short* jobs' waits —
//! better packing leaves fewer idle holes to backfill into.
//!
//! Run: `cargo run --release -p bbsched-bench --bin fig11_wait_by_runtime`

use bbsched_bench::experiments::{cell_result, Machine, Scale};
use bbsched_bench::report::{hours, Table};
use bbsched_metrics::{breakdown_by, Bin, MeasurementWindow};
use bbsched_policies::PolicyKind;
use bbsched_workloads::Workload;

fn main() {
    let scale = Scale::from_env();
    let h = 3_600.0;
    let bins = vec![
        Bin::new(0.0, h, "<1h"),
        Bin::new(h, 4.0 * h, "1-4h"),
        Bin::new(4.0 * h, 12.0 * h, "4-12h"),
        Bin::new(12.0 * h, f64::INFINITY, ">12h"),
    ];

    println!("Figure 11: average wait time by job runtime on Theta-S4\n");
    let mut table = Table::new(vec!["Method", "<1h", "1-4h", "4-12h", ">12h"]);
    let window = MeasurementWindow::default();
    for kind in PolicyKind::main_roster() {
        let result = cell_result(Machine::Theta, Workload::S4, kind, &scale);
        let (t0, t1) = window.interval(&result.records);
        let measured: Vec<_> =
            result.records.iter().filter(|r| window.contains(r, t0, t1)).cloned().collect();
        let rows = breakdown_by(&measured, &bins, |r| r.runtime);
        let mut out = vec![kind.name().to_string()];
        out.extend(rows.iter().map(|(_, avg, n)| format!("{} (n={})", hours(*avg), n)));
        table.row(out);
    }
    table.print();
    println!(
        "\nExpected shape: waits increase with runtime; optimization methods cut long-job\n\
         waits (better usage) while short jobs lose some backfilling opportunities."
    );
}
