//! Table 3: BBSched performance under different window sizes (10/20/50)
//! on Cori-S4 and Theta-S4.
//!
//! Paper shape: the big improvement is from window 10 to 20; 20 to 50
//! changes little, so "a window size of around 20 is an appropriate
//! option".
//!
//! Run: `cargo run --release -p bbsched-bench --bin table3_window_sensitivity`

use bbsched_bench::experiments::{cell_result_with_window, Machine, Scale};
use bbsched_bench::report::{fixed, pct, Table};
use bbsched_metrics::{MeasurementWindow, MethodSummary};
use bbsched_policies::PolicyKind;
use bbsched_workloads::Workload;

const WINDOWS: [usize; 3] = [10, 20, 50];

fn main() {
    let scale = Scale::from_env();
    println!("Table 3: BBSched under window sizes {WINDOWS:?} (top: Cori-S4, bottom: Theta-S4)\n");

    let mut table = Table::new(vec!["Metric", "w=10", "w=20", "w=50"]);
    for machine in Machine::both() {
        let summaries: Vec<MethodSummary> = WINDOWS
            .iter()
            .map(|&w| {
                let r = cell_result_with_window(
                    machine,
                    Workload::S4,
                    PolicyKind::BbSched,
                    &scale,
                    Some(w),
                );
                MethodSummary::from_result(&r, MeasurementWindow::default())
            })
            .collect();
        let label = |m: &str| format!("{} {}", machine.name(), m);
        table.row(
            std::iter::once(label("CPU usage"))
                .chain(summaries.iter().map(|s| pct(s.node_usage())))
                .collect::<Vec<_>>(),
        );
        table.row(
            std::iter::once(label("BB usage"))
                .chain(summaries.iter().map(|s| pct(s.bb_usage())))
                .collect::<Vec<_>>(),
        );
        table.row(
            std::iter::once(label("Avg wait (s)"))
                .chain(summaries.iter().map(|s| fixed(s.avg_wait, 0)))
                .collect::<Vec<_>>(),
        );
        table.row(
            std::iter::once(label("Avg slowdown"))
                .chain(summaries.iter().map(|s| fixed(s.avg_slowdown, 2)))
                .collect::<Vec<_>>(),
        );
    }
    table.print();
    println!(
        "\nExpected shape: clear gains from w=10 to w=20 on every metric, marginal change\n\
         from w=20 to w=50 — matching the paper's conclusion that w~20 suffices."
    );
}
