//! §4.4 "Scheduling Overheads": per-decision time of every method on a
//! 50-job window (the paper's largest), including BBSched at `G = 2000`.
//!
//! The paper's bar to clear: "Current HPC systems typically require a
//! scheduler to respond in 15-30 seconds"; its measurements: Bin_Packing
//! ~0.1 s at w=50, BBSched under 2 s at G=2000, w=50.
//!
//! Run: `cargo bench -p bbsched-bench --bench policy_overhead`

use bbsched_core::pools::PoolState;
use bbsched_core::problem::JobDemand;
use bbsched_policies::{GaParams, PolicyKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn window(w: usize) -> Vec<JobDemand> {
    let mut rng = SmallRng::seed_from_u64(11);
    (0..w)
        .map(|_| {
            JobDemand::cpu_bb(
                rng.random_range(8..200),
                if rng.random_bool(0.75) { rng.random_range(100.0..30_000.0) } else { 0.0 },
            )
        })
        .collect()
}

fn bench_policies(c: &mut Criterion) {
    let w = window(50);
    let avail = PoolState::cpu_bb(800, 60_000.0);
    let mut group = c.benchmark_group("decision_w50");
    group.sample_size(10);
    for kind in PolicyKind::main_roster() {
        let ga = GaParams { generations: 500, ..GaParams::default() };
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            let mut policy = kind.build(ga);
            let mut inv = 0u64;
            b.iter(|| {
                inv += 1;
                policy.select(std::hint::black_box(&w), &avail, inv).len()
            })
        });
    }
    group.finish();
}

fn bench_bbsched_g2000(c: &mut Criterion) {
    let w = window(50);
    let avail = PoolState::cpu_bb(800, 60_000.0);
    let mut group = c.benchmark_group("bbsched_g2000_w50");
    group.sample_size(10);
    group.bench_function("BBSched", |b| {
        let ga = GaParams { generations: 2_000, ..GaParams::default() };
        let mut policy = PolicyKind::BbSched.build(ga);
        let mut inv = 0u64;
        b.iter(|| {
            inv += 1;
            policy.select(std::hint::black_box(&w), &avail, inv).len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_policies, bench_bbsched_g2000);
criterion_main!(benches);
