//! Criterion bench behind Fig. 2: exhaustive vs genetic solver time as the
//! window grows.
//!
//! Run: `cargo bench -p bbsched-bench --bench solver_time`

use bbsched_core::problem::{JobDemand, KnapsackMooProblem};
use bbsched_core::resource::ResourceModel;
use bbsched_core::{exhaustive, GaConfig, MooGa};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn window(w: usize, seed: u64) -> KnapsackMooProblem {
    let mut rng = SmallRng::seed_from_u64(seed);
    let demands: Vec<JobDemand> = (0..w)
        .map(|_| {
            JobDemand::cpu_bb(
                rng.random_range(8..200),
                if rng.random_bool(0.75) { rng.random_range(100.0..30_000.0) } else { 0.0 },
            )
        })
        .collect();
    KnapsackMooProblem::new(demands, ResourceModel::cpu_bb(800, 60_000.0))
}

fn bench_exhaustive(c: &mut Criterion) {
    let mut group = c.benchmark_group("exhaustive");
    for w in [8usize, 12, 16, 20] {
        let p = window(w, 42);
        group.bench_with_input(BenchmarkId::from_parameter(w), &p, |b, p| {
            b.iter(|| exhaustive::solve(std::hint::black_box(p)).unwrap().len())
        });
    }
    group.finish();
}

fn bench_ga(c: &mut Criterion) {
    let mut group = c.benchmark_group("ga_g500_p20");
    group.sample_size(10);
    for w in [8usize, 20, 50] {
        let p = window(w, 42);
        let solver = MooGa::new(GaConfig::default());
        group.bench_with_input(BenchmarkId::from_parameter(w), &p, |b, p| {
            b.iter(|| solver.solve(std::hint::black_box(p)).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exhaustive, bench_ga);
criterion_main!(benches);
