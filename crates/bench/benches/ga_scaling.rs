//! GA scaling ablations behind Fig. 4 and §3.3:
//!
//! * cost is `O(G × P)` — time scales linearly in each;
//! * parallel population evaluation (scoped threads) vs serial, which only pays
//!   off for large windows/populations (§3.2.2's "can be accelerated by
//!   leveraging parallel processing").
//!
//! Run: `cargo bench -p bbsched-bench --bench ga_scaling`

use bbsched_core::problem::{JobDemand, KnapsackMooProblem};
use bbsched_core::resource::ResourceModel;
use bbsched_core::{GaConfig, MooGa};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn window(w: usize) -> KnapsackMooProblem {
    let mut rng = SmallRng::seed_from_u64(7);
    let demands: Vec<JobDemand> = (0..w)
        .map(|_| JobDemand::cpu_bb(rng.random_range(8..200), rng.random_range(0.0..30_000.0)))
        .collect();
    KnapsackMooProblem::new(demands, ResourceModel::cpu_bb(800, 60_000.0))
}

fn bench_generations(c: &mut Criterion) {
    let p = window(20);
    let mut group = c.benchmark_group("generations_p20");
    group.sample_size(10);
    for g in [100usize, 250, 500, 1000] {
        let solver = MooGa::new(GaConfig { generations: g, ..GaConfig::default() });
        group.bench_with_input(BenchmarkId::from_parameter(g), &solver, |b, s| {
            b.iter(|| s.solve(std::hint::black_box(&p)).len())
        });
    }
    group.finish();
}

fn bench_population(c: &mut Criterion) {
    let p = window(20);
    let mut group = c.benchmark_group("population_g500");
    group.sample_size(10);
    for pop in [10usize, 20, 50, 100] {
        let solver = MooGa::new(GaConfig { population: pop, ..GaConfig::default() });
        group.bench_with_input(BenchmarkId::from_parameter(pop), &solver, |b, s| {
            b.iter(|| s.solve(std::hint::black_box(&p)).len())
        });
    }
    group.finish();
}

fn bench_parallel(c: &mut Criterion) {
    // Honest negative result: even at w=256/P=128 the per-generation
    // thread spawns cost more than the cheap knapsack evaluations save;
    // parallelism only pays for expensive evaluate() implementations.
    let p = window(256);
    let mut group = c.benchmark_group("parallel_w256_p128");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let solver = MooGa::new(GaConfig {
            population: 128,
            generations: 100,
            threads,
            ..GaConfig::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(threads), &solver, |b, s| {
            b.iter(|| s.solve(std::hint::black_box(&p)).len())
        });
    }
    group.finish();
}

fn bench_saturation(c: &mut Criterion) {
    // Saturation polish costs O(w) feasibility checks per child; measure
    // the overhead (its GD payoff is printed by examples/parameter_tuning
    // and tested in core).
    let p = window(20);
    let mut group = c.benchmark_group("saturation_w20_g500");
    group.sample_size(10);
    for (label, saturate) in [("plain", false), ("saturate", true)] {
        let solver = MooGa::new(GaConfig { saturate, ..GaConfig::default() });
        group.bench_function(label, |b| b.iter(|| solver.solve(std::hint::black_box(&p)).len()));
    }
    group.finish();
}

criterion_group!(benches, bench_generations, bench_population, bench_parallel, bench_saturation);
criterion_main!(benches);
