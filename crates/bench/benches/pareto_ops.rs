//! Micro-benchmarks of the MOO core primitives: dominance tests, Pareto
//! front maintenance, chromosome operations, and repair — the inner loops
//! behind every scheduling decision.
//!
//! Run: `cargo bench -p bbsched-bench --bench pareto_ops`

use bbsched_core::chromosome::Chromosome;
use bbsched_core::pareto::{dominates, ParetoFront, Solution};
use bbsched_core::problem::{JobDemand, KnapsackMooProblem, MooProblem};
use bbsched_core::resource::ResourceModel;
use bbsched_core::Objectives;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_points(n: usize, seed: u64) -> Vec<[f64; 2]> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| [rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)]).collect()
}

fn bench_dominates(c: &mut Criterion) {
    let pts = random_points(1_000, 3);
    c.bench_function("dominates_1k_pairs", |b| {
        b.iter(|| {
            let mut count = 0usize;
            for pair in pts.windows(2) {
                if dominates(&pair[0], &pair[1]) {
                    count += 1;
                }
            }
            count
        })
    });
}

fn bench_front_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("front_from_pool");
    for n in [40usize, 200, 1_000] {
        let pts = random_points(n, 9);
        group.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| {
                let mut front = ParetoFront::new();
                for (i, p) in pts.iter().enumerate() {
                    let mut chrom = Chromosome::zeros(16);
                    chrom.set(i % 16, true);
                    front.insert(Solution {
                        chromosome: chrom,
                        objectives: Objectives::from_slice(p),
                    });
                }
                front.len()
            })
        });
    }
    group.finish();
}

fn bench_chromosome_ops(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(5);
    let mut a = Chromosome::zeros(64);
    let mut b2 = Chromosome::zeros(64);
    for i in 0..64 {
        if rng.random_bool(0.5) {
            a.set(i, true);
        }
        if rng.random_bool(0.5) {
            b2.set(i, true);
        }
    }
    c.bench_function("crossover_w64", |b| {
        b.iter(|| {
            let (x, y) = a.crossover(&b2, 32);
            x.count_ones() + y.count_ones()
        })
    });
    c.bench_function("selected_iter_w64", |b| b.iter(|| a.selected().sum::<usize>()));
}

fn bench_repair(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(13);
    let demands: Vec<JobDemand> = (0..50)
        .map(|_| JobDemand::cpu_bb(rng.random_range(8..200), rng.random_range(0.0..30_000.0)))
        .collect();
    // Tight capacity: nearly everything needs repair.
    let problem = KnapsackMooProblem::new(demands, ResourceModel::cpu_bb(300, 20_000.0));
    let mut over = Chromosome::zeros(50);
    for i in 0..50 {
        over.set(i, true);
    }
    c.bench_function("repair_w50_oversubscribed", |b| {
        b.iter(|| {
            let mut x = over.clone();
            problem.repair(&mut x);
            x.count_ones()
        })
    });
}

criterion_group!(benches, bench_dominates, bench_front_insert, bench_chromosome_ops, bench_repair);
criterion_main!(benches);
