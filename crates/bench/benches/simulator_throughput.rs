//! Simulator throughput: end-to-end events per second for small traces
//! under cheap (Baseline) and expensive (BBSched) policies, plus the
//! backfill-scope ablation.
//!
//! Run: `cargo bench -p bbsched-bench --bench simulator_throughput`

use bbsched_policies::{GaParams, PolicyKind};
use bbsched_sim::{BackfillScope, SimConfig, Simulator};
use bbsched_workloads::{generate, GeneratorConfig, MachineProfile, Trace};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn trace(n: usize) -> (MachineProfile, Trace) {
    let profile = MachineProfile::theta().scaled(0.05);
    let t = generate(
        &profile,
        &GeneratorConfig { n_jobs: n, seed: 21, load_factor: 1.1, ..GeneratorConfig::default() },
    );
    (profile, t)
}

fn bench_baseline_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_baseline");
    group.sample_size(10);
    for n in [200usize, 500] {
        let (profile, t) = trace(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &t, |b, t| {
            b.iter(|| {
                let sim = Simulator::new(&profile.system, t, SimConfig::default()).unwrap();
                sim.run(PolicyKind::Baseline.build(GaParams::default())).records.len()
            })
        });
    }
    group.finish();
}

fn bench_bbsched_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_bbsched_g100");
    group.sample_size(10);
    let (profile, t) = trace(200);
    let ga = GaParams { generations: 100, ..GaParams::default() };
    group.bench_function("n200", |b| {
        b.iter(|| {
            let sim = Simulator::new(&profile.system, &t, SimConfig::default()).unwrap();
            sim.run(PolicyKind::BbSched.build(ga)).records.len()
        })
    });
    group.finish();
}

fn bench_backfill_scope(c: &mut Criterion) {
    let mut group = c.benchmark_group("backfill_scope_n500");
    group.sample_size(10);
    let (profile, t) = trace(500);
    for (label, scope) in [("window", BackfillScope::Window), ("queue", BackfillScope::Queue)] {
        let cfg = SimConfig { backfill: scope, ..SimConfig::default() };
        group.bench_function(label, |b| {
            b.iter(|| {
                let sim = Simulator::new(&profile.system, &t, cfg.clone()).unwrap();
                sim.run(PolicyKind::Baseline.build(GaParams::default())).records.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baseline_sim, bench_bbsched_sim, bench_backfill_scope);
criterion_main!(benches);
