//! Breakdown tables: average wait time grouped into bins (Figs. 9–11).
//!
//! Fig. 9 breaks average wait down by job size, Fig. 10 by burst-buffer
//! request, Fig. 11 by job runtime — all on Theta-S4. [`breakdown_by`] is
//! the shared engine; the bench harness supplies the paper's bin edges.

use bbsched_sched::JobRecord;
use serde::{Deserialize, Serialize};

/// A half-open value bin `[lo, hi)` with a display label.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Bin {
    /// Inclusive lower edge.
    pub lo: f64,
    /// Exclusive upper edge (`f64::INFINITY` for the last bin).
    pub hi: f64,
    /// Label shown in the harness output ("1-8", ">200TB", ...).
    pub label: String,
}

impl Bin {
    /// Creates a bin.
    pub fn new(lo: f64, hi: f64, label: impl Into<String>) -> Self {
        Self { lo, hi, label: label.into() }
    }

    /// Whether `v` falls in this bin.
    pub fn contains(&self, v: f64) -> bool {
        v >= self.lo && v < self.hi
    }
}

/// Builds contiguous bins from edges: `edges = [a, b, c]` gives
/// `[a, b)`, `[b, c)`, `[c, inf)`.
pub fn bins_from_edges(edges: &[f64], labels: &[&str]) -> Vec<Bin> {
    assert_eq!(edges.len(), labels.len(), "one label per lower edge");
    edges
        .iter()
        .enumerate()
        .map(|(i, &lo)| {
            let hi = edges.get(i + 1).copied().unwrap_or(f64::INFINITY);
            Bin::new(lo, hi, labels[i])
        })
        .collect()
}

/// Average wait time per bin: `key` extracts the binning value from a
/// record. Returns `(label, average wait, count)` rows, preserving bin
/// order; empty bins report an average of 0.
pub fn breakdown_by<K>(records: &[JobRecord], bins: &[Bin], key: K) -> Vec<(String, f64, usize)>
where
    K: Fn(&JobRecord) -> f64,
{
    let mut total = vec![0.0f64; bins.len()];
    let mut count = vec![0usize; bins.len()];
    for r in records {
        let v = key(r);
        if let Some(bi) = bins.iter().position(|b| b.contains(v)) {
            total[bi] += r.wait();
            count[bi] += 1;
        }
    }
    bins.iter()
        .enumerate()
        .map(|(i, b)| {
            let avg = if count[i] == 0 { 0.0 } else { total[i] / count[i] as f64 };
            (b.label.clone(), avg, count[i])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbsched_core::pools::NodeAssignment;
    use bbsched_sched::StartReason;

    fn rec(nodes: u32, wait: f64) -> JobRecord {
        JobRecord {
            id: 0,
            submit: 0.0,
            start: wait,
            end: wait + 100.0,
            runtime: 100.0,
            walltime: 200.0,
            nodes,
            bb_gb: 0.0,
            ssd_gb_per_node: 0.0,
            extra: [0.0; bbsched_core::resource::MAX_EXTRA],
            assignment: NodeAssignment::default(),
            wasted_ssd_gb: 0.0,
            reason: StartReason::Policy,
        }
    }

    #[test]
    fn bin_membership() {
        let b = Bin::new(1.0, 9.0, "1-8");
        assert!(b.contains(1.0));
        assert!(b.contains(8.9));
        assert!(!b.contains(9.0));
        assert!(!b.contains(0.5));
    }

    #[test]
    fn edges_build_contiguous_bins() {
        let bins = bins_from_edges(&[1.0, 9.0, 129.0], &["1-8", "9-128", ">128"]);
        assert_eq!(bins.len(), 3);
        assert!(bins[2].contains(1e12));
        assert_eq!(bins[1].label, "9-128");
    }

    #[test]
    fn averages_group_correctly() {
        let records = vec![rec(4, 10.0), rec(4, 30.0), rec(64, 100.0), rec(2048, 500.0)];
        let bins = bins_from_edges(&[1.0, 9.0, 1025.0], &["1-8", "9-1024", ">1024"]);
        let rows = breakdown_by(&records, &bins, |r| f64::from(r.nodes));
        assert_eq!(rows[0], ("1-8".into(), 20.0, 2));
        assert_eq!(rows[1], ("9-1024".into(), 100.0, 1));
        assert_eq!(rows[2], (">1024".into(), 500.0, 1));
    }

    #[test]
    fn empty_bins_report_zero() {
        let bins = bins_from_edges(&[1.0, 100.0], &["small", "big"]);
        let rows = breakdown_by(&[], &bins, |r| f64::from(r.nodes));
        assert_eq!(rows[0].1, 0.0);
        assert_eq!(rows[0].2, 0);
    }

    #[test]
    fn out_of_range_values_are_dropped() {
        let records = vec![rec(0, 10.0)]; // nodes 0 below the first edge
        let bins = bins_from_edges(&[1.0], &["all"]);
        let rows = breakdown_by(&records, &bins, |r| f64::from(r.nodes));
        assert_eq!(rows[0].2, 0);
    }
}
