//! Distribution statistics beyond the paper's averages: percentiles,
//! fairness, and utilization timelines.
//!
//! Averages hide tails; production scheduler studies routinely report
//! P90/P99 waits and per-user fairness alongside them. These helpers
//! extend the §4.2 metric set without changing it.

use crate::usage::{capacity, slot_amount, slot_of, UsageKind};
use bbsched_sched::JobRecord;
use bbsched_workloads::SystemConfig;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// Linear-interpolated percentile of `values` (p in `[0, 100]`).
///
/// NaN samples carry no order information and are dropped before
/// ranking; the percentile is computed over the finite-ordered remainder.
/// Returns `None` for an empty slice or when every sample is NaN.
///
/// # Panics
/// Panics if `p` is outside `[0, 100]`.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        // Exact rank: no interpolation (which would produce NaN for
        // infinite samples via `inf - inf`).
        return Some(sorted[lo]);
    }
    let frac = rank - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Summary of a wait-time (or any nonnegative) distribution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DistributionStats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (P50).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl DistributionStats {
    /// Computes the summary; all fields are zero for empty input.
    pub fn from_values(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self::default();
        }
        Self {
            count: values.len(),
            mean: values.iter().sum::<f64>() / values.len() as f64,
            p50: percentile(values, 50.0).unwrap_or(0.0),
            p90: percentile(values, 90.0).unwrap_or(0.0),
            p99: percentile(values, 99.0).unwrap_or(0.0),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Wait-time stats of a record set.
    pub fn of_waits(records: &[JobRecord]) -> Self {
        let waits: Vec<f64> = records.iter().map(JobRecord::wait).collect();
        Self::from_values(&waits)
    }

    /// Slowdown stats of a record set, filtering jobs shorter than
    /// `min_runtime` as in §4.2.
    pub fn of_slowdowns(records: &[JobRecord], min_runtime: f64) -> Self {
        let s: Vec<f64> =
            records.iter().filter(|r| r.runtime >= min_runtime).map(JobRecord::slowdown).collect();
        Self::from_values(&s)
    }
}

/// Jain's fairness index over per-job slowdowns:
/// `(Σx)² / (n·Σx²)` — 1.0 means perfectly equal service, `1/n` means one
/// job got everything. HPC scheduling sacrifices fairness for utilization
/// (§2.3 discusses the tension); this quantifies how much.
pub fn jains_fairness(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|v| v * v).sum();
    if sum_sq <= 0.0 {
        return 1.0;
    }
    sum * sum / (values.len() as f64 * sum_sq)
}

/// Piecewise utilization timeline of a resource: samples `[t0, t1]` at
/// `dt` intervals, each sample the instantaneous occupied fraction.
pub fn utilization_timeline(
    records: &[JobRecord],
    system: &SystemConfig,
    kind: UsageKind,
    t0: f64,
    t1: f64,
    dt: f64,
) -> Vec<(f64, f64)> {
    assert!(dt > 0.0, "dt must be positive");
    let cap = capacity(system, kind);
    if cap <= 0.0 || t1 <= t0 {
        return Vec::new();
    }
    let slot = slot_of(system, kind);
    let amount = |r: &JobRecord| match slot {
        Some(s) => slot_amount(r, s),
        None => r.wasted_ssd_gb,
    };
    let n = ((t1 - t0) / dt).ceil() as usize + 1;
    let mut out = Vec::with_capacity(n);
    let mut t = t0;
    while t <= t1 + 1e-9 {
        let used: f64 = records.iter().filter(|r| r.start <= t && t < r.end).map(&amount).sum();
        out.push((t, used / cap));
        t += dt;
    }
    out
}

/// Writes a `(time, value)` series as a two-column CSV.
pub fn write_timeline_csv(series: &[(f64, f64)], path: &Path) -> std::io::Result<()> {
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "time_s,utilization")?;
    for (t, v) in series {
        writeln!(w, "{t},{v}")?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbsched_core::pools::NodeAssignment;
    use bbsched_sched::StartReason;

    fn rec(submit: f64, start: f64, runtime: f64, nodes: u32) -> JobRecord {
        JobRecord {
            id: 0,
            submit,
            start,
            end: start + runtime,
            runtime,
            walltime: runtime,
            nodes,
            bb_gb: 0.0,
            ssd_gb_per_node: 0.0,
            extra: [0.0; bbsched_core::resource::MAX_EXTRA],
            assignment: NodeAssignment::default(),
            wasted_ssd_gb: 0.0,
            reason: StartReason::Policy,
        }
    }

    #[test]
    fn percentile_basics() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 50.0), Some(3.0));
        assert_eq!(percentile(&v, 100.0), Some(5.0));
        assert_eq!(percentile(&v, 25.0), Some(2.0));
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[7.0], 99.0), Some(7.0));
    }

    #[test]
    fn percentile_interpolates() {
        let v = [0.0, 10.0];
        assert_eq!(percentile(&v, 50.0), Some(5.0));
        assert_eq!(percentile(&v, 75.0), Some(7.5));
    }

    /// Regression: NaN samples used to panic inside the sort comparator.
    /// They are now filtered explicitly, and an all-NaN input propagates
    /// `None` instead of crashing the metrics path.
    #[test]
    fn percentile_handles_nan_without_panicking() {
        let v = [3.0, f64::NAN, 1.0, 2.0, f64::NAN];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 50.0), Some(2.0));
        assert_eq!(percentile(&v, 100.0), Some(3.0));
        assert_eq!(percentile(&[f64::NAN, f64::NAN], 50.0), None);
        // Infinities are ordered values, not dropped.
        assert_eq!(
            percentile(&[f64::NEG_INFINITY, 0.0, f64::INFINITY], 0.0),
            Some(f64::NEG_INFINITY)
        );
        // DistributionStats rides the same path.
        let s = DistributionStats::from_values(&[f64::NAN, 4.0, 2.0]);
        assert_eq!(s.p50, 3.0);
    }

    #[test]
    fn distribution_stats() {
        let records: Vec<JobRecord> =
            (0..10).map(|i| rec(0.0, i as f64 * 10.0, 100.0, 1)).collect();
        let s = DistributionStats::of_waits(&records);
        assert_eq!(s.count, 10);
        assert_eq!(s.mean, 45.0);
        assert_eq!(s.p50, 45.0);
        assert_eq!(s.max, 90.0);
    }

    #[test]
    fn slowdown_stats_filter_short_jobs() {
        let records = vec![rec(0.0, 100.0, 1.0, 1), rec(0.0, 100.0, 100.0, 1)];
        let s = DistributionStats::of_slowdowns(&records, 60.0);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn fairness_index() {
        assert_eq!(jains_fairness(&[2.0, 2.0, 2.0]), 1.0);
        let skewed = jains_fairness(&[10.0, 0.0, 0.0]);
        assert!((skewed - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jains_fairness(&[]), 1.0);
        assert_eq!(jains_fairness(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn timeline_tracks_occupancy() {
        let sys = SystemConfig {
            name: "t".into(),
            nodes: 10,
            bb_gb: 0.0,
            bb_reserved_gb: 0.0,
            nodes_128: 0,
            nodes_256: 0,
            extra_resources: Vec::new(),
        };
        let records = vec![rec(0.0, 0.0, 50.0, 10), rec(0.0, 50.0, 50.0, 5)];
        let tl = utilization_timeline(&records, &sys, UsageKind::Nodes, 0.0, 100.0, 25.0);
        assert_eq!(tl.len(), 5);
        assert_eq!(tl[0], (0.0, 1.0));
        assert_eq!(tl[2], (50.0, 0.5));
        assert_eq!(tl[4], (100.0, 0.0));
    }

    #[test]
    fn timeline_csv_roundtrip() {
        let dir = std::env::temp_dir().join(format!("bbsched_tl_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tl.csv");
        write_timeline_csv(&[(0.0, 0.5), (10.0, 1.0)], &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("time_s,utilization\n"));
        assert!(text.contains("10,1"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
