//! Resource usage integrals (§4.2).
//!
//! "Node usage measures the ratio of the used node-hours for useful job
//! execution to the elapsed node-hours" (and likewise for burst buffer and
//! local SSD). Usage is computed over a measurement interval `[t0, t1]`
//! by integrating each job's occupancy clipped to the interval.

use bbsched_core::resource::{DemandSlot, ResourceKind};
use bbsched_sched::JobRecord;
use bbsched_workloads::SystemConfig;

/// Which resource to integrate.
///
/// The named variants cover the paper's resources; [`UsageKind::Resource`]
/// and [`UsageKind::ResourceWaste`] address any resource by its index in
/// the system's [`SystemConfig::resource_model`] order (including extra
/// registered resources), which is how per-resource series are built.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UsageKind {
    /// Compute nodes.
    Nodes,
    /// Shared burst buffer (GB), relative to usable (non-reserved) capacity.
    BurstBuffer,
    /// Local SSD capacity actually requested (GB × nodes).
    LocalSsdUsed,
    /// Local SSD capacity wasted (assigned minus requested).
    LocalSsdWasted,
    /// Requested capacity of resource `r` (resource-model order).
    Resource(usize),
    /// Wasted capacity of per-node resource `r` (assigned minus requested).
    ResourceWaste(usize),
}

/// Occupied amount of the demand slot while `r` runs. Per-node slots count
/// capacity over all of the job's nodes.
pub(crate) fn slot_amount(r: &JobRecord, slot: DemandSlot) -> f64 {
    match slot {
        DemandSlot::Nodes => f64::from(r.nodes),
        DemandSlot::BbGb => r.bb_gb,
        DemandSlot::SsdPerNode => r.ssd_gb_per_node * f64::from(r.nodes),
        DemandSlot::Extra(i) => r.extra.get(usize::from(i)).copied().unwrap_or(0.0),
    }
}

/// The demand slot a kind integrates, or `None` for waste kinds (which
/// integrate the record's wasted capacity instead).
pub(crate) fn slot_of(system: &SystemConfig, kind: UsageKind) -> Option<DemandSlot> {
    match kind {
        UsageKind::Nodes => Some(DemandSlot::Nodes),
        UsageKind::BurstBuffer => Some(DemandSlot::BbGb),
        UsageKind::LocalSsdUsed => Some(DemandSlot::SsdPerNode),
        UsageKind::LocalSsdWasted | UsageKind::ResourceWaste(_) => None,
        UsageKind::Resource(i) => system.resource_model().specs().get(i).map(|s| s.slot),
    }
}

/// System capacity for the given resource (0 when the index is out of
/// range, making the usage ratio 0 rather than a panic).
pub fn capacity(system: &SystemConfig, kind: UsageKind) -> f64 {
    match kind {
        UsageKind::Nodes => f64::from(system.nodes),
        UsageKind::BurstBuffer => system.bb_usable_gb(),
        UsageKind::LocalSsdUsed | UsageKind::LocalSsdWasted => {
            f64::from(system.nodes_128) * 128.0 + f64::from(system.nodes_256) * 256.0
        }
        UsageKind::Resource(i) | UsageKind::ResourceWaste(i) => {
            match system.resource_model().specs().get(i) {
                Some(s) => match &s.kind {
                    ResourceKind::Pooled => s.available,
                    ResourceKind::PerNode { flavors } => flavors.total_capacity(),
                },
                None => 0.0,
            }
        }
    }
}

/// Usage ratio of a resource over `[t0, t1]`: integrated occupancy divided
/// by `capacity × (t1 - t0)`. Returns 0 for empty intervals or zero
/// capacity.
pub fn resource_usage(
    records: &[JobRecord],
    system: &SystemConfig,
    kind: UsageKind,
    t0: f64,
    t1: f64,
) -> f64 {
    let span = t1 - t0;
    let cap = capacity(system, kind);
    if span <= 0.0 || cap <= 0.0 {
        return 0.0;
    }
    let slot = slot_of(system, kind);
    let mut used = 0.0;
    for r in records {
        let overlap = (r.end.min(t1) - r.start.max(t0)).max(0.0);
        if overlap > 0.0 {
            let amount = match slot {
                Some(s) => slot_amount(r, s),
                None => r.wasted_ssd_gb,
            };
            used += amount * overlap;
        }
    }
    used / (cap * span)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbsched_core::pools::NodeAssignment;
    use bbsched_sched::StartReason;

    fn sys() -> SystemConfig {
        SystemConfig {
            name: "t".into(),
            nodes: 10,
            bb_gb: 100.0,
            bb_reserved_gb: 0.0,
            nodes_128: 5,
            nodes_256: 5,
            extra_resources: Vec::new(),
        }
    }

    fn rec(start: f64, end: f64, nodes: u32, bb: f64) -> JobRecord {
        JobRecord {
            id: 0,
            submit: start,
            start,
            end,
            runtime: end - start,
            walltime: end - start,
            nodes,
            bb_gb: bb,
            ssd_gb_per_node: 32.0,
            extra: [0.0; bbsched_core::resource::MAX_EXTRA],
            assignment: NodeAssignment::two_tier(nodes.min(5), nodes.saturating_sub(5)),
            wasted_ssd_gb: 10.0,
            reason: StartReason::Policy,
        }
    }

    #[test]
    fn full_occupancy_is_one() {
        let records = vec![rec(0.0, 100.0, 10, 100.0)];
        assert_eq!(resource_usage(&records, &sys(), UsageKind::Nodes, 0.0, 100.0), 1.0);
        assert_eq!(resource_usage(&records, &sys(), UsageKind::BurstBuffer, 0.0, 100.0), 1.0);
    }

    #[test]
    fn half_time_half_usage() {
        let records = vec![rec(0.0, 50.0, 10, 0.0)];
        assert_eq!(resource_usage(&records, &sys(), UsageKind::Nodes, 0.0, 100.0), 0.5);
    }

    #[test]
    fn clipping_at_window_edges() {
        // Job runs 50..150; window 100..200 -> only 50 s of 10 nodes count.
        let records = vec![rec(50.0, 150.0, 10, 0.0)];
        let u = resource_usage(&records, &sys(), UsageKind::Nodes, 100.0, 200.0);
        assert_eq!(u, 0.5);
    }

    #[test]
    fn no_overlap_counts_zero() {
        let records = vec![rec(0.0, 10.0, 10, 0.0)];
        assert_eq!(resource_usage(&records, &sys(), UsageKind::Nodes, 20.0, 30.0), 0.0);
    }

    #[test]
    fn ssd_usage_and_waste() {
        let records = vec![rec(0.0, 100.0, 4, 0.0)];
        // capacity = 5*128 + 5*256 = 1920; used = 4 nodes x 32 GB = 128.
        let used = resource_usage(&records, &sys(), UsageKind::LocalSsdUsed, 0.0, 100.0);
        assert!((used - 128.0 / 1920.0).abs() < 1e-12);
        let wasted = resource_usage(&records, &sys(), UsageKind::LocalSsdWasted, 0.0, 100.0);
        assert!((wasted - 10.0 / 1920.0).abs() < 1e-12);
    }

    #[test]
    fn indexed_kinds_agree_with_named_kinds() {
        let records = vec![rec(0.0, 100.0, 4, 30.0)];
        let s = sys();
        // Model order: 0 = nodes, 1 = bb_gb, 2 = ssd.
        for (named, indexed) in [
            (UsageKind::Nodes, UsageKind::Resource(0)),
            (UsageKind::BurstBuffer, UsageKind::Resource(1)),
            (UsageKind::LocalSsdUsed, UsageKind::Resource(2)),
            (UsageKind::LocalSsdWasted, UsageKind::ResourceWaste(2)),
        ] {
            assert_eq!(
                resource_usage(&records, &s, named, 0.0, 100.0),
                resource_usage(&records, &s, indexed, 0.0, 100.0),
                "{named:?} vs {indexed:?}"
            );
        }
        // Out-of-range indices are harmless.
        assert_eq!(resource_usage(&records, &s, UsageKind::Resource(9), 0.0, 100.0), 0.0);
    }

    #[test]
    fn extra_resources_integrate() {
        let mut s = sys();
        s = s.with_extra_resource("gpus", 8.0);
        let mut r = rec(0.0, 100.0, 4, 0.0);
        r.extra[0] = 4.0;
        // gpus is resource index 3 (after nodes, bb_gb, ssd).
        let u = resource_usage(&[r], &s, UsageKind::Resource(3), 0.0, 100.0);
        assert!((u - 0.5).abs() < 1e-12);
        assert_eq!(capacity(&s, UsageKind::Resource(3)), 8.0);
    }

    #[test]
    fn degenerate_inputs() {
        let records = vec![rec(0.0, 100.0, 10, 0.0)];
        assert_eq!(resource_usage(&records, &sys(), UsageKind::Nodes, 50.0, 50.0), 0.0);
        let mut no_bb = sys();
        no_bb.bb_gb = 0.0;
        assert_eq!(resource_usage(&records, &no_bb, UsageKind::BurstBuffer, 0.0, 1.0), 0.0);
    }
}
