//! Resource usage integrals (§4.2).
//!
//! "Node usage measures the ratio of the used node-hours for useful job
//! execution to the elapsed node-hours" (and likewise for burst buffer and
//! local SSD). Usage is computed over a measurement interval `[t0, t1]`
//! by integrating each job's occupancy clipped to the interval.

use bbsched_sim::JobRecord;
use bbsched_workloads::SystemConfig;

/// Which resource to integrate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UsageKind {
    /// Compute nodes.
    Nodes,
    /// Shared burst buffer (GB), relative to usable (non-reserved) capacity.
    BurstBuffer,
    /// Local SSD capacity actually requested (GB × nodes).
    LocalSsdUsed,
    /// Local SSD capacity wasted (assigned minus requested).
    LocalSsdWasted,
}

/// Occupied amount of the given resource while `r` runs.
fn amount(r: &JobRecord, kind: UsageKind) -> f64 {
    match kind {
        UsageKind::Nodes => f64::from(r.nodes),
        UsageKind::BurstBuffer => r.bb_gb,
        UsageKind::LocalSsdUsed => r.ssd_gb_per_node * f64::from(r.nodes),
        UsageKind::LocalSsdWasted => r.wasted_ssd_gb,
    }
}

/// System capacity for the given resource.
pub fn capacity(system: &SystemConfig, kind: UsageKind) -> f64 {
    match kind {
        UsageKind::Nodes => f64::from(system.nodes),
        UsageKind::BurstBuffer => system.bb_usable_gb(),
        UsageKind::LocalSsdUsed | UsageKind::LocalSsdWasted => {
            f64::from(system.nodes_128) * 128.0 + f64::from(system.nodes_256) * 256.0
        }
    }
}

/// Usage ratio of a resource over `[t0, t1]`: integrated occupancy divided
/// by `capacity × (t1 - t0)`. Returns 0 for empty intervals or zero
/// capacity.
pub fn resource_usage(
    records: &[JobRecord],
    system: &SystemConfig,
    kind: UsageKind,
    t0: f64,
    t1: f64,
) -> f64 {
    let span = t1 - t0;
    let cap = capacity(system, kind);
    if span <= 0.0 || cap <= 0.0 {
        return 0.0;
    }
    let mut used = 0.0;
    for r in records {
        let overlap = (r.end.min(t1) - r.start.max(t0)).max(0.0);
        if overlap > 0.0 {
            used += amount(r, kind) * overlap;
        }
    }
    used / (cap * span)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbsched_core::pools::NodeAssignment;
    use bbsched_sim::StartReason;

    fn sys() -> SystemConfig {
        SystemConfig {
            name: "t".into(),
            nodes: 10,
            bb_gb: 100.0,
            bb_reserved_gb: 0.0,
            nodes_128: 5,
            nodes_256: 5,
        }
    }

    fn rec(start: f64, end: f64, nodes: u32, bb: f64) -> JobRecord {
        JobRecord {
            id: 0,
            submit: start,
            start,
            end,
            runtime: end - start,
            walltime: end - start,
            nodes,
            bb_gb: bb,
            ssd_gb_per_node: 32.0,
            assignment: NodeAssignment { n128: nodes.min(5), n256: nodes.saturating_sub(5) },
            wasted_ssd_gb: 10.0,
            reason: StartReason::Policy,
        }
    }

    #[test]
    fn full_occupancy_is_one() {
        let records = vec![rec(0.0, 100.0, 10, 100.0)];
        assert_eq!(resource_usage(&records, &sys(), UsageKind::Nodes, 0.0, 100.0), 1.0);
        assert_eq!(resource_usage(&records, &sys(), UsageKind::BurstBuffer, 0.0, 100.0), 1.0);
    }

    #[test]
    fn half_time_half_usage() {
        let records = vec![rec(0.0, 50.0, 10, 0.0)];
        assert_eq!(resource_usage(&records, &sys(), UsageKind::Nodes, 0.0, 100.0), 0.5);
    }

    #[test]
    fn clipping_at_window_edges() {
        // Job runs 50..150; window 100..200 -> only 50 s of 10 nodes count.
        let records = vec![rec(50.0, 150.0, 10, 0.0)];
        let u = resource_usage(&records, &sys(), UsageKind::Nodes, 100.0, 200.0);
        assert_eq!(u, 0.5);
    }

    #[test]
    fn no_overlap_counts_zero() {
        let records = vec![rec(0.0, 10.0, 10, 0.0)];
        assert_eq!(resource_usage(&records, &sys(), UsageKind::Nodes, 20.0, 30.0), 0.0);
    }

    #[test]
    fn ssd_usage_and_waste() {
        let records = vec![rec(0.0, 100.0, 4, 0.0)];
        // capacity = 5*128 + 5*256 = 1920; used = 4 nodes x 32 GB = 128.
        let used = resource_usage(&records, &sys(), UsageKind::LocalSsdUsed, 0.0, 100.0);
        assert!((used - 128.0 / 1920.0).abs() < 1e-12);
        let wasted = resource_usage(&records, &sys(), UsageKind::LocalSsdWasted, 0.0, 100.0);
        assert!((wasted - 10.0 / 1920.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        let records = vec![rec(0.0, 100.0, 10, 0.0)];
        assert_eq!(resource_usage(&records, &sys(), UsageKind::Nodes, 50.0, 50.0), 0.0);
        let mut no_bb = sys();
        no_bb.bb_gb = 0.0;
        assert_eq!(resource_usage(&records, &no_bb, UsageKind::BurstBuffer, 0.0, 1.0), 0.0);
    }
}
