//! Per-run metric summaries: one row of the paper's figures.

use crate::usage::{resource_usage, UsageKind};
use bbsched_sched::{JobRecord, SimResult};
use serde::{Deserialize, Serialize};

/// The measured portion of a run (§4.2: warm-up / cool-down trimming).
///
/// Expressed as submit-time quantiles of the workload: a job is *measured*
/// if its submit time falls within the central
/// `[warmup_frac, 1 - cooldown_frac]` quantile band, and usage integrals
/// run over the corresponding wall-clock interval. The paper trims the
/// first and last half-month of multi-month traces; the default 1/8 on
/// each side matches that proportion.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MeasurementWindow {
    /// Fraction of the submit-time span trimmed from the front.
    pub warmup_frac: f64,
    /// Fraction trimmed from the back.
    pub cooldown_frac: f64,
    /// Jobs with `runtime` below this are excluded from average slowdown
    /// ("we filter out abnormal jobs in calculating average slowdown").
    pub slowdown_min_runtime: f64,
}

impl Default for MeasurementWindow {
    fn default() -> Self {
        Self { warmup_frac: 0.125, cooldown_frac: 0.125, slowdown_min_runtime: 60.0 }
    }
}

impl MeasurementWindow {
    /// No trimming at all (unit tests, tiny traces).
    pub fn full() -> Self {
        Self { warmup_frac: 0.0, cooldown_frac: 0.0, slowdown_min_runtime: 0.0 }
    }

    /// The wall-clock interval `[t0, t1]` covered by the measured band of
    /// submits.
    pub fn interval(&self, records: &[JobRecord]) -> (f64, f64) {
        if records.is_empty() {
            return (0.0, 0.0);
        }
        let first = records.iter().map(|r| r.submit).fold(f64::INFINITY, f64::min);
        let last = records.iter().map(|r| r.submit).fold(f64::NEG_INFINITY, f64::max);
        let span = (last - first).max(0.0);
        (first + span * self.warmup_frac, last - span * self.cooldown_frac)
    }

    /// Whether a record is inside the measured band.
    pub fn contains(&self, r: &JobRecord, t0: f64, t1: f64) -> bool {
        r.submit >= t0 && r.submit <= t1
    }
}

/// Usage and waste of one system resource over the measured interval.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResourceSummary {
    /// Resource name from the system's resource model ("nodes", "bb_gb",
    /// "ssd", or an extra resource's registered name).
    pub name: String,
    /// Usage ratio in [0, 1].
    pub usage: f64,
    /// Wasted-capacity ratio (0 for resources without a waste objective).
    pub waste: f64,
}

/// One method × workload cell of the evaluation: every §4.2/§5 metric.
///
/// Usage is reported per resource, in the system's resource-model order;
/// the `node_usage()`/`bb_usage()`/`ssd_usage()`/`ssd_wasted()` accessors
/// recover the paper's named series.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MethodSummary {
    /// Policy name.
    pub policy: String,
    /// Per-resource usage/waste series (resource-model order).
    pub resources: Vec<ResourceSummary>,
    /// Average job wait time (s) over measured jobs.
    pub avg_wait: f64,
    /// Average slowdown over measured, non-abnormal jobs.
    pub avg_slowdown: f64,
    /// Number of measured jobs.
    pub measured_jobs: usize,
    /// Jobs started by backfilling (whole run, diagnostic).
    pub backfilled: usize,
}

impl MethodSummary {
    /// Computes the summary of a run over the given measurement window.
    pub fn from_result(result: &SimResult, window: MeasurementWindow) -> Self {
        let (t0, t1) = window.interval(&result.records);
        let measured: Vec<&JobRecord> =
            result.records.iter().filter(|r| window.contains(r, t0, t1)).collect();

        let avg_wait = if measured.is_empty() {
            0.0
        } else {
            measured.iter().map(|r| r.wait()).sum::<f64>() / measured.len() as f64
        };
        let slowdown_jobs: Vec<&&JobRecord> =
            measured.iter().filter(|r| r.runtime >= window.slowdown_min_runtime).collect();
        let avg_slowdown = if slowdown_jobs.is_empty() {
            0.0
        } else {
            slowdown_jobs.iter().map(|r| r.slowdown()).sum::<f64>() / slowdown_jobs.len() as f64
        };

        let model = result.system.resource_model();
        let resources = model
            .specs()
            .iter()
            .enumerate()
            .map(|(i, spec)| ResourceSummary {
                name: spec.name.clone(),
                usage: resource_usage(
                    &result.records,
                    &result.system,
                    UsageKind::Resource(i),
                    t0,
                    t1,
                ),
                waste: if spec.track_waste {
                    resource_usage(
                        &result.records,
                        &result.system,
                        UsageKind::ResourceWaste(i),
                        t0,
                        t1,
                    )
                } else {
                    0.0
                },
            })
            .collect();

        Self {
            policy: result.policy.clone(),
            resources,
            avg_wait,
            avg_slowdown,
            measured_jobs: measured.len(),
            backfilled: result.backfilled,
        }
    }

    /// Usage of the resource named `name` (0 when the system lacks it).
    pub fn usage_of(&self, name: &str) -> f64 {
        self.resources.iter().find(|r| r.name == name).map_or(0.0, |r| r.usage)
    }

    /// Wasted-capacity ratio of the resource named `name` (0 when N/A).
    pub fn waste_of(&self, name: &str) -> f64 {
        self.resources.iter().find(|r| r.name == name).map_or(0.0, |r| r.waste)
    }

    /// Node usage in [0, 1].
    pub fn node_usage(&self) -> f64 {
        self.usage_of("nodes")
    }

    /// Burst-buffer usage in [0, 1].
    pub fn bb_usage(&self) -> f64 {
        self.usage_of("bb_gb")
    }

    /// Local-SSD utilization in [0, 1] (0 on non-SSD systems).
    pub fn ssd_usage(&self) -> f64 {
        self.usage_of("ssd")
    }

    /// Wasted local SSD as a fraction of SSD capacity-time (0 when N/A).
    pub fn ssd_wasted(&self) -> f64 {
        self.waste_of("ssd")
    }
}

/// Summary of a what-if fork (DESIGN.md §12): one warmed-up run prefix
/// branched into per-policy continuations. Every branch is summarized
/// over the same measurement window; since all branches share the exact
/// pre-fork state, any metric difference is attributable to the policy
/// alone.
///
/// Branch records cover the continuation segment only — jobs started
/// before the fork live in the shared prefix and are identical across
/// branches, so they are excluded rather than double-counted.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ForkSummary {
    /// Virtual time of the fork point.
    pub fork_at: f64,
    /// Trace jobs already submitted into the shared prefix.
    pub prefix_jobs: usize,
    /// Per-branch summaries, in input order.
    pub branches: Vec<MethodSummary>,
}

impl ForkSummary {
    /// Summarizes each continuation result over `window`.
    pub fn from_continuations(
        fork_at: f64,
        prefix_jobs: usize,
        results: &[SimResult],
        window: MeasurementWindow,
    ) -> Self {
        Self {
            fork_at,
            prefix_jobs,
            branches: results.iter().map(|r| MethodSummary::from_result(r, window)).collect(),
        }
    }

    /// The branch run under the named policy, if present.
    pub fn branch(&self, policy: &str) -> Option<&MethodSummary> {
        self.branches.iter().find(|b| b.policy == policy)
    }

    /// Average-wait difference of `policy` against `baseline`, in seconds
    /// (negative means `policy` waited less). `None` if either branch is
    /// missing.
    pub fn wait_delta(&self, policy: &str, baseline: &str) -> Option<f64> {
        Some(self.branch(policy)?.avg_wait - self.branch(baseline)?.avg_wait)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbsched_core::pools::NodeAssignment;
    use bbsched_sched::StartReason;
    use bbsched_workloads::SystemConfig;

    fn rec(id: u64, submit: f64, start: f64, runtime: f64, nodes: u32) -> JobRecord {
        JobRecord {
            id,
            submit,
            start,
            end: start + runtime,
            runtime,
            walltime: runtime * 2.0,
            nodes,
            bb_gb: 0.0,
            ssd_gb_per_node: 0.0,
            extra: [0.0; bbsched_core::resource::MAX_EXTRA],
            assignment: NodeAssignment::default(),
            wasted_ssd_gb: 0.0,
            reason: StartReason::Policy,
        }
    }

    fn result(records: Vec<JobRecord>) -> SimResult {
        SimResult {
            policy: "Test".into(),
            base: "FCFS".into(),
            system: SystemConfig {
                name: "t".into(),
                nodes: 10,
                bb_gb: 100.0,
                bb_reserved_gb: 0.0,
                nodes_128: 0,
                nodes_256: 0,
                extra_resources: Vec::new(),
            },
            records,
            makespan: 0.0,
            invocations: 0,
            clamped_jobs: 0,
            backfilled: 3,
            starvation_forced: 0,
        }
    }

    #[test]
    fn window_interval_quantiles() {
        let records: Vec<JobRecord> =
            (0..9).map(|i| rec(i, i as f64 * 100.0, i as f64 * 100.0, 10.0, 1)).collect();
        let w = MeasurementWindow { warmup_frac: 0.25, cooldown_frac: 0.25, ..Default::default() };
        let (t0, t1) = w.interval(&records);
        assert_eq!(t0, 200.0);
        assert_eq!(t1, 600.0);
    }

    #[test]
    fn full_window_measures_everything() {
        let records = vec![rec(0, 0.0, 10.0, 100.0, 5), rec(1, 50.0, 60.0, 100.0, 5)];
        let s = MethodSummary::from_result(&result(records), MeasurementWindow::full());
        assert_eq!(s.measured_jobs, 2);
        assert_eq!(s.avg_wait, 10.0);
        assert_eq!(s.backfilled, 3);
    }

    #[test]
    fn slowdown_filters_short_jobs() {
        let mut quick = rec(0, 0.0, 1_000.0, 1.0, 1); // slowdown 1001
        quick.end = quick.start + quick.runtime;
        let normal = rec(1, 0.0, 100.0, 100.0, 1); // slowdown 2
        let w = MeasurementWindow { slowdown_min_runtime: 60.0, ..MeasurementWindow::full() };
        let s = MethodSummary::from_result(&result(vec![quick, normal]), w);
        assert_eq!(s.avg_slowdown, 2.0);
        // Wait still counts both jobs.
        assert_eq!(s.measured_jobs, 2);
    }

    #[test]
    fn empty_records_are_safe() {
        let s = MethodSummary::from_result(&result(vec![]), MeasurementWindow::default());
        assert_eq!(s.measured_jobs, 0);
        assert_eq!(s.avg_wait, 0.0);
        assert_eq!(s.avg_slowdown, 0.0);
    }

    #[test]
    fn fork_summary_compares_branches_against_a_baseline() {
        let mut slow = result(vec![rec(5, 400.0, 460.0, 100.0, 4), rec(6, 500.0, 580.0, 100.0, 4)]);
        slow.policy = "Baseline".into();
        let mut fast = result(vec![rec(5, 400.0, 410.0, 100.0, 4), rec(6, 500.0, 530.0, 100.0, 4)]);
        fast.policy = "BBSched".into();
        let fork =
            ForkSummary::from_continuations(400.0, 5, &[slow, fast], MeasurementWindow::full());
        assert_eq!(fork.fork_at, 400.0);
        assert_eq!(fork.prefix_jobs, 5);
        assert_eq!(fork.branches.len(), 2);
        assert_eq!(fork.branch("Baseline").unwrap().avg_wait, 70.0);
        assert_eq!(fork.branch("BBSched").unwrap().avg_wait, 20.0);
        assert_eq!(fork.wait_delta("BBSched", "Baseline"), Some(-50.0));
        assert_eq!(fork.wait_delta("Nope", "Baseline"), None);
    }

    #[test]
    fn trimming_drops_edge_jobs() {
        let records: Vec<JobRecord> =
            (0..8).map(|i| rec(i, i as f64 * 100.0, i as f64 * 100.0, 10.0, 1)).collect();
        let s = MethodSummary::from_result(&result(records), MeasurementWindow::default());
        // Span 0..700, band [87.5, 612.5]: jobs 1..=6 measured.
        assert_eq!(s.measured_jobs, 6);
    }
}
