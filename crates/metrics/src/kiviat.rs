//! Kiviat (radar) chart normalization and area (Figs. 13–14).
//!
//! "We use the reciprocal of average job wait time and the reciprocal of
//! average slowdown in the plots. All metrics are normalized to the range
//! of 0 to 1. 1 means a method achieves the best performance among all
//! methods and 0 means ... the worst. For all metrics, the larger the area
//! is, the better the overall performance is."

/// Normalizes one axis across methods: input values must already be
/// oriented so *higher is better* (callers pass reciprocals for wait and
/// slowdown). Returns values mapped linearly so the best method gets 1 and
/// the worst 0; if all methods tie, everyone gets 1.
pub fn normalize_axes(values: &[f64]) -> Vec<f64> {
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if values.is_empty() {
        return Vec::new();
    }
    if (max - min).abs() < f64::EPSILON * max.abs().max(1.0) {
        return vec![1.0; values.len()];
    }
    values.iter().map(|v| (v - min) / (max - min)).collect()
}

/// Area of the Kiviat polygon over `k = axes.len()` equally spaced axes:
/// `Σ ½·sin(2π/k)·xᵢ·xᵢ₊₁` (cyclically). Larger is better.
///
/// Returns 0 for fewer than 3 axes (no polygon).
pub fn kiviat_area(axes: &[f64]) -> f64 {
    let k = axes.len();
    if k < 3 {
        return 0.0;
    }
    let wedge = (std::f64::consts::TAU / k as f64).sin() * 0.5;
    (0..k).map(|i| axes[i] * axes[(i + 1) % k] * wedge).sum()
}

/// Convenience: reciprocal with a guard for zero (a zero wait time is
/// "infinitely good"; map it to the reciprocal of the smallest positive
/// epsilon instead so normalization stays finite).
pub fn safe_reciprocal(v: f64) -> f64 {
    1.0 / v.max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_maps_best_to_one() {
        let n = normalize_axes(&[10.0, 20.0, 15.0]);
        assert_eq!(n, vec![0.0, 1.0, 0.5]);
    }

    #[test]
    fn ties_normalize_to_one() {
        assert_eq!(normalize_axes(&[5.0, 5.0, 5.0]), vec![1.0; 3]);
        assert!(normalize_axes(&[]).is_empty());
    }

    #[test]
    fn unit_polygon_area_matches_regular_polygon() {
        // All axes 1: area of the regular k-gon with unit circumradius.
        let k = 4;
        let area = kiviat_area(&vec![1.0; k]);
        let expected = 0.5 * k as f64 * (std::f64::consts::TAU / k as f64).sin();
        assert!((area - expected).abs() < 1e-12);
    }

    #[test]
    fn bigger_values_bigger_area() {
        let small = kiviat_area(&[0.2, 0.2, 0.2, 0.2]);
        let large = kiviat_area(&[0.9, 0.9, 0.9, 0.9]);
        assert!(large > small);
    }

    #[test]
    fn degenerate_axes() {
        assert_eq!(kiviat_area(&[1.0, 1.0]), 0.0);
        assert_eq!(kiviat_area(&[]), 0.0);
    }

    #[test]
    fn zero_axis_kills_adjacent_wedges_only() {
        // One zero axis zeroes two wedges; the rest survive.
        let a = kiviat_area(&[1.0, 0.0, 1.0, 1.0]);
        assert!(a > 0.0);
        let full = kiviat_area(&[1.0, 1.0, 1.0, 1.0]);
        assert!(a < full);
    }

    #[test]
    fn reciprocal_guard() {
        assert_eq!(safe_reciprocal(2.0), 0.5);
        assert!(safe_reciprocal(0.0).is_finite());
        assert!(safe_reciprocal(0.0) > 1e8);
    }
}
