//! Observer-fed live metrics: summaries that accumulate *during* a run.
//!
//! [`LiveTally`] implements [`bbsched_sched::SchedObserver`] and keeps
//! running aggregates — waits, slowdowns, start reasons, backfill credits,
//! invocation count, makespan — as the scheduler core raises its
//! callbacks, without ever materializing the full record vector. Because
//! the hooks are driver-agnostic, the same tally works attached to the
//! simulator (`bbsched_sim::Simulator::run_observed`), to a standalone
//! core, or to the online replay driver — use it when a caller wants
//! metrics from a trace too large to keep per-job records for, or wants
//! progress mid-run.
//!
//! On whole-run aggregates ([`crate::MeasurementWindow::full`] semantics) the
//! tally agrees exactly with [`crate::MethodSummary::from_result`]; the
//! unit tests pin that equivalence.

use bbsched_sched::{JobStart, SchedObserver, StartReason};
use bbsched_workloads::Job;
use serde::{Deserialize, Serialize};
use std::io::Write;

/// Aggregates a [`LiveTally`] has accumulated so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LiveSummary {
    /// Jobs started.
    pub started: usize,
    /// Jobs finished.
    pub finished: usize,
    /// Average wait (s) over started jobs.
    pub avg_wait: f64,
    /// Average slowdown over started jobs at or above the runtime floor.
    pub avg_slowdown: f64,
    /// Jobs counted into `avg_slowdown`.
    pub slowdown_jobs: usize,
    /// Jobs started by the selection policy.
    pub by_policy: usize,
    /// Jobs started by the backfill phase (any head or hole start).
    pub by_backfill: usize,
    /// Jobs force-started by the starvation bound.
    pub by_starvation: usize,
    /// Backfill starts the strategy credited (the paper's `backfilled`).
    pub backfill_credited: usize,
    /// Scheduling invocations observed.
    pub invocations: u64,
    /// Latest completion time seen (s).
    pub makespan: f64,
    /// Wasted local-SSD GB summed over placements (0 off SSD systems).
    pub wasted_ssd_gb: f64,
}

/// A [`SchedObserver`] that folds every callback into running aggregates.
#[derive(Clone, Debug, Default)]
pub struct LiveTally {
    /// Runtime floor for slowdown accounting (§4.2's abnormal-job filter;
    /// 0 counts everything).
    pub slowdown_min_runtime: f64,
    wait_sum: f64,
    slowdown_sum: f64,
    summary: LiveSummary,
}

impl LiveTally {
    /// A tally with no slowdown filtering.
    pub fn new() -> Self {
        Self::default()
    }

    /// A tally filtering jobs shorter than `min_runtime` seconds out of
    /// the slowdown average, as the paper does.
    pub fn with_slowdown_floor(min_runtime: f64) -> Self {
        Self { slowdown_min_runtime: min_runtime, ..Self::default() }
    }

    /// The aggregates accumulated so far (valid mid-run too).
    pub fn summary(&self) -> LiveSummary {
        let mut s = self.summary;
        if s.started > 0 {
            s.avg_wait = self.wait_sum / s.started as f64;
        }
        if s.slowdown_jobs > 0 {
            s.avg_slowdown = self.slowdown_sum / s.slowdown_jobs as f64;
        }
        s
    }
}

impl SchedObserver for LiveTally {
    fn on_invocation_begin(&mut self, _now: f64, _invocation: u64, _queue_len: usize) {
        self.summary.invocations += 1;
    }

    fn on_job_started(&mut self, start: &JobStart<'_>) {
        let job = start.job;
        self.summary.started += 1;
        self.wait_sum += start.now - job.submit;
        if job.runtime >= self.slowdown_min_runtime {
            let response = start.now + job.runtime - job.submit;
            self.slowdown_sum += response / job.runtime.max(f64::MIN_POSITIVE);
            self.summary.slowdown_jobs += 1;
        }
        match start.reason {
            StartReason::Policy => self.summary.by_policy += 1,
            StartReason::Backfill => self.summary.by_backfill += 1,
            StartReason::Starvation => self.summary.by_starvation += 1,
        }
        self.summary.wasted_ssd_gb += start.wasted_ssd_gb;
    }

    fn on_job_finished(&mut self, now: f64, _job: &Job, _d: &bbsched_core::problem::JobDemand) {
        self.summary.finished += 1;
        self.summary.makespan = self.summary.makespan.max(now);
    }

    fn on_backfill_pass(&mut self, _now: f64, _algorithm: &'static str, started: usize) {
        self.summary.backfill_credited += started;
    }
}

/// One periodic stats line emitted by [`LiveStatsLines`]: serialized as
/// `{"type":"stats","now":…,"stats":{…}}` so the lines interleave with
/// other line-oriented output without ambiguity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StatsLine {
    /// The instant of the invocation that triggered the line (s).
    pub now: f64,
    /// The tally's aggregates at that instant.
    pub stats: LiveSummary,
}

impl Serialize for StatsLine {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("type".to_string(), serde::Value::Str("stats".to_string())),
            ("now".to_string(), self.now.to_value()),
            ("stats".to_string(), self.stats.to_value()),
        ])
    }
}

/// A [`SchedObserver`] wrapping a [`LiveTally`] that writes one JSON
/// stats line to `out` every `every` scheduling invocations — the
/// daemon's (`cli serve`) periodic progress feed. `every == 0` disables
/// emission; the tally still accumulates for a final summary.
///
/// Write failures are latched, not raised: observer callbacks cannot
/// return errors, so the caller checks [`LiveStatsLines::io_error`]
/// after the run.
#[derive(Debug)]
pub struct LiveStatsLines<W: Write> {
    tally: LiveTally,
    every: u64,
    out: W,
    io_error: Option<std::io::Error>,
}

impl<W: Write> LiveStatsLines<W> {
    /// A stats emitter over a fresh tally, writing to `out` every
    /// `every` invocations (0 = never).
    pub fn new(every: u64, out: W) -> Self {
        Self { tally: LiveTally::new(), every, out, io_error: None }
    }

    /// The aggregates accumulated so far.
    pub fn summary(&self) -> LiveSummary {
        self.tally.summary()
    }

    /// The first write failure, if any line failed to emit.
    pub fn io_error(&self) -> Option<&std::io::Error> {
        self.io_error.as_ref()
    }
}

impl<W: Write> SchedObserver for LiveStatsLines<W> {
    fn on_invocation_begin(&mut self, now: f64, invocation: u64, queue_len: usize) {
        self.tally.on_invocation_begin(now, invocation, queue_len);
    }

    fn on_job_started(&mut self, start: &JobStart<'_>) {
        self.tally.on_job_started(start);
    }

    fn on_job_finished(&mut self, now: f64, job: &Job, d: &bbsched_core::problem::JobDemand) {
        self.tally.on_job_finished(now, job, d);
    }

    fn on_backfill_pass(&mut self, now: f64, algorithm: &'static str, started: usize) {
        self.tally.on_backfill_pass(now, algorithm, started);
    }

    fn on_invocation_end(&mut self, now: f64, _started: usize) {
        let invocations = self.tally.summary.invocations;
        if self.io_error.is_some() || self.every == 0 || !invocations.is_multiple_of(self.every) {
            return;
        }
        let line = StatsLine { now, stats: self.tally.summary() };
        let json = serde_json::to_string(&line).expect("stats lines always serialize");
        if let Err(e) = writeln!(self.out, "{json}") {
            self.io_error = Some(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::{MeasurementWindow, MethodSummary};
    use bbsched_policies::{GaParams, PolicyKind};
    use bbsched_sim::{SimConfig, Simulator};
    use bbsched_workloads::{generate, GeneratorConfig, MachineProfile};

    /// The live tally and the post-hoc record summary must agree exactly
    /// on whole-run aggregates: they observe the same engine.
    #[test]
    fn live_tally_matches_record_summary() {
        let profile = MachineProfile::cori().scaled(0.05);
        let trace = generate(
            &profile,
            &GeneratorConfig { n_jobs: 70, seed: 5, load_factor: 1.3, ..Default::default() },
        );
        let min_runtime = 60.0;
        let mut tally = LiveTally::with_slowdown_floor(min_runtime);
        let sim = Simulator::new(&profile.system, &trace, SimConfig::default()).unwrap();
        let ga = GaParams { generations: 15, ..GaParams::default() };
        let result = sim.run_observed(PolicyKind::BbSched.build(ga), &mut [&mut tally]);

        let window =
            MeasurementWindow { slowdown_min_runtime: min_runtime, ..MeasurementWindow::full() };
        let posthoc = MethodSummary::from_result(&result, window);
        let live = tally.summary();

        assert_eq!(live.started, result.records.len());
        assert_eq!(live.finished, result.records.len());
        assert_eq!(live.invocations, result.invocations);
        assert_eq!(live.makespan, result.makespan);
        assert_eq!(live.backfill_credited, result.backfilled);
        assert_eq!(live.by_starvation, result.starvation_forced);
        assert!((live.avg_wait - posthoc.avg_wait).abs() < 1e-9);
        assert!((live.avg_slowdown - posthoc.avg_slowdown).abs() < 1e-9);
        let by_reason_total = live.by_policy + live.by_backfill + live.by_starvation;
        assert_eq!(by_reason_total, live.started);
        let wasted: f64 = result.records.iter().map(|r| r.wasted_ssd_gb).sum();
        assert!((live.wasted_ssd_gb - wasted).abs() < 1e-9);
    }

    #[test]
    fn mid_run_summary_is_consistent() {
        let mut tally = LiveTally::new();
        let job = Job::new(1, 10.0, 2, 100.0, 200.0);
        tally.on_job_started(&JobStart {
            now: 40.0,
            job: &job,
            demand: bbsched_core::problem::JobDemand::cpu_bb(2, 0.0),
            assignment: bbsched_core::pools::NodeAssignment::default(),
            wasted_ssd_gb: 0.0,
            est_end: 240.0,
            reason: StartReason::Policy,
        });
        let s = tally.summary();
        assert_eq!(s.started, 1);
        assert_eq!(s.finished, 0);
        assert_eq!(s.avg_wait, 30.0);
        // Response 130 over runtime 100.
        assert!((s.avg_slowdown - 1.3).abs() < 1e-12);
    }

    #[test]
    fn stats_lines_emit_on_cadence() {
        let mut out: Vec<u8> = Vec::new();
        {
            let mut stats = LiveStatsLines::new(2, &mut out);
            for i in 0..5u64 {
                stats.on_invocation_begin(i as f64 * 10.0, i, 0);
                stats.on_invocation_end(i as f64 * 10.0, 0);
            }
            assert!(stats.io_error().is_none());
            assert_eq!(stats.summary().invocations, 5);
        }
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "5 invocations at every=2 emit at 2 and 4");
        assert!(lines[0].starts_with("{\"type\":\"stats\",\"now\":10.0,"));
        assert!(lines[1].contains("\"invocations\":4"));

        // every == 0 never emits.
        let mut silent: Vec<u8> = Vec::new();
        {
            let mut stats = LiveStatsLines::new(0, &mut silent);
            stats.on_invocation_begin(0.0, 0, 0);
            stats.on_invocation_end(0.0, 0);
        }
        assert!(silent.is_empty());
    }
}
