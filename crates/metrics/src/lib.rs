//! # bbsched-metrics
//!
//! The evaluation metrics of §4.2, computed from simulator job records:
//!
//! * **Node usage** — used node-hours over elapsed node-hours;
//! * **Burst buffer usage** — used burst-buffer-hours over elapsed
//!   burst-buffer-hours;
//! * **Job wait time** — submission to start;
//! * **Job slowdown** — response time over runtime, with abnormal
//!   (very short) jobs filtered as in the paper;
//!
//! plus the §5 additions (local-SSD utilization and wasted SSD), the
//! breakdown tables behind Figs. 9–11, and the Kiviat normalization of
//! Figs. 13–14.
//!
//! Following §4.2, measurements trim a warm-up and cool-down period: "the
//! 1st half month data is used to 'warm up' the system and the last half
//! month data is used to 'cool down'". [`MeasurementWindow`] expresses the
//! same idea as submit-time quantiles so it works at any trace scale.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod breakdown;
pub mod kiviat;
pub mod live;
pub mod stats;
pub mod summary;
pub mod usage;

pub use breakdown::{bins_from_edges, breakdown_by, Bin};
pub use kiviat::{kiviat_area, normalize_axes, safe_reciprocal};
pub use live::{LiveStatsLines, LiveSummary, LiveTally, StatsLine};
pub use stats::{jains_fairness, percentile, DistributionStats};
pub use summary::{ForkSummary, MeasurementWindow, MethodSummary, ResourceSummary};
pub use usage::{resource_usage, UsageKind};
