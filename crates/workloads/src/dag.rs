//! Dependency (DAG) workload generation.
//!
//! §3.1: "jobs with dependencies are allowed to enter the window only if
//! all the dependencies have been completed. This restriction keeps
//! dependent jobs in order and preserves the priority of jobs with
//! dependencies." The paper's traces carry no dependency data, so its
//! experiments run independent jobs; this module generates *campaign*
//! structures (chains and fan-outs, the common shapes of HPC workflows) so
//! the window's dependency handling can actually be exercised.

use crate::job::Job;
use crate::trace::Trace;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// DAG-shape parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DagConfig {
    /// Fraction of jobs participating in a campaign (the rest stay
    /// independent).
    pub campaign_fraction: f64,
    /// Maximum chain length (a campaign is a chain of 2..=max stages).
    pub max_chain: usize,
    /// Probability that a chain stage fans out into two parallel children
    /// that rejoin at the next stage.
    pub fanout_prob: f64,
}

impl Default for DagConfig {
    fn default() -> Self {
        Self { campaign_fraction: 0.3, max_chain: 4, fanout_prob: 0.25 }
    }
}

/// Rewires an independent trace into campaigns: consecutive jobs (in
/// submission order) are linked into chains with optional fan-outs.
/// Only the `deps` fields change; ids, demands, and times stay put, so
/// workload statistics are untouched. Dependencies always point to
/// earlier-submitted jobs, so the DAG is acyclic by construction.
pub fn weave_campaigns(trace: &Trace, config: &DagConfig, seed: u64) -> Trace {
    assert!((0.0..=1.0).contains(&config.campaign_fraction));
    assert!(config.max_chain >= 2, "a campaign needs at least two stages");
    let mut rng = SmallRng::seed_from_u64(seed);
    let jobs = trace.jobs();
    let n = jobs.len();
    let mut deps: Vec<Vec<u64>> = vec![Vec::new(); n];

    let mut i = 0usize;
    while i < n {
        if !rng.random_bool(config.campaign_fraction.clamp(0.0, 1.0)) {
            i += 1;
            continue;
        }
        let stages = rng.random_range(2..=config.max_chain);
        let mut prev: Vec<usize> = vec![i];
        let mut cursor = i + 1;
        for _ in 1..stages {
            if cursor >= n {
                break;
            }
            let fanout = rng.random_bool(config.fanout_prob.clamp(0.0, 1.0)) && cursor + 1 < n;
            let members: Vec<usize> = if fanout { vec![cursor, cursor + 1] } else { vec![cursor] };
            for &m in &members {
                for &p in &prev {
                    deps[m].push(jobs[p].id);
                }
            }
            cursor += members.len();
            prev = members;
        }
        i = cursor.max(i + 1);
    }

    let rewired: Vec<Job> = jobs
        .iter()
        .zip(deps)
        .map(|(j, d)| {
            let mut j = j.clone();
            j.deps = d;
            j
        })
        .collect();
    Trace::from_jobs(rewired).expect("weaving preserves validity")
}

/// Fraction of jobs with at least one dependency (diagnostic).
pub fn dependent_fraction(trace: &Trace) -> f64 {
    if trace.is_empty() {
        return 0.0;
    }
    trace.jobs().iter().filter(|j| !j.deps.is_empty()).count() as f64 / trace.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig, MachineProfile};
    use std::collections::HashMap;

    fn base(n: usize) -> Trace {
        generate(
            &MachineProfile::cori().scaled(0.05),
            &GeneratorConfig { n_jobs: n, seed: 5, ..GeneratorConfig::default() },
        )
    }

    #[test]
    fn weaving_preserves_everything_but_deps() {
        let b = base(300);
        let w = weave_campaigns(&b, &DagConfig::default(), 1);
        assert_eq!(b.len(), w.len());
        for (a, c) in b.jobs().iter().zip(w.jobs()) {
            assert_eq!(a.id, c.id);
            assert_eq!(a.nodes, c.nodes);
            assert_eq!(a.submit, c.submit);
            assert_eq!(a.bb_gb, c.bb_gb);
        }
    }

    #[test]
    fn dependencies_point_backwards_in_time() {
        let w = weave_campaigns(&base(400), &DagConfig::default(), 2);
        let submit: HashMap<u64, f64> = w.jobs().iter().map(|j| (j.id, j.submit)).collect();
        for j in w.jobs() {
            for d in &j.deps {
                assert!(submit[d] <= j.submit, "job {} depends on later job {d}", j.id);
            }
        }
    }

    #[test]
    fn campaign_fraction_scales_dependence() {
        let b = base(600);
        let none =
            weave_campaigns(&b, &DagConfig { campaign_fraction: 0.0, ..DagConfig::default() }, 3);
        assert_eq!(dependent_fraction(&none), 0.0);
        let heavy =
            weave_campaigns(&b, &DagConfig { campaign_fraction: 0.9, ..DagConfig::default() }, 3);
        let light =
            weave_campaigns(&b, &DagConfig { campaign_fraction: 0.1, ..DagConfig::default() }, 3);
        assert!(dependent_fraction(&heavy) > dependent_fraction(&light));
        assert!(dependent_fraction(&heavy) > 0.3);
    }

    #[test]
    fn deterministic() {
        let b = base(200);
        let cfg = DagConfig::default();
        assert_eq!(weave_campaigns(&b, &cfg, 7), weave_campaigns(&b, &cfg, 7));
        assert_ne!(weave_campaigns(&b, &cfg, 7), weave_campaigns(&b, &cfg, 8));
    }

    /// End-to-end: a woven trace simulates cleanly and no job starts
    /// before its dependencies complete.
    #[test]
    fn simulation_respects_campaign_order() {
        // Build the test here to keep sim a dev-independent concern: we
        // only assert the structural property the simulator relies on —
        // deps reference existing earlier jobs.
        let w = weave_campaigns(&base(300), &DagConfig::default(), 11);
        let ids: std::collections::HashSet<u64> = w.jobs().iter().map(|j| j.id).collect();
        for j in w.jobs() {
            for d in &j.deps {
                assert!(ids.contains(d), "dangling dependency {d}");
                assert_ne!(*d, j.id);
            }
        }
    }
}
