//! Standard Workload Format (SWF) import/export.
//!
//! The Parallel Workloads Archive's SWF is the lingua franca for HPC job
//! logs (the Cori and Theta traces the paper uses are distributed in
//! SWF-like forms). An SWF record is one line of 18 whitespace-separated
//! fields; `;` starts a comment. We map:
//!
//! | SWF field | Job field |
//! |---|---|
//! | 1 — job number | `id` |
//! | 2 — submit time | `submit` |
//! | 4 — run time | `runtime` |
//! | 8 — requested processors (fallback: 5, allocated) | `nodes` |
//! | 9 — requested time | `walltime` (fallback: runtime) |
//! | 17 — preceding job number | `deps` (when > 0) |
//!
//! SWF has no burst-buffer or SSD fields; imports leave them at 0 (apply
//! the [`crate::synthetic`] transforms afterwards, exactly as the paper
//! does for Theta), and exports carry them in a `;bb=` comment suffix
//! that this parser round-trips but other tools ignore.

use crate::job::Job;
use crate::trace::Trace;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// A parse failure with line context.
#[derive(Debug, Clone, PartialEq)]
pub struct SwfError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SwfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SWF parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SwfError {}

fn parse_line(line: &str, lineno: usize) -> Result<Option<Job>, SwfError> {
    // Extension suffix: "... ;bb=<gb>,ssd=<gb>" written by `write_swf`.
    let (data, ext) = match line.find(';') {
        Some(pos) => (&line[..pos], Some(&line[pos + 1..])),
        None => (line, None),
    };
    let data = data.trim();
    if data.is_empty() {
        return Ok(None); // comment or blank line
    }
    let fields: Vec<&str> = data.split_whitespace().collect();
    if fields.len() < 9 {
        return Err(SwfError {
            line: lineno,
            message: format!("expected >= 9 fields, got {}", fields.len()),
        });
    }
    let num = |i: usize| -> Result<f64, SwfError> {
        fields[i]
            .parse::<f64>()
            .map_err(|e| SwfError { line: lineno, message: format!("field {}: {e}", i + 1) })
    };

    let id = num(0)? as u64;
    let submit = num(1)?.max(0.0);
    let runtime = num(3)?;
    if runtime <= 0.0 {
        // Cancelled / zero-length records: skip, as trace studies do.
        return Ok(None);
    }
    let alloc_procs = num(4)?;
    let req_procs = num(7)?;
    let nodes = if req_procs > 0.0 { req_procs } else { alloc_procs };
    if nodes < 1.0 {
        return Ok(None);
    }
    let req_time = num(8)?;
    let walltime = if req_time > 0.0 { req_time.max(runtime) } else { runtime };

    let mut job = Job::new(id, submit, nodes as u32, runtime, walltime);
    if fields.len() >= 17 {
        if let Ok(prev) = fields[16].parse::<i64>() {
            if prev > 0 {
                job.deps.push(prev as u64);
            }
        }
    }
    if let Some(ext) = ext {
        for kv in ext.trim().split(',') {
            if let Some(v) = kv.trim().strip_prefix("bb=") {
                job.bb_gb = v.parse().unwrap_or(0.0);
            } else if let Some(v) = kv.trim().strip_prefix("ssd=") {
                job.ssd_gb_per_node = v.parse().unwrap_or(0.0);
            }
        }
    }
    Ok(Some(job))
}

/// Parses SWF text into a trace. Comment lines, blank lines, cancelled
/// jobs (non-positive runtime), and zero-processor records are skipped.
pub fn parse_swf(text: &str) -> Result<Trace, SwfError> {
    let mut jobs = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if let Some(job) = parse_line(line, i + 1)? {
            jobs.push(job);
        }
    }
    Trace::from_jobs(jobs).map_err(|message| SwfError { line: 0, message })
}

/// Reads an SWF file from disk.
pub fn read_swf(path: &Path) -> std::io::Result<Trace> {
    let reader = BufReader::new(std::fs::File::open(path)?);
    let mut jobs = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let parsed = parse_line(&line, i + 1)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        if let Some(job) = parsed {
            jobs.push(job);
        }
    }
    Trace::from_jobs(jobs).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Renders a trace as SWF text — exactly the bytes [`write_swf`] puts on
/// disk. Unknown-to-SWF fields (burst buffer, SSD) ride in a
/// `;bb=...,ssd=...` comment suffix that [`parse_swf`] round-trips.
pub fn to_swf_string(trace: &Trace) -> String {
    use std::fmt::Write as _;
    let mut w = String::with_capacity(trace.jobs().len() * 64 + 128);
    w.push_str("; SWF export from bbsched-workloads\n");
    w.push_str("; Fields: job submit wait runtime procs avgcpu mem reqprocs reqtime reqmem status uid gid exe queue partition prevjob think\n");
    for j in trace.jobs() {
        let prev = j.deps.first().map(|&d| d as i64).unwrap_or(-1);
        let _ = write!(
            w,
            "{} {:.0} -1 {:.0} {} -1 -1 {} {:.0} -1 1 -1 -1 -1 -1 -1 {} -1",
            j.id,
            j.submit,
            j.runtime.max(1.0),
            j.nodes,
            j.nodes,
            j.walltime,
            prev
        );
        if j.bb_gb > 0.0 || j.ssd_gb_per_node > 0.0 {
            let _ = write!(w, " ;bb={},ssd={}", j.bb_gb, j.ssd_gb_per_node);
        }
        w.push('\n');
    }
    w
}

/// Writes a trace as SWF (see [`to_swf_string`] for the format).
pub fn write_swf(trace: &Trace, path: &Path) -> std::io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    w.write_all(to_swf_string(trace).as_bytes())?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
; Sample SWF header
; Computer: Testosaurus 3000

1 0 10 3600 64 -1 -1 64 7200 -1 1 5 5 -1 1 -1 -1 -1
2 100 -1 1800 -1 -1 -1 128 3600 -1 1 5 5 -1 1 -1 1 -1
3 200 -1 0 16 -1 -1 16 600 -1 0 5 5 -1 1 -1 -1 -1
4 300 -1 600 -1 -1 -1 0 0 -1 1 5 5 -1 1 -1 -1 -1
";

    #[test]
    fn parses_standard_records() {
        let t = parse_swf(SAMPLE).unwrap();
        // Job 3 (zero runtime) and job 4 (zero procs) are skipped.
        assert_eq!(t.len(), 2);
        let j1 = &t.jobs()[0];
        assert_eq!(j1.id, 1);
        assert_eq!(j1.nodes, 64);
        assert_eq!(j1.runtime, 3600.0);
        assert_eq!(j1.walltime, 7200.0);
        assert!(j1.deps.is_empty());
        let j2 = &t.jobs()[1];
        assert_eq!(j2.deps, vec![1], "preceding-job field becomes a dependency");
    }

    #[test]
    fn requested_time_defaults_to_runtime() {
        let t = parse_swf("7 0 -1 100 8 -1 -1 8 -1 -1 1 1 1 -1 1 -1 -1 -1").unwrap();
        assert_eq!(t.jobs()[0].walltime, 100.0);
    }

    #[test]
    fn walltime_never_below_runtime() {
        // Requested time 50 < runtime 100: clamp up (jobs killed at limit
        // have runtime == walltime; under-reporting breaks the simulator).
        let t = parse_swf("7 0 -1 100 8 -1 -1 8 50 -1 1 1 1 -1 1 -1 -1 -1").unwrap();
        assert_eq!(t.jobs()[0].walltime, 100.0);
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = parse_swf("1 2 3").unwrap_err();
        assert_eq!(err.line, 1);
        let err = parse_swf("1 abc -1 100 8 -1 -1 8 50 -1 1 1 1 -1 1 -1 -1 -1").unwrap_err();
        assert!(err.message.contains("field 2"));
    }

    #[test]
    fn roundtrip_through_disk_preserves_schedule_fields() {
        let jobs = vec![
            Job::new(1, 0.0, 64, 3600.0, 7200.0).with_bb(2_048.0),
            Job::new(2, 100.0, 128, 1800.0, 3600.0).with_ssd(96.0),
            Job::new(3, 250.0, 8, 60.0, 600.0).with_deps(vec![1]),
        ];
        let t = Trace::from_jobs(jobs).unwrap();
        let dir = std::env::temp_dir().join(format!("bbsched_swf_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.swf");
        write_swf(&t, &path).unwrap();
        let back = read_swf(&path).unwrap();
        assert_eq!(back.len(), 3);
        for (a, b) in t.jobs().iter().zip(back.jobs()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.deps, b.deps);
            assert!((a.runtime - b.runtime).abs() < 1.0, "runtime rounds to seconds");
            assert_eq!(a.bb_gb, b.bb_gb, "bb extension must round-trip");
            assert_eq!(a.ssd_gb_per_node, b.ssd_gb_per_node);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let t = parse_swf("; just comments\n\n;\n").unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn to_swf_string_roundtrips_without_disk() {
        let jobs = vec![
            Job::new(1, 0.0, 64, 3600.0, 7200.0).with_bb(2_048.0),
            Job::new(2, 100.0, 128, 1800.0, 3600.0).with_ssd(96.0),
        ];
        let t = Trace::from_jobs(jobs).unwrap();
        let text = to_swf_string(&t);
        let back = parse_swf(&text).unwrap();
        assert_eq!(back.len(), 2);
        for (a, b) in t.jobs().iter().zip(back.jobs()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.bb_gb, b.bb_gb);
            assert_eq!(a.ssd_gb_per_node, b.ssd_gb_per_node);
        }
        // The string writer and the file writer are the same format.
        let dir = std::env::temp_dir().join(format!("bbsched_swf_str_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.swf");
        write_swf(&t, &path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), text);
        std::fs::remove_dir_all(&dir).ok();
    }
}
