//! Trace container, statistics (Table 2), and persistence.

use crate::job::Job;
use crate::GB_PER_TB;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// An ordered workload trace (jobs sorted by submission time).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    jobs: Vec<Job>,
}

impl Trace {
    /// Builds a trace, validating every job and sorting by submit time.
    ///
    /// Returns the first validation error encountered, if any, or an error
    /// for duplicate job ids.
    pub fn from_jobs(mut jobs: Vec<Job>) -> Result<Self, String> {
        for j in &jobs {
            j.validate()?;
        }
        jobs.sort_by(|a, b| {
            a.submit
                .partial_cmp(&b.submit)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        let mut seen = std::collections::HashSet::with_capacity(jobs.len());
        for j in &jobs {
            if !seen.insert(j.id) {
                return Err(format!("duplicate job id {}", j.id));
            }
        }
        Ok(Self { jobs })
    }

    /// The jobs in submission order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// A copy restricted to the first `n` jobs (Fig. 2 uses "the first 1000
    /// jobs from a Theta workload").
    pub fn head(&self, n: usize) -> Self {
        Self { jobs: self.jobs.iter().take(n).cloned().collect() }
    }

    /// Applies a transformation to every job, revalidating the result.
    pub fn map_jobs<F>(&self, mut f: F) -> Result<Self, String>
    where
        F: FnMut(Job) -> Job,
    {
        Self::from_jobs(self.jobs.iter().cloned().map(&mut f).collect())
    }

    /// Computes the Table-2-style summary statistics.
    pub fn stats(&self) -> TraceStats {
        let n = self.jobs.len();
        let mut s = TraceStats { n_jobs: n, ..TraceStats::default() };
        if n == 0 {
            return s;
        }
        let mut bb_min = f64::INFINITY;
        let mut bb_max: f64 = 0.0;
        for j in &self.jobs {
            s.total_node_seconds += j.node_seconds();
            if j.uses_bb() {
                s.jobs_with_bb += 1;
                s.total_bb_gb += j.bb_gb;
                bb_min = bb_min.min(j.bb_gb);
                bb_max = bb_max.max(j.bb_gb);
                if j.bb_gb > GB_PER_TB {
                    s.jobs_with_bb_over_1tb += 1;
                }
            }
            if j.ssd_gb_per_node > 0.0 {
                s.jobs_with_ssd += 1;
            }
        }
        if s.jobs_with_bb > 0 {
            s.bb_range_gb = Some((bb_min, bb_max));
        }
        s.span_seconds = self.jobs.last().map(|j| j.submit).unwrap_or(0.0) - self.jobs[0].submit;
        s
    }

    /// Histogram of burst-buffer requests among requesting jobs, with the
    /// given bin width in GB (Fig. 5 uses 10 TB bins). Returns
    /// `(bin_lower_bound_gb, count)` pairs for non-empty bins, ascending.
    pub fn bb_histogram(&self, bin_gb: f64) -> Vec<(f64, usize)> {
        assert!(bin_gb > 0.0, "bin width must be positive");
        let mut bins: std::collections::BTreeMap<u64, usize> = Default::default();
        for j in &self.jobs {
            if j.uses_bb() {
                let bin = (j.bb_gb / bin_gb).floor() as u64;
                *bins.entry(bin).or_insert(0) += 1;
            }
        }
        bins.into_iter().map(|(b, c)| (b as f64 * bin_gb, c)).collect()
    }

    /// Serializes as JSON lines (one job per line) to `path`.
    pub fn save_jsonl(&self, path: &Path) -> std::io::Result<()> {
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        for j in &self.jobs {
            serde_json::to_writer(&mut w, j)?;
            w.write_all(b"\n")?;
        }
        w.flush()
    }

    /// Loads a JSON-lines trace written by [`Trace::save_jsonl`].
    pub fn load_jsonl(path: &Path) -> std::io::Result<Self> {
        let r = BufReader::new(std::fs::File::open(path)?);
        let mut jobs = Vec::new();
        for line in r.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let j: Job = serde_json::from_str(&line)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            jobs.push(j);
        }
        Self::from_jobs(jobs).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// Summary statistics of a trace (the rows of Table 2 plus bookkeeping the
/// harness needs).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of jobs.
    pub n_jobs: usize,
    /// Jobs with a burst-buffer request.
    pub jobs_with_bb: usize,
    /// Jobs requesting more than 1 TB of burst buffer.
    pub jobs_with_bb_over_1tb: usize,
    /// Jobs with a local-SSD request.
    pub jobs_with_ssd: usize,
    /// `(min, max)` burst-buffer request among requesting jobs (GB).
    pub bb_range_gb: Option<(f64, f64)>,
    /// Sum of all burst-buffer requests (GB) — the "aggregated volume" of
    /// Fig. 5's captions.
    pub total_bb_gb: f64,
    /// Sum of `nodes × runtime` over all jobs (s).
    pub total_node_seconds: f64,
    /// Time between first and last submission (s).
    pub span_seconds: f64,
}

impl TraceStats {
    /// Fraction of jobs requesting burst buffer (Cori: 0.618%).
    pub fn bb_fraction(&self) -> f64 {
        if self.n_jobs == 0 {
            0.0
        } else {
            self.jobs_with_bb as f64 / self.n_jobs as f64
        }
    }

    /// Offered compute load relative to a system of `nodes` over the trace
    /// span: > 1 means the system cannot keep up.
    pub fn offered_load(&self, nodes: u32) -> f64 {
        if self.span_seconds <= 0.0 {
            return 0.0;
        }
        self.total_node_seconds / (f64::from(nodes) * self.span_seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Trace {
        Trace::from_jobs(vec![
            Job::new(2, 50.0, 10, 100.0, 200.0).with_bb(2_000.0),
            Job::new(1, 0.0, 20, 100.0, 150.0),
            Job::new(3, 100.0, 30, 50.0, 60.0).with_bb(500.0),
        ])
        .unwrap()
    }

    #[test]
    fn jobs_sorted_by_submit() {
        let t = trace();
        let ids: Vec<u64> = t.jobs().iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn duplicate_ids_rejected() {
        let r =
            Trace::from_jobs(vec![Job::new(1, 0.0, 1, 1.0, 1.0), Job::new(1, 5.0, 1, 1.0, 1.0)]);
        assert!(r.is_err());
    }

    #[test]
    fn invalid_job_rejected() {
        let r = Trace::from_jobs(vec![Job::new(1, 0.0, 0, 1.0, 1.0)]);
        assert!(r.is_err());
    }

    #[test]
    fn stats_match_hand_computation() {
        let s = trace().stats();
        assert_eq!(s.n_jobs, 3);
        assert_eq!(s.jobs_with_bb, 2);
        assert_eq!(s.jobs_with_bb_over_1tb, 1);
        assert_eq!(s.bb_range_gb, Some((500.0, 2_000.0)));
        assert_eq!(s.total_bb_gb, 2_500.0);
        assert_eq!(s.total_node_seconds, 2000.0 + 1000.0 + 1500.0);
        assert_eq!(s.span_seconds, 100.0);
        assert!((s.bb_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn offered_load() {
        let s = trace().stats();
        // 4500 node-seconds over 100 s span with 45 nodes -> load 1.0.
        assert!((s.offered_load(45) - 1.0).abs() < 1e-12);
        assert_eq!(TraceStats::default().offered_load(10), 0.0);
    }

    #[test]
    fn head_truncates() {
        let t = trace().head(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.jobs()[1].id, 2);
    }

    #[test]
    fn histogram_bins_requests() {
        let h = trace().bb_histogram(1_000.0);
        assert_eq!(h, vec![(0.0, 1), (2_000.0, 1)]);
    }

    #[test]
    fn jsonl_roundtrip() {
        let t = trace();
        let dir = std::env::temp_dir().join("bbsched_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        t.save_jsonl(&path).unwrap();
        let back = Trace::load_jsonl(&path).unwrap();
        assert_eq!(t, back);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn map_jobs_transforms() {
        let t = trace()
            .map_jobs(|mut j| {
                j.bb_gb *= 2.0;
                j
            })
            .unwrap();
        assert_eq!(t.stats().total_bb_gb, 5_000.0);
    }
}
