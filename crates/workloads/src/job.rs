//! The job model.
//!
//! §2.1: "When submitting a job, a user is required to provide two pieces
//! of information: resources required by the job and runtime estimate."
//! Resources here are compute nodes, shared burst buffer (GB), and — for
//! the §5 case study — local SSD per node (GB). The trace additionally
//! carries the *actual* runtime (known only to the simulator, used when the
//! job finishes) and optional dependencies (§3.1 admits only
//! dependency-satisfied jobs into the window).

use serde::{Deserialize, Serialize};

/// A single batch job as recorded in a workload trace.
///
/// Times are in seconds from the trace epoch; storage sizes in GB.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Unique job id (dense, assigned by the generator/parser).
    pub id: u64,
    /// Submission time (s).
    pub submit: f64,
    /// Requested compute nodes.
    pub nodes: u32,
    /// Actual runtime (s); revealed to the simulator only at completion.
    pub runtime: f64,
    /// User-provided runtime estimate / walltime request (s);
    /// `walltime >= runtime` is typical but not required (jobs hitting
    /// their limit have `runtime == walltime`).
    pub walltime: f64,
    /// Requested shared burst buffer (GB); 0 when the job does not use it.
    pub bb_gb: f64,
    /// Requested local SSD per node (GB); 0 outside the §5 case study.
    pub ssd_gb_per_node: f64,
    /// Ids of jobs that must complete before this job may enter the
    /// scheduling window. Both paper traces lack dependency information
    /// ("we suppose all jobs are independent"), but the simulator honours
    /// this field.
    #[serde(default)]
    pub deps: Vec<u64>,
    /// Demands on a system's extra resources, by registration order (see
    /// `SystemConfig::extra_resources`); empty for the paper's traces.
    #[serde(default)]
    pub extra: Vec<f64>,
}

impl Job {
    /// Creates an independent CPU-only job.
    pub fn new(id: u64, submit: f64, nodes: u32, runtime: f64, walltime: f64) -> Self {
        Self {
            id,
            submit,
            nodes,
            runtime,
            walltime,
            bb_gb: 0.0,
            ssd_gb_per_node: 0.0,
            deps: Vec::new(),
            extra: Vec::new(),
        }
    }

    /// Sets the burst-buffer request (builder style).
    pub fn with_bb(mut self, bb_gb: f64) -> Self {
        self.bb_gb = bb_gb;
        self
    }

    /// Sets the per-node local-SSD request (builder style).
    pub fn with_ssd(mut self, ssd_gb_per_node: f64) -> Self {
        self.ssd_gb_per_node = ssd_gb_per_node;
        self
    }

    /// Adds dependencies (builder style).
    pub fn with_deps(mut self, deps: Vec<u64>) -> Self {
        self.deps = deps;
        self
    }

    /// Sets the demand on extra resource `i` (builder style), growing the
    /// demand vector with zeros as needed.
    pub fn with_extra(mut self, i: usize, amount: f64) -> Self {
        if self.extra.len() <= i {
            self.extra.resize(i + 1, 0.0);
        }
        self.extra[i] = amount;
        self
    }

    /// Demand on extra resource `i` (0 when the job does not request it).
    pub fn extra_demand(&self, i: usize) -> f64 {
        self.extra.get(i).copied().unwrap_or(0.0)
    }

    /// Whether the job requests any shared burst buffer.
    pub fn uses_bb(&self) -> bool {
        self.bb_gb > 0.0
    }

    /// Node-seconds of useful work (`nodes × runtime`), the numerator of
    /// the node-usage metric.
    pub fn node_seconds(&self) -> f64 {
        f64::from(self.nodes) * self.runtime
    }

    /// Burst-buffer-seconds of useful occupancy (`bb × runtime`).
    pub fn bb_seconds(&self) -> f64 {
        self.bb_gb * self.runtime
    }

    /// Validates internal consistency; returns a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err(format!("job {}: zero nodes requested", self.id));
        }
        if self.runtime <= 0.0 || self.runtime.is_nan() {
            return Err(format!("job {}: non-positive runtime", self.id));
        }
        if self.walltime <= 0.0 || self.walltime.is_nan() {
            return Err(format!("job {}: non-positive walltime", self.id));
        }
        if self.submit < 0.0 || !self.submit.is_finite() {
            return Err(format!("job {}: invalid submit time", self.id));
        }
        if self.bb_gb < 0.0 || !self.bb_gb.is_finite() {
            return Err(format!("job {}: invalid burst-buffer request", self.id));
        }
        if self.ssd_gb_per_node < 0.0 || !self.ssd_gb_per_node.is_finite() {
            return Err(format!("job {}: invalid SSD request", self.id));
        }
        if self.deps.contains(&self.id) {
            return Err(format!("job {}: depends on itself", self.id));
        }
        if self.extra.iter().any(|x| x.is_nan() || *x < 0.0) {
            return Err(format!("job {}: invalid extra-resource request", self.id));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let j =
            Job::new(1, 10.0, 64, 3600.0, 7200.0).with_bb(500.0).with_ssd(128.0).with_deps(vec![0]);
        assert_eq!(j.nodes, 64);
        assert!(j.uses_bb());
        assert_eq!(j.deps, vec![0]);
        assert!(j.validate().is_ok());
    }

    #[test]
    fn accounting_helpers() {
        let j = Job::new(1, 0.0, 10, 100.0, 200.0).with_bb(50.0);
        assert_eq!(j.node_seconds(), 1000.0);
        assert_eq!(j.bb_seconds(), 5000.0);
    }

    #[test]
    fn validation_catches_errors() {
        assert!(Job::new(1, 0.0, 0, 1.0, 1.0).validate().is_err());
        assert!(Job::new(1, 0.0, 1, 0.0, 1.0).validate().is_err());
        assert!(Job::new(1, 0.0, 1, 1.0, 0.0).validate().is_err());
        assert!(Job::new(1, -5.0, 1, 1.0, 1.0).validate().is_err());
        assert!(Job::new(1, 0.0, 1, 1.0, 1.0).with_bb(-1.0).validate().is_err());
        assert!(Job::new(1, 0.0, 1, 1.0, 1.0).with_ssd(f64::NAN).validate().is_err());
        assert!(Job::new(1, 0.0, 1, 1.0, 1.0).with_deps(vec![1]).validate().is_err());
        assert!(Job::new(1, 0.0, 1, 1.0, 1.0).validate().is_ok());
    }

    #[test]
    fn serde_roundtrip() {
        let j = Job::new(7, 3.5, 128, 60.0, 120.0).with_bb(1024.0);
        let s = serde_json::to_string(&j).unwrap();
        let back: Job = serde_json::from_str(&s).unwrap();
        assert_eq!(j, back);
    }
}
