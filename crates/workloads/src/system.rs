//! System (machine) configurations.
//!
//! Table 2 of the paper describes the two target systems; §5 adds local
//! SSDs ("we assume 50% of nodes in the system are equipped with 128 GB
//! local SSDs, the rest ... 256 GB").

use crate::GB_PER_TB;
use serde::{Deserialize, Serialize};

/// Static description of a simulated HPC system.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Human-readable name ("cori", "theta", ...).
    pub name: String,
    /// Total compute nodes.
    pub nodes: u32,
    /// Total shared burst buffer (GB).
    pub bb_gb: f64,
    /// Shared burst buffer held by persistent reservations (GB). On Cori
    /// "one-third of burst buffers ... are reserved persistently and their
    /// lifetimes are independent of jobs" (§4.1); the simulator treats this
    /// as capacity unavailable to jobs.
    pub bb_reserved_gb: f64,
    /// Nodes carrying 128 GB local SSDs (0 outside the §5 case study).
    pub nodes_128: u32,
    /// Nodes carrying 256 GB local SSDs (0 outside the §5 case study).
    pub nodes_256: u32,
}

impl SystemConfig {
    /// Cori at NERSC: 12,076 nodes, 1.8 PB Cray DataWarp shared burst
    /// buffer, one-third persistently reserved (Table 2, §4.1).
    pub fn cori() -> Self {
        Self {
            name: "cori".into(),
            nodes: 12_076,
            bb_gb: 1_800.0 * GB_PER_TB,
            bb_reserved_gb: 600.0 * GB_PER_TB,
            nodes_128: 0,
            nodes_256: 0,
        }
    }

    /// Theta at ALCF: 4,392 KNL nodes; the paper projects a 1.26 PB shared
    /// burst buffer from Cori's memory-to-burst-buffer ratio (Table 2).
    pub fn theta() -> Self {
        Self {
            name: "theta".into(),
            nodes: 4_392,
            bb_gb: 1_260.0 * GB_PER_TB,
            bb_reserved_gb: 0.0,
            nodes_128: 0,
            nodes_256: 0,
        }
    }

    /// A scaled copy: node count and burst buffer multiplied by `factor`,
    /// keeping demand/capacity ratios intact. Used to run the experiment
    /// grid at laptop scale (DESIGN.md §3).
    ///
    /// # Panics
    /// Panics unless `0 < factor <= 1`.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0, "scale factor must be in (0, 1]");
        let scale_nodes = |n: u32| ((f64::from(n) * factor).round() as u32).max(1);
        Self {
            name: self.name.clone(),
            nodes: scale_nodes(self.nodes),
            bb_gb: self.bb_gb * factor,
            bb_reserved_gb: self.bb_reserved_gb * factor,
            nodes_128: if self.nodes_128 == 0 { 0 } else { scale_nodes(self.nodes_128) },
            nodes_256: if self.nodes_256 == 0 { 0 } else { scale_nodes(self.nodes_256) },
        }
    }

    /// Adds the §5 local-SSD configuration: 50% of nodes with 128 GB SSDs,
    /// the remainder with 256 GB.
    pub fn with_ssd_split(mut self) -> Self {
        self.nodes_128 = self.nodes / 2;
        self.nodes_256 = self.nodes - self.nodes_128;
        self
    }

    /// Burst buffer usable by jobs (total minus persistent reservations).
    pub fn bb_usable_gb(&self) -> f64 {
        (self.bb_gb - self.bb_reserved_gb).max(0.0)
    }

    /// Whether the system models heterogeneous local SSDs.
    pub fn has_local_ssd(&self) -> bool {
        self.nodes_128 + self.nodes_256 > 0
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("system has zero nodes".into());
        }
        if self.bb_gb < 0.0 || self.bb_reserved_gb < 0.0 {
            return Err("negative burst-buffer capacity".into());
        }
        if self.bb_reserved_gb > self.bb_gb {
            return Err("reserved burst buffer exceeds total".into());
        }
        if self.has_local_ssd() && self.nodes_128 + self.nodes_256 != self.nodes {
            return Err(format!(
                "SSD pools ({} + {}) do not cover all {} nodes",
                self.nodes_128, self.nodes_256, self.nodes
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table2() {
        let cori = SystemConfig::cori();
        assert_eq!(cori.nodes, 12_076);
        assert_eq!(cori.bb_gb, 1_800_000.0);
        assert_eq!(cori.bb_usable_gb(), 1_200_000.0);
        assert!(cori.validate().is_ok());

        let theta = SystemConfig::theta();
        assert_eq!(theta.nodes, 4_392);
        assert_eq!(theta.bb_gb, 1_260_000.0);
        assert_eq!(theta.bb_usable_gb(), 1_260_000.0);
        assert!(theta.validate().is_ok());
    }

    #[test]
    fn scaling_preserves_ratios() {
        let cori = SystemConfig::cori();
        let s = cori.scaled(0.1);
        assert_eq!(s.nodes, 1208);
        assert!((s.bb_gb / s.bb_reserved_gb - 3.0).abs() < 1e-9);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn ssd_split_covers_all_nodes() {
        let t = SystemConfig::theta().with_ssd_split();
        assert!(t.has_local_ssd());
        assert_eq!(t.nodes_128 + t.nodes_256, t.nodes);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = SystemConfig::cori();
        c.bb_reserved_gb = c.bb_gb + 1.0;
        assert!(c.validate().is_err());
        let mut c = SystemConfig::cori();
        c.nodes = 0;
        assert!(c.validate().is_err());
        let mut c = SystemConfig::cori().with_ssd_split();
        c.nodes_128 += 1;
        assert!(c.validate().is_err());
    }

    #[test]
    #[should_panic]
    fn scaled_rejects_zero_factor() {
        let _ = SystemConfig::cori().scaled(0.0);
    }
}
