//! System (machine) configurations.
//!
//! Table 2 of the paper describes the two target systems; §5 adds local
//! SSDs ("we assume 50% of nodes in the system are equipped with 128 GB
//! local SSDs, the rest ... 256 GB").

use crate::GB_PER_TB;
use bbsched_core::pools::PoolState;
use bbsched_core::resource::{DemandSlot, FlavorSet, ResourceModel, ResourceSpec, MAX_EXTRA};
use serde::{Deserialize, Serialize};

/// A pooled resource beyond the paper's three (GPUs, licenses, network
/// injection bandwidth, ...). The i-th entry of
/// [`SystemConfig::extra_resources`] draws its per-job demand from
/// `Job::extra[i]` / `JobDemand::extra[i]`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExtraResource {
    /// Display name ("gpus", ...).
    pub name: String,
    /// Schedulable pool size.
    pub amount: f64,
}

impl ExtraResource {
    /// Creates a pooled extra resource.
    pub fn new(name: impl Into<String>, amount: f64) -> Self {
        Self { name: name.into(), amount }
    }
}

/// Static description of a simulated HPC system.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Human-readable name ("cori", "theta", ...).
    pub name: String,
    /// Total compute nodes.
    pub nodes: u32,
    /// Total shared burst buffer (GB).
    pub bb_gb: f64,
    /// Shared burst buffer held by persistent reservations (GB). On Cori
    /// "one-third of burst buffers ... are reserved persistently and their
    /// lifetimes are independent of jobs" (§4.1); the simulator treats this
    /// as capacity unavailable to jobs.
    pub bb_reserved_gb: f64,
    /// Nodes carrying 128 GB local SSDs (0 outside the §5 case study).
    pub nodes_128: u32,
    /// Nodes carrying 256 GB local SSDs (0 outside the §5 case study).
    pub nodes_256: u32,
    /// Additional pooled resources scheduled alongside nodes/BB/SSD
    /// (empty for the paper's systems).
    #[serde(default)]
    pub extra_resources: Vec<ExtraResource>,
}

impl SystemConfig {
    /// Cori at NERSC: 12,076 nodes, 1.8 PB Cray DataWarp shared burst
    /// buffer, one-third persistently reserved (Table 2, §4.1).
    pub fn cori() -> Self {
        Self {
            name: "cori".into(),
            nodes: 12_076,
            bb_gb: 1_800.0 * GB_PER_TB,
            bb_reserved_gb: 600.0 * GB_PER_TB,
            nodes_128: 0,
            nodes_256: 0,
            extra_resources: Vec::new(),
        }
    }

    /// Theta at ALCF: 4,392 KNL nodes; the paper projects a 1.26 PB shared
    /// burst buffer from Cori's memory-to-burst-buffer ratio (Table 2).
    pub fn theta() -> Self {
        Self {
            name: "theta".into(),
            nodes: 4_392,
            bb_gb: 1_260.0 * GB_PER_TB,
            bb_reserved_gb: 0.0,
            nodes_128: 0,
            nodes_256: 0,
            extra_resources: Vec::new(),
        }
    }

    /// A scaled copy: node count and burst buffer multiplied by `factor`,
    /// keeping demand/capacity ratios intact. Used to run the experiment
    /// grid at laptop scale (DESIGN.md §3).
    ///
    /// # Panics
    /// Panics unless `0 < factor <= 1`.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0, "scale factor must be in (0, 1]");
        let scale_nodes = |n: u32| ((f64::from(n) * factor).round() as u32).max(1);
        Self {
            name: self.name.clone(),
            nodes: scale_nodes(self.nodes),
            bb_gb: self.bb_gb * factor,
            bb_reserved_gb: self.bb_reserved_gb * factor,
            nodes_128: if self.nodes_128 == 0 { 0 } else { scale_nodes(self.nodes_128) },
            nodes_256: if self.nodes_256 == 0 { 0 } else { scale_nodes(self.nodes_256) },
            extra_resources: self
                .extra_resources
                .iter()
                .map(|x| ExtraResource::new(x.name.clone(), x.amount * factor))
                .collect(),
        }
    }

    /// Adds the §5 local-SSD configuration: 50% of nodes with 128 GB SSDs,
    /// the remainder with 256 GB.
    pub fn with_ssd_split(mut self) -> Self {
        self.nodes_128 = self.nodes / 2;
        self.nodes_256 = self.nodes - self.nodes_128;
        self
    }

    /// Burst buffer usable by jobs (total minus persistent reservations).
    pub fn bb_usable_gb(&self) -> f64 {
        (self.bb_gb - self.bb_reserved_gb).max(0.0)
    }

    /// Whether the system models heterogeneous local SSDs.
    pub fn has_local_ssd(&self) -> bool {
        self.nodes_128 + self.nodes_256 > 0
    }

    /// Adds an extra pooled resource scheduled alongside the paper's
    /// three. Jobs demand it through `extra[i]`, where `i` is the order of
    /// registration.
    pub fn with_extra_resource(mut self, name: impl Into<String>, amount: f64) -> Self {
        self.extra_resources.push(ExtraResource::new(name, amount));
        self
    }

    /// The system's resource table: nodes, usable burst buffer, the §5 SSD
    /// flavour split when configured, then every extra resource. This is
    /// the single source of truth the scheduler stack (problems, pools,
    /// metrics) derives its dimensions from.
    pub fn resource_model(&self) -> ResourceModel {
        let mut specs = vec![
            ResourceSpec::pooled("nodes", f64::from(self.nodes), DemandSlot::Nodes),
            ResourceSpec::pooled("bb_gb", self.bb_usable_gb(), DemandSlot::BbGb),
        ];
        if self.has_local_ssd() {
            use bbsched_core::problem::{SSD_LARGE_GB, SSD_SMALL_GB};
            let flavors =
                FlavorSet::two_tier(SSD_SMALL_GB, self.nodes_128, SSD_LARGE_GB, self.nodes_256);
            specs.push(
                ResourceSpec::per_node("ssd", flavors, DemandSlot::SsdPerNode)
                    .with_waste_objective(),
            );
        }
        for (i, x) in self.extra_resources.iter().enumerate() {
            specs.push(ResourceSpec::pooled(x.name.clone(), x.amount, DemandSlot::Extra(i as u8)));
        }
        ResourceModel::new(specs).expect("validated SystemConfig yields a valid resource model")
    }

    /// An all-free [`PoolState`] for this system (the simulator's starting
    /// state).
    pub fn pool_state(&self) -> PoolState {
        PoolState::from_model(&self.resource_model())
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), SystemConfigError> {
        if self.nodes == 0 {
            return Err(SystemConfigError::ZeroNodes);
        }
        if self.bb_gb < 0.0 || self.bb_reserved_gb < 0.0 {
            return Err(SystemConfigError::NegativeBurstBuffer);
        }
        if self.bb_reserved_gb > self.bb_gb {
            return Err(SystemConfigError::ReservedExceedsTotal);
        }
        if self.has_local_ssd() && self.nodes_128 + self.nodes_256 != self.nodes {
            return Err(SystemConfigError::SsdPoolsMismatch {
                nodes_128: self.nodes_128,
                nodes_256: self.nodes_256,
                nodes: self.nodes,
            });
        }
        if self.extra_resources.len() > MAX_EXTRA {
            return Err(SystemConfigError::TooManyExtraResources(self.extra_resources.len()));
        }
        for x in &self.extra_resources {
            if x.amount.is_nan() || x.amount < 0.0 {
                return Err(SystemConfigError::InvalidExtraAmount(x.name.clone()));
            }
        }
        Ok(())
    }
}

/// Why a [`SystemConfig`] is not internally consistent.
#[derive(Clone, Debug, PartialEq)]
pub enum SystemConfigError {
    /// The system has no compute nodes.
    ZeroNodes,
    /// A burst-buffer capacity is negative.
    NegativeBurstBuffer,
    /// The persistent reservation exceeds the total burst buffer.
    ReservedExceedsTotal,
    /// The SSD flavour pools do not partition the node count.
    SsdPoolsMismatch {
        /// Configured 128 GB-SSD nodes.
        nodes_128: u32,
        /// Configured 256 GB-SSD nodes.
        nodes_256: u32,
        /// Total nodes the pools must cover.
        nodes: u32,
    },
    /// More extra resources than `JobDemand` has demand slots.
    TooManyExtraResources(usize),
    /// An extra resource's amount is negative or NaN.
    InvalidExtraAmount(String),
}

impl std::fmt::Display for SystemConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ZeroNodes => write!(f, "system has zero nodes"),
            Self::NegativeBurstBuffer => write!(f, "negative burst-buffer capacity"),
            Self::ReservedExceedsTotal => write!(f, "reserved burst buffer exceeds total"),
            Self::SsdPoolsMismatch { nodes_128, nodes_256, nodes } => {
                write!(f, "SSD pools ({nodes_128} + {nodes_256}) do not cover all {nodes} nodes")
            }
            Self::TooManyExtraResources(n) => {
                write!(f, "{n} extra resources exceed the {MAX_EXTRA} demand slots")
            }
            Self::InvalidExtraAmount(name) => {
                write!(f, "extra resource `{name}` has a negative or NaN amount")
            }
        }
    }
}

impl std::error::Error for SystemConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table2() {
        let cori = SystemConfig::cori();
        assert_eq!(cori.nodes, 12_076);
        assert_eq!(cori.bb_gb, 1_800_000.0);
        assert_eq!(cori.bb_usable_gb(), 1_200_000.0);
        assert!(cori.validate().is_ok());

        let theta = SystemConfig::theta();
        assert_eq!(theta.nodes, 4_392);
        assert_eq!(theta.bb_gb, 1_260_000.0);
        assert_eq!(theta.bb_usable_gb(), 1_260_000.0);
        assert!(theta.validate().is_ok());
    }

    #[test]
    fn scaling_preserves_ratios() {
        let cori = SystemConfig::cori();
        let s = cori.scaled(0.1);
        assert_eq!(s.nodes, 1208);
        assert!((s.bb_gb / s.bb_reserved_gb - 3.0).abs() < 1e-9);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn ssd_split_covers_all_nodes() {
        let t = SystemConfig::theta().with_ssd_split();
        assert!(t.has_local_ssd());
        assert_eq!(t.nodes_128 + t.nodes_256, t.nodes);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = SystemConfig::cori();
        c.bb_reserved_gb = c.bb_gb + 1.0;
        assert!(c.validate().is_err());
        let mut c = SystemConfig::cori();
        c.nodes = 0;
        assert!(c.validate().is_err());
        let mut c = SystemConfig::cori().with_ssd_split();
        c.nodes_128 += 1;
        assert!(c.validate().is_err());
    }

    #[test]
    #[should_panic]
    fn scaled_rejects_zero_factor() {
        let _ = SystemConfig::cori().scaled(0.0);
    }

    #[test]
    fn resource_model_matches_paper_shapes() {
        // Cori: 2 pooled resources, bi-objective.
        let cori = SystemConfig::cori();
        let m = cori.resource_model();
        assert_eq!(m.len(), 2);
        assert_eq!(m.num_objectives(), 2);
        assert_eq!(m.avail_nodes(), 12_076);
        // The model's BB availability is the *usable* capacity.
        assert_eq!(m.available().get(1), 1_200_000.0);

        // SSD split: 3 resources, 4 objectives (utilizations + waste).
        let ssd = SystemConfig::theta().with_ssd_split();
        let m = ssd.resource_model();
        assert_eq!(m.len(), 3);
        assert_eq!(m.num_objectives(), 4);
        let (_, flavors, waste) = m.per_node_resource().unwrap();
        assert!(waste);
        assert_eq!(flavors.total_count(), 4_392);
    }

    #[test]
    fn pool_state_mirrors_model() {
        let sys = SystemConfig::theta().with_ssd_split();
        let pool = sys.pool_state();
        assert_eq!(pool.total_nodes(), 4_392);
        assert_eq!(pool.nodes_128(), 2_196);
        assert_eq!(pool.nodes_256(), 2_196);
        assert!(pool.ssd_aware());
    }

    #[test]
    fn extra_resources_extend_the_model() {
        let sys = SystemConfig::theta().with_extra_resource("gpus", 512.0);
        assert!(sys.validate().is_ok());
        let m = sys.resource_model();
        assert_eq!(m.len(), 3);
        assert_eq!(m.specs()[2].name, "gpus");
        assert_eq!(m.num_objectives(), 3);
        // Scaling scales extras too.
        let s = sys.scaled(0.5);
        assert_eq!(s.extra_resources[0].amount, 256.0);
    }

    #[test]
    fn typed_validation_errors() {
        let mut c = SystemConfig::cori();
        c.bb_reserved_gb = c.bb_gb + 1.0;
        assert_eq!(c.validate().unwrap_err(), SystemConfigError::ReservedExceedsTotal);
        let mut c = SystemConfig::cori();
        c.nodes = 0;
        assert_eq!(c.validate().unwrap_err(), SystemConfigError::ZeroNodes);
        let c = SystemConfig::cori()
            .with_extra_resource("a", 1.0)
            .with_extra_resource("b", 1.0)
            .with_extra_resource("c", 1.0);
        assert!(matches!(c.validate().unwrap_err(), SystemConfigError::TooManyExtraResources(3)));
        let c = SystemConfig::cori().with_extra_resource("gpus", -1.0);
        assert_eq!(c.validate().unwrap_err(), SystemConfigError::InvalidExtraAmount("gpus".into()));
        // The error type boxes as a std error with a readable message.
        let e: Box<dyn std::error::Error> = Box::new(SystemConfigError::ZeroNodes);
        assert_eq!(e.to_string(), "system has zero nodes");
    }
}
