//! The synthetic workload transforms of §4.1 (S1–S4) and §5 (S5–S7).
//!
//! §4.1: "we create eight synthetic workloads, four workloads (S1–S4) for
//! each machine, by expanding the percentage of jobs requesting burst
//! buffers to 50% (S1 and S3 workloads) and 75% (S2 and S4 workloads). ...
//! the assigned burst buffer request is randomly selected from the original
//! burst buffer requests in a certain range. S1 and S2 select requests from
//! original requests greater than 5 TB, while S3 and S4 choose from
//! requests greater than 20 TB."
//!
//! §5: "We generate three workloads (S5–S7) on top of Cori-S2 and Theta-S2
//! by creating job's local SSD requests. In S5, 80% of jobs have 0–128 GB
//! local SSD requests, and 20% of jobs have 129–256 GB ... S6 ... 50/50 ...
//! S7 ... 20/80."

use crate::dist;
use crate::trace::Trace;
use crate::GB_PER_TB;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The ten (plus three SSD) workload variants evaluated in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// The unmodified trace.
    Original,
    /// 50 % of jobs request burst buffer, drawn from original requests > 5 TB.
    S1,
    /// 75 % of jobs request burst buffer, drawn from original requests > 5 TB.
    S2,
    /// 50 % of jobs request burst buffer, drawn from original requests > 20 TB.
    S3,
    /// 75 % of jobs request burst buffer, drawn from original requests > 20 TB.
    S4,
    /// S2 plus local SSD: 80 % of jobs request 0–128 GB/node, 20 % request 129–256 GB/node.
    S5,
    /// S2 plus local SSD: 50 % / 50 % split.
    S6,
    /// S2 plus local SSD: 20 % small, 80 % large.
    S7,
}

impl Workload {
    /// The workloads of the main evaluation (Figures 6–13): Original and
    /// the four burst-buffer stress variants.
    pub fn main_grid() -> [Workload; 5] {
        [Workload::Original, Workload::S1, Workload::S2, Workload::S3, Workload::S4]
    }

    /// The §5 case-study workloads.
    pub fn ssd_grid() -> [Workload; 3] {
        [Workload::S5, Workload::S6, Workload::S7]
    }

    /// Display name matching the paper ("Original", "S1", ...).
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Original => "Original",
            Workload::S1 => "S1",
            Workload::S2 => "S2",
            Workload::S3 => "S3",
            Workload::S4 => "S4",
            Workload::S5 => "S5",
            Workload::S6 => "S6",
            Workload::S7 => "S7",
        }
    }

    /// Applies this transform to a base (Original) trace. The paper's pool
    /// thresholds (5 TB, 20 TB) assume full-scale machines; use
    /// [`Workload::apply_scaled`] on scaled-down systems.
    pub fn apply(&self, base: &Trace, seed: u64) -> Trace {
        self.apply_scaled(base, seed, 1.0)
    }

    /// Like [`Workload::apply`], with the burst-buffer pool thresholds
    /// multiplied by `factor` — required when the trace was generated for a
    /// machine scaled by the same factor, otherwise the ">5 TB" / ">20 TB"
    /// pools are empty and the transform falls back to out-of-scale
    /// requests.
    pub fn apply_scaled(&self, base: &Trace, seed: u64, factor: f64) -> Trace {
        assert!(factor > 0.0, "scale factor must be positive");
        let t5 = 5.0 * GB_PER_TB * factor;
        let t20 = 20.0 * GB_PER_TB * factor;
        match self {
            Workload::Original => base.clone(),
            Workload::S1 => stress_bb(base, 0.50, t5, seed),
            Workload::S2 => stress_bb(base, 0.75, t5, seed),
            Workload::S3 => stress_bb(base, 0.50, t20, seed),
            Workload::S4 => stress_bb(base, 0.75, t20, seed),
            Workload::S5 => {
                add_ssd(&Workload::S2.apply_scaled(base, seed, factor), SsdMix::S5, seed ^ 0x55)
            }
            Workload::S6 => {
                add_ssd(&Workload::S2.apply_scaled(base, seed, factor), SsdMix::S6, seed ^ 0x66)
            }
            Workload::S7 => {
                add_ssd(&Workload::S2.apply_scaled(base, seed, factor), SsdMix::S7, seed ^ 0x77)
            }
        }
    }
}

/// Local-SSD request mixes of §5.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum SsdMix {
    /// 80 % of jobs request 0–128 GB/node; 20 % request 129–256 GB/node.
    S5,
    /// 50 % / 50 %.
    S6,
    /// 20 % small / 80 % large.
    S7,
}

impl SsdMix {
    /// Fraction of jobs with a large (129–256 GB/node) request.
    pub fn large_fraction(&self) -> f64 {
        match self {
            SsdMix::S5 => 0.20,
            SsdMix::S6 => 0.50,
            SsdMix::S7 => 0.80,
        }
    }
}

/// Raises the fraction of jobs with burst-buffer requests to `target_frac`,
/// assigning new requests sampled uniformly from the original requests
/// greater than `pool_min_gb`. Jobs that already request burst buffer keep
/// their original demand.
///
/// If the original trace has no request above `pool_min_gb` (possible on
/// tiny traces), the pool falls back to log-uniform samples from
/// `[pool_min_gb, 10 × pool_min_gb]` so the transform still produces the
/// intended pressure; the harness logs trace statistics so this is visible.
pub fn stress_bb(base: &Trace, target_frac: f64, pool_min_gb: f64, seed: u64) -> Trace {
    assert!((0.0..=1.0).contains(&target_frac));
    let pool: Vec<f64> =
        base.jobs().iter().filter(|j| j.bb_gb > pool_min_gb).map(|j| j.bb_gb).collect();
    let mut rng = SmallRng::seed_from_u64(seed);

    let current_frac = base.stats().bb_fraction();
    // Probability that a currently-BB-less job gains a request, chosen so
    // the overall fraction lands on target.
    let p_assign = if current_frac >= target_frac || current_frac >= 1.0 {
        0.0
    } else {
        (target_frac - current_frac) / (1.0 - current_frac)
    };

    base.map_jobs(|mut j| {
        if !j.uses_bb() && p_assign > 0.0 && rng.random_bool(p_assign) {
            j.bb_gb = if pool.is_empty() {
                dist::log_uniform(&mut rng, pool_min_gb, pool_min_gb * 10.0)
            } else {
                *dist::choose(&mut rng, &pool)
            };
        }
        j
    })
    .expect("stress_bb produced an invalid trace")
}

/// Adds per-node local-SSD requests per the §5 mixes. Small requests are
/// uniform on `[0, 128]` GB, large on `(128, 256]` GB.
pub fn add_ssd(base: &Trace, mix: SsdMix, seed: u64) -> Trace {
    let mut rng = SmallRng::seed_from_u64(seed);
    let large = mix.large_fraction();
    base.map_jobs(|mut j| {
        j.ssd_gb_per_node = if rng.random_bool(large) {
            rng.random_range(128.0f64..256.0).ceil() // in (128, 256]
        } else {
            rng.random_range(0.0f64..=128.0).floor() // in [0, 128]
        };
        j
    })
    .expect("add_ssd produced an invalid trace")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig, MachineProfile};

    fn base() -> Trace {
        generate(
            &MachineProfile::cori(),
            &GeneratorConfig {
                n_jobs: 4_000,
                seed: 77,
                load_factor: 1.0,
                ..GeneratorConfig::default()
            },
        )
    }

    #[test]
    fn s1_hits_50_percent() {
        let t = Workload::S1.apply(&base(), 1);
        let f = t.stats().bb_fraction();
        assert!((f - 0.5).abs() < 0.05, "bb fraction {f}");
    }

    #[test]
    fn s2_hits_75_percent() {
        let t = Workload::S2.apply(&base(), 1);
        let f = t.stats().bb_fraction();
        assert!((f - 0.75).abs() < 0.05, "bb fraction {f}");
    }

    #[test]
    fn s3_s4_draw_from_20tb_pool() {
        let b = base();
        let original_max = b.jobs().iter().map(|j| j.bb_gb).fold(0.0f64, f64::max);
        for w in [Workload::S3, Workload::S4] {
            let t = w.apply(&b, 2);
            // Newly assigned requests are all > 20 TB (or from the
            // fallback range, also > 20 TB); original small requests remain.
            for (j_new, j_old) in t.jobs().iter().zip(b.jobs()) {
                if j_old.uses_bb() {
                    assert_eq!(j_new.bb_gb, j_old.bb_gb, "original request must be kept");
                } else if j_new.uses_bb() {
                    assert!(j_new.bb_gb > 20.0 * GB_PER_TB);
                    assert!(j_new.bb_gb <= original_max.max(200.0 * GB_PER_TB));
                }
            }
        }
    }

    #[test]
    fn s4_has_larger_requests_than_s2() {
        let b = base();
        let s2 = Workload::S2.apply(&b, 3).stats().total_bb_gb;
        let s4 = Workload::S4.apply(&b, 3).stats().total_bb_gb;
        assert!(s4 > s2, "S4 aggregated volume {s4} should exceed S2 {s2}");
    }

    #[test]
    fn transforms_are_deterministic() {
        let b = base();
        assert_eq!(Workload::S4.apply(&b, 9), Workload::S4.apply(&b, 9));
        assert_ne!(Workload::S4.apply(&b, 9), Workload::S4.apply(&b, 10));
    }

    #[test]
    fn original_is_identity() {
        let b = base();
        assert_eq!(Workload::Original.apply(&b, 5), b);
    }

    #[test]
    fn ssd_mixes_split_correctly() {
        let b = base();
        for (w, expect_large) in [(Workload::S5, 0.2), (Workload::S6, 0.5), (Workload::S7, 0.8)] {
            let t = w.apply(&b, 4);
            let n = t.len() as f64;
            let large = t.jobs().iter().filter(|j| j.ssd_gb_per_node > 128.0).count() as f64;
            assert!(
                (large / n - expect_large).abs() < 0.05,
                "{}: large fraction {}",
                w.name(),
                large / n
            );
            for j in t.jobs() {
                assert!(j.ssd_gb_per_node <= 256.0);
            }
            // SSD workloads are built on S2: BB fraction ~75 %.
            assert!((t.stats().bb_fraction() - 0.75).abs() < 0.05);
        }
    }

    #[test]
    fn stress_bb_with_empty_pool_falls_back() {
        // A trace with no BB requests at all.
        let jobs = (0..200).map(|i| crate::job::Job::new(i, i as f64, 1, 10.0, 20.0)).collect();
        let t = Trace::from_jobs(jobs).unwrap();
        let out = stress_bb(&t, 0.5, 20.0 * GB_PER_TB, 1);
        let s = out.stats();
        assert!((s.bb_fraction() - 0.5).abs() < 0.15);
        if let Some((lo, _)) = s.bb_range_gb {
            assert!(lo >= 20.0 * GB_PER_TB);
        }
    }

    #[test]
    fn workload_names() {
        assert_eq!(Workload::Original.name(), "Original");
        assert_eq!(Workload::S4.name(), "S4");
        assert_eq!(Workload::main_grid().len(), 5);
        assert_eq!(Workload::ssd_grid().len(), 3);
    }
}
