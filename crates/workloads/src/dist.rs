//! Small deterministic sampling helpers.
//!
//! The generators only need a handful of distributions (log-uniform,
//! lognormal, exponential, Bernoulli, empirical choice); implementing them
//! on top of `rand`'s uniform primitives keeps the dependency surface at
//! the workspace's approved set and makes every draw reproducible from a
//! `u64` seed.

use rand::Rng;

/// Samples log-uniformly from `[lo, hi]`: `exp(U(ln lo, ln hi))`.
/// Produces the heavy-small-value skew typical of HPC job sizes and
/// burst-buffer requests.
///
/// # Panics
/// Panics if `lo <= 0` or `hi < lo`.
pub fn log_uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    assert!(lo > 0.0 && hi >= lo, "log_uniform requires 0 < lo <= hi");
    if hi == lo {
        return lo;
    }
    let u = rng.random_range(lo.ln()..hi.ln());
    u.exp()
}

/// Standard normal via Box–Muller (both variates discarded but one, for
/// simplicity; the generators are not hot paths).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random_range(0.0..1.0);
        let u2: f64 = rng.random_range(0.0..1.0);
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// Lognormal sample `exp(mu + sigma·Z)`, clamped to `[lo, hi]`.
pub fn lognormal_clamped<R: Rng + ?Sized>(
    rng: &mut R,
    mu: f64,
    sigma: f64,
    lo: f64,
    hi: f64,
) -> f64 {
    let v = (mu + sigma * standard_normal(rng)).exp();
    v.clamp(lo, hi)
}

/// Exponential inter-arrival gap with the given mean.
///
/// # Panics
/// Panics if `mean <= 0`.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(mean > 0.0, "exponential requires a positive mean");
    let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

/// Picks an element of `choices` uniformly at random.
///
/// # Panics
/// Panics if `choices` is empty.
pub fn choose<'a, R: Rng + ?Sized, T>(rng: &mut R, choices: &'a [T]) -> &'a T {
    assert!(!choices.is_empty(), "choose requires a non-empty slice");
    &choices[rng.random_range(0..choices.len())]
}

/// Rounds a node count up to the nearest multiple of `quantum` (capability
/// systems like Theta allocate in large node blocks).
pub fn quantize_nodes(nodes: f64, quantum: u32, max: u32) -> u32 {
    let q = f64::from(quantum);
    let n = (nodes / q).ceil() * q;
    (n as u32).clamp(quantum, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(12345)
    }

    #[test]
    fn log_uniform_stays_in_range() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = log_uniform(&mut r, 1.0, 165_000.0);
            assert!((1.0..=165_000.0).contains(&v));
        }
    }

    #[test]
    fn log_uniform_is_log_skewed() {
        // Median of log-uniform [1, 10^4] is 10^2 — far below the
        // arithmetic midpoint 5000.
        let mut r = rng();
        let mut below = 0;
        for _ in 0..2000 {
            if log_uniform(&mut r, 1.0, 10_000.0) < 1000.0 {
                below += 1;
            }
        }
        // P(v < 1000) = 3/4 for log-uniform.
        assert!(below > 1300, "got {below}");
    }

    #[test]
    fn log_uniform_degenerate_range() {
        let mut r = rng();
        assert_eq!(log_uniform(&mut r, 5.0, 5.0), 5.0);
    }

    #[test]
    fn normal_moments_roughly_standard() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn lognormal_respects_clamp() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = lognormal_clamped(&mut r, 8.0, 2.0, 60.0, 86_400.0);
            assert!((60.0..=86_400.0).contains(&v));
        }
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let n = 20_000;
        let total: f64 = (0..n).map(|_| exponential(&mut r, 100.0)).sum();
        let mean = total / n as f64;
        assert!((mean - 100.0).abs() < 5.0, "mean {mean}");
    }

    #[test]
    fn choose_covers_all() {
        let mut r = rng();
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*choose(&mut r, &items) as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn quantize_clamps_and_rounds() {
        assert_eq!(quantize_nodes(1.0, 128, 4392), 128);
        assert_eq!(quantize_nodes(129.0, 128, 4392), 256);
        assert_eq!(quantize_nodes(1e9, 128, 4392), 4392);
        assert_eq!(quantize_nodes(100.0, 1, 4392), 100);
    }
}
