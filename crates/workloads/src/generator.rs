//! Calibrated synthetic trace generators.
//!
//! The paper's real logs (Table 2) are proprietary; these generators
//! reproduce their published statistics so the evaluation can run anywhere
//! (DESIGN.md §3):
//!
//! * **Cori** — capacity computing: a long-tailed mix dominated by small
//!   jobs (log-uniform sizes from 1 node), 0.618 % of jobs requesting
//!   burst buffer with sizes in `[1 GB, 65 TB]` plus a few extreme requests
//!   up to 165 TB.
//! * **Theta** — capability computing: large jobs only (128-node
//!   allocation quantum, log-uniform up to full machine), 17.18 % of jobs
//!   carrying a burst-buffer demand derived from Darshan I/O volumes in
//!   `[1 GB, 285 TB]`.
//!
//! Arrival times are Poisson with the rate chosen so the *offered load*
//! (node-seconds per node-second of wall clock) matches a configurable
//! target, reproducing the queue contention that drives every result in
//! §4.

use crate::dist;
use crate::job::Job;
use crate::system::SystemConfig;
use crate::trace::Trace;
use crate::GB_PER_TB;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One class of a job-size mixture: with probability proportional to
/// `weight`, sizes are drawn log-uniformly from `[lo, hi]` nodes.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SizeClass {
    /// Relative weight of this class.
    pub weight: f64,
    /// Smallest size (nodes, >= 1).
    pub lo: f64,
    /// Largest size (nodes).
    pub hi: f64,
}

impl SizeClass {
    /// Creates a class.
    pub fn new(weight: f64, lo: f64, hi: f64) -> Self {
        Self { weight, lo, hi }
    }

    /// Mean of the log-uniform distribution over `[lo, hi]`.
    pub fn mean(&self) -> f64 {
        if (self.hi - self.lo).abs() < f64::EPSILON {
            self.lo
        } else {
            (self.hi - self.lo) / (self.hi / self.lo).ln()
        }
    }
}

/// Statistical profile of a machine's workload.
///
/// Job sizes come from a weighted mixture of log-uniform classes; the
/// mixture means are calibrated so the *node-hours per job* implied by
/// Table 2 (total node-hours over the trace period divided by the job
/// count) — and hence the number of concurrently running jobs, which
/// drives all burst-buffer contention — match the paper's systems.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MachineProfile {
    /// The machine this profile belongs to.
    pub system: SystemConfig,
    /// Job-size mixture classes.
    pub size_classes: Vec<SizeClass>,
    /// Lognormal runtime parameters (of seconds).
    pub runtime_mu: f64,
    /// Lognormal sigma for runtime.
    pub runtime_sigma: f64,
    /// Minimum runtime (s).
    pub runtime_min: f64,
    /// Maximum runtime (s) — the site walltime limit.
    pub runtime_max: f64,
    /// Walltime request = runtime × U(1, overestimate); Mu'alem &
    /// Feitelson observed users overestimate heavily.
    pub walltime_overestimate: f64,
    /// Fraction of jobs with a burst-buffer request.
    pub bb_fraction: f64,
    /// Burst-buffer request range (GB), sampled log-uniformly.
    pub bb_min_gb: f64,
    /// Upper bound of the common burst-buffer range (GB).
    pub bb_max_gb: f64,
    /// Fraction of burst-buffer requests drawn from the extreme tail.
    pub bb_tail_fraction: f64,
    /// Upper bound of the extreme tail (GB).
    pub bb_tail_max_gb: f64,
}

impl MachineProfile {
    /// The Cori (NERSC, capacity-computing) profile.
    ///
    /// The size mixture — 70 % small jobs (1–64 nodes, the capacity-
    /// computing mass) and 30 % larger runs — is calibrated so that the
    /// S1–S4 transforms produce an *offered burst-buffer load* (BB-seconds
    /// demanded per BB-second of capacity) around 1.0 on S4 and ~0.6–0.8
    /// on S1–S3: the bursty-saturation regime where the paper's methods
    /// differentiate. (Matching Table 2's ~13 node-hours/job exactly would
    /// require million-job traces to reach the same contention; we trade
    /// per-job size fidelity for the contention regime, which is what
    /// every figure actually measures — see DESIGN.md §3.)
    pub fn cori() -> Self {
        Self {
            system: SystemConfig::cori(),
            size_classes: vec![
                SizeClass::new(0.75, 1.0, 64.0),
                SizeClass::new(0.25, 64.0, 4_096.0),
            ],
            // Median runtime ~20 min, long tail to 12 h.
            runtime_mu: (1_200.0f64).ln(),
            runtime_sigma: 1.5,
            runtime_min: 60.0,
            runtime_max: 12.0 * 3_600.0,
            walltime_overestimate: 3.0,
            bb_fraction: 0.00618,
            bb_min_gb: 1.0,
            bb_max_gb: 65.0 * GB_PER_TB,
            bb_tail_fraction: 0.02,
            bb_tail_max_gb: 165.0 * GB_PER_TB,
        }
    }

    /// The Theta (ALCF, capability-computing) profile.
    ///
    /// Table 2 implies ~226 node-hours per job (4,392 nodes × 5 months /
    /// 70.5 K jobs). A 90/10 mixture of small jobs (`[1, 128]`, Fig. 9's
    /// 1–8 node bin exists on Theta) and capability jobs (`[128, 4392]`)
    /// with a ~1.6 h mean runtime reproduces that along with double-digit
    /// concurrency.
    pub fn theta() -> Self {
        Self {
            system: SystemConfig::theta(),
            size_classes: vec![
                SizeClass::new(0.9, 1.0, 128.0),
                SizeClass::new(0.1, 128.0, 4_392.0),
            ],
            // Median runtime ~1 h, capped at 12 h.
            runtime_mu: (3_600.0f64).ln(),
            runtime_sigma: 1.0,
            runtime_min: 300.0,
            runtime_max: 12.0 * 3_600.0,
            walltime_overestimate: 2.0,
            bb_fraction: 0.1718,
            bb_min_gb: 1.0,
            bb_max_gb: 285.0 * GB_PER_TB,
            bb_tail_fraction: 0.0,
            bb_tail_max_gb: 285.0 * GB_PER_TB,
        }
    }

    /// A profile scaled to a smaller copy of the machine (see
    /// [`SystemConfig::scaled`]); job sizes and burst-buffer requests
    /// scale with it, so both the concurrency level and every
    /// demand-to-capacity ratio are preserved.
    pub fn scaled(&self, factor: f64) -> Self {
        let system = self.system.scaled(factor);
        let mut p = self.clone();
        p.size_classes = self
            .size_classes
            .iter()
            .map(|c| {
                let hi = (c.hi * factor).clamp(1.0, f64::from(system.nodes));
                let lo = (c.lo * factor).clamp(1.0, hi);
                SizeClass::new(c.weight, lo, hi)
            })
            .collect();
        p.bb_max_gb = self.bb_max_gb * factor;
        p.bb_min_gb = self.bb_min_gb.min(p.bb_max_gb);
        p.bb_tail_max_gb = self.bb_tail_max_gb * factor;
        p.system = system;
        p
    }

    /// Mean job size (nodes) of the mixture.
    pub fn mean_nodes(&self) -> f64 {
        let total: f64 = self.size_classes.iter().map(|c| c.weight).sum();
        self.size_classes.iter().map(|c| c.weight * c.mean()).sum::<f64>() / total.max(1e-12)
    }
}

/// Generation knobs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of jobs to generate.
    pub n_jobs: usize,
    /// RNG seed; identical seeds give identical traces.
    pub seed: u64,
    /// Target offered load (node-seconds offered per node-second of wall
    /// clock). ~1.0 keeps a persistent waiting queue, which is the regime
    /// the paper's results live in.
    pub load_factor: f64,
    /// Diurnal arrival modulation amplitude in `[0, 1)`: the instantaneous
    /// arrival rate follows `1 + A·sin(2π·t/day)`. 0 (default) gives a
    /// homogeneous Poisson process. §3.1 motivates dynamic window sizing
    /// with exactly this phenomenon ("job queue length often changes").
    #[serde(default)]
    pub diurnal_amplitude: f64,
    /// Weekend arrival-rate multiplier in `(0, 1]`: rates on days 6 and 7
    /// of each week are scaled by this factor ("it is typically longer
    /// during workdays and is shorter during weekends", §3.1). 1 (default)
    /// disables the effect.
    #[serde(default = "default_weekend_factor")]
    pub weekend_factor: f64,
}

fn default_weekend_factor() -> f64 {
    1.0
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            n_jobs: 5_000,
            seed: 0x0bb5_c4ed,
            load_factor: 1.1,
            diurnal_amplitude: 0.0,
            weekend_factor: 1.0,
        }
    }
}

/// Relative arrival rate at trace time `t` (seconds) for the configured
/// diurnal/weekly pattern; 1.0 when both effects are disabled.
pub fn arrival_rate_factor(config: &GeneratorConfig, t: f64) -> f64 {
    const DAY: f64 = 86_400.0;
    let mut f = 1.0 + config.diurnal_amplitude * (std::f64::consts::TAU * t / DAY).sin();
    let day_of_week = ((t / DAY).floor() as i64).rem_euclid(7);
    if day_of_week >= 5 {
        f *= config.weekend_factor;
    }
    f.max(1e-3)
}

/// Generates a trace from a machine profile.
///
/// # Panics
/// Panics if `n_jobs == 0` or `load_factor <= 0`.
pub fn generate(profile: &MachineProfile, config: &GeneratorConfig) -> Trace {
    assert!(config.n_jobs > 0, "n_jobs must be positive");
    assert!(config.load_factor > 0.0, "load_factor must be positive");
    let mut rng = SmallRng::seed_from_u64(config.seed);

    // Draw the resource part of every job first...
    struct Draft {
        nodes: u32,
        runtime: f64,
        walltime: f64,
        bb_gb: f64,
    }
    assert!(!profile.size_classes.is_empty(), "profile needs at least one size class");
    let total_weight: f64 = profile.size_classes.iter().map(|c| c.weight).sum();
    assert!(total_weight > 0.0, "size-class weights must sum to a positive value");

    let mut drafts = Vec::with_capacity(config.n_jobs);
    let mut total_node_seconds = 0.0;
    for _ in 0..config.n_jobs {
        // Pick a size class by weight, then a log-uniform size within it.
        let mut pick = rng.random_range(0.0..total_weight);
        let mut class = &profile.size_classes[0];
        for c in &profile.size_classes {
            if pick < c.weight {
                class = c;
                break;
            }
            pick -= c.weight;
        }
        let raw = dist::log_uniform(&mut rng, class.lo, class.hi);
        let nodes = (raw.round() as u32).clamp(1, profile.system.nodes);
        let runtime = dist::lognormal_clamped(
            &mut rng,
            profile.runtime_mu,
            profile.runtime_sigma,
            profile.runtime_min,
            profile.runtime_max,
        );
        let walltime = (runtime
            * rng.random_range(1.0..=profile.walltime_overestimate.max(1.0 + 1e-9)))
        .min(profile.runtime_max);
        let walltime = walltime.max(runtime);
        let bb_gb = if rng.random_bool(profile.bb_fraction.clamp(0.0, 1.0)) {
            if profile.bb_tail_fraction > 0.0
                && rng.random_bool(profile.bb_tail_fraction.clamp(0.0, 1.0))
            {
                dist::log_uniform(&mut rng, profile.bb_max_gb, profile.bb_tail_max_gb)
            } else {
                dist::log_uniform(&mut rng, profile.bb_min_gb, profile.bb_max_gb)
            }
        } else {
            0.0
        };
        total_node_seconds += f64::from(nodes) * runtime;
        drafts.push(Draft { nodes, runtime, walltime, bb_gb });
    }

    // ...then pick the Poisson arrival rate that hits the target load.
    let mean_job_node_seconds = total_node_seconds / config.n_jobs as f64;
    let arrival_rate = config.load_factor * f64::from(profile.system.nodes) / mean_job_node_seconds;
    let mean_gap = 1.0 / arrival_rate;

    assert!((0.0..1.0).contains(&config.diurnal_amplitude), "diurnal_amplitude must be in [0, 1)");
    assert!(
        config.weekend_factor > 0.0 && config.weekend_factor <= 1.0,
        "weekend_factor must be in (0, 1]"
    );
    let mut t = 0.0;
    let jobs: Vec<Job> = drafts
        .into_iter()
        .enumerate()
        .map(|(i, d)| {
            // Inhomogeneous Poisson via local rate scaling: the base gap is
            // stretched when the instantaneous rate is low.
            t += dist::exponential(&mut rng, mean_gap) / arrival_rate_factor(config, t);
            Job {
                id: i as u64,
                submit: t,
                nodes: d.nodes,
                runtime: d.runtime,
                walltime: d.walltime,
                bb_gb: d.bb_gb,
                ssd_gb_per_node: 0.0,
                deps: Vec::new(),
                extra: Vec::new(),
            }
        })
        .collect();

    Trace::from_jobs(jobs).expect("generator produced an invalid trace")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cori_trace_matches_calibration() {
        let profile = MachineProfile::cori();
        let cfg = GeneratorConfig {
            n_jobs: 20_000,
            seed: 1,
            load_factor: 1.0,
            ..GeneratorConfig::default()
        };
        let t = generate(&profile, &cfg);
        let s = t.stats();
        assert_eq!(s.n_jobs, 20_000);
        // BB participation ~0.618% (binomial, wide tolerance).
        assert!((s.bb_fraction() - 0.00618).abs() < 0.003, "bb fraction {}", s.bb_fraction());
        // Requests stay in [1 GB, 165 TB].
        if let Some((lo, hi)) = s.bb_range_gb {
            assert!(lo >= 1.0);
            assert!(hi <= 165.0 * GB_PER_TB * (1.0 + 1e-9));
        }
        // Offered load near target.
        assert!((s.offered_load(profile.system.nodes) - 1.0).abs() < 0.15);
    }

    #[test]
    fn theta_trace_matches_calibration() {
        let profile = MachineProfile::theta();
        let cfg = GeneratorConfig {
            n_jobs: 10_000,
            seed: 2,
            load_factor: 1.2,
            ..GeneratorConfig::default()
        };
        let t = generate(&profile, &cfg);
        let s = t.stats();
        assert!((s.bb_fraction() - 0.1718).abs() < 0.02, "bb fraction {}", s.bb_fraction());
        for j in t.jobs() {
            assert!(j.nodes >= 1 && j.nodes <= 4_392);
            assert!(j.walltime >= j.runtime);
        }
        // ~10% of jobs come from the capability class (> 128 nodes).
        let big = t.jobs().iter().filter(|j| j.nodes > 128).count() as f64;
        assert!((big / s.n_jobs as f64 - 0.10).abs() < 0.04, "big fraction {}", big);
        assert!((s.offered_load(profile.system.nodes) - 1.2).abs() < 0.2);
    }

    /// Offered burst-buffer load of a trace: BB-seconds demanded per
    /// BB-second of capacity over the submission span.
    fn offered_bb_load(t: &crate::trace::Trace, capacity_gb: f64) -> f64 {
        let bb_secs: f64 = t.jobs().iter().map(|j| j.bb_gb * j.runtime).sum();
        bb_secs / (t.stats().span_seconds * capacity_gb)
    }

    #[test]
    fn s4_contention_regime_is_calibrated() {
        // The whole evaluation hinges on the S-workloads' burst-buffer
        // pressure: S4 must hover around saturation (rho ~ 1) and S2 below
        // it. Far above 1 the system is permanently saturated and every
        // policy ties; far below 1 nothing contends.
        use crate::synthetic::Workload;
        let cori = MachineProfile::cori();
        let base = generate(
            &cori,
            &GeneratorConfig {
                n_jobs: 10_000,
                seed: 9,
                load_factor: 1.15,
                ..GeneratorConfig::default()
            },
        );
        let cap = cori.system.bb_usable_gb();
        let rho_s4 = offered_bb_load(&Workload::S4.apply(&base, 9), cap);
        let rho_s2 = offered_bb_load(&Workload::S2.apply(&base, 9), cap);
        assert!((0.6..1.8).contains(&rho_s4), "Cori S4 rho {rho_s4}");
        assert!(rho_s2 < rho_s4, "S2 rho {rho_s2} must be below S4 rho {rho_s4}");

        let theta = MachineProfile::theta();
        let base = generate(
            &theta,
            &GeneratorConfig {
                n_jobs: 10_000,
                seed: 9,
                load_factor: 1.15,
                ..GeneratorConfig::default()
            },
        );
        let cap = theta.system.bb_usable_gb();
        let rho_s4 = offered_bb_load(&Workload::S4.apply(&base, 9), cap);
        assert!((0.8..2.6).contains(&rho_s4), "Theta S4 rho {rho_s4}");
    }

    #[test]
    fn size_class_means() {
        assert!((SizeClass::new(1.0, 1.0, 512.0).mean() - 81.9).abs() < 0.5);
        assert_eq!(SizeClass::new(1.0, 5.0, 5.0).mean(), 5.0);
        // Mixture mean combines classes by weight.
        let p = MachineProfile::theta();
        let m = p.mean_nodes();
        assert!((100.0..250.0).contains(&m), "theta mean nodes {m}");
    }

    #[test]
    fn generation_is_deterministic() {
        let p = MachineProfile::cori();
        let cfg = GeneratorConfig {
            n_jobs: 500,
            seed: 99,
            load_factor: 1.0,
            ..GeneratorConfig::default()
        };
        assert_eq!(generate(&p, &cfg), generate(&p, &cfg));
    }

    #[test]
    fn different_seeds_differ() {
        let p = MachineProfile::cori();
        let a = generate(
            &p,
            &GeneratorConfig {
                n_jobs: 100,
                seed: 1,
                load_factor: 1.0,
                ..GeneratorConfig::default()
            },
        );
        let b = generate(
            &p,
            &GeneratorConfig {
                n_jobs: 100,
                seed: 2,
                load_factor: 1.0,
                ..GeneratorConfig::default()
            },
        );
        assert_ne!(a, b);
    }

    #[test]
    fn scaled_profile_stays_consistent() {
        let p = MachineProfile::theta().scaled(0.1);
        assert!(p.system.validate().is_ok());
        for c in &p.size_classes {
            assert!(c.lo >= 1.0 && c.lo <= c.hi);
            assert!(c.hi <= f64::from(p.system.nodes));
        }
        let t = generate(
            &p,
            &GeneratorConfig {
                n_jobs: 1_000,
                seed: 5,
                load_factor: 1.0,
                ..GeneratorConfig::default()
            },
        );
        for j in t.jobs() {
            assert!(j.nodes <= p.system.nodes);
        }
    }

    #[test]
    fn scaling_preserves_concurrency() {
        // Concurrency ~ nodes / mean job size must survive scaling, or the
        // burst-buffer contention regime would silently change.
        let full = MachineProfile::cori();
        let small = full.scaled(0.05);
        let conc_full = f64::from(full.system.nodes) / full.mean_nodes();
        let conc_small = f64::from(small.system.nodes) / small.mean_nodes();
        let ratio = conc_small / conc_full;
        assert!((0.5..=2.0).contains(&ratio), "concurrency ratio {ratio}");
    }

    #[test]
    fn arrival_rate_factor_shapes() {
        let flat = GeneratorConfig::default();
        assert_eq!(arrival_rate_factor(&flat, 0.0), 1.0);
        assert_eq!(arrival_rate_factor(&flat, 1e6), 1.0);
        let cfg = GeneratorConfig {
            diurnal_amplitude: 0.5,
            weekend_factor: 0.4,
            ..GeneratorConfig::default()
        };
        // Quarter-day: sin peak -> 1.5; three-quarter-day trough -> 0.5.
        assert!((arrival_rate_factor(&cfg, 21_600.0) - 1.5).abs() < 1e-9);
        assert!((arrival_rate_factor(&cfg, 64_800.0) - 0.5).abs() < 1e-9);
        // Day 5 (Saturday in trace time) scales by the weekend factor.
        let weekday = arrival_rate_factor(&cfg, 86_400.0 * 2.25);
        let weekend = arrival_rate_factor(&cfg, 86_400.0 * 5.25);
        assert!((weekend / weekday - 0.4).abs() < 1e-9);
    }

    #[test]
    fn diurnal_arrivals_cluster_in_peaks() {
        let p = MachineProfile::cori();
        let cfg = GeneratorConfig {
            n_jobs: 20_000,
            seed: 4,
            load_factor: 1.0,
            diurnal_amplitude: 0.8,
            weekend_factor: 1.0,
        };
        let t = generate(&p, &cfg);
        // Count arrivals in the rate-peak half-day [0, 0.5) vs the trough
        // half-day [0.5, 1.0) of each cycle.
        let (mut peak, mut trough) = (0usize, 0usize);
        for j in t.jobs() {
            let phase = (j.submit / 86_400.0).fract();
            if phase < 0.5 {
                peak += 1;
            } else {
                trough += 1;
            }
        }
        assert!(
            peak as f64 > trough as f64 * 1.5,
            "peak {peak} vs trough {trough}: diurnal modulation missing"
        );
    }

    #[test]
    fn submissions_strictly_increase() {
        let p = MachineProfile::cori();
        let t = generate(
            &p,
            &GeneratorConfig {
                n_jobs: 1_000,
                seed: 3,
                load_factor: 1.0,
                ..GeneratorConfig::default()
            },
        );
        for w in t.jobs().windows(2) {
            assert!(w[1].submit >= w[0].submit);
        }
    }
}
