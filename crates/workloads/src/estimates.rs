//! Runtime-estimate (walltime) models.
//!
//! EASY backfilling lives and dies by walltime estimates: reservations and
//! "ends before the shadow" checks use the *requested* time, and users
//! overestimate heavily (Mu'alem & Feitelson; the paper's own companion
//! work \[15\] studies the accuracy/underestimation trade-off). This module
//! provides estimator models that rewrite a trace's walltimes, so the
//! sensitivity of any result to estimate quality is one transform away.

use crate::job::Job;
use crate::trace::Trace;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A walltime-estimate model applied per job.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum EstimateModel {
    /// Oracle: `walltime = runtime` (perfect information; the upper bound
    /// on what better estimates could buy the scheduler).
    Exact,
    /// Classic user behaviour: `walltime = runtime × U(1, k)`, clamped to
    /// `cap` seconds when finite. `k = 2..5` matches production logs.
    Multiplicative {
        /// Maximum overestimation factor.
        factor: f64,
        /// Site walltime limit (s); `f64::INFINITY` disables the cap.
        cap: f64,
    },
    /// Bucketed requests: walltime rounded *up* to the next bucket
    /// boundary (users ask for 30 min / 1 h / 2 h / ...). Mimics the
    /// spiky request-time histograms of real logs.
    Bucketed {
        /// Bucket width (s), e.g. 1800 for half-hour granularity.
        bucket: f64,
        /// Site walltime limit (s).
        cap: f64,
    },
    /// Fixed site maximum: everyone requests the limit (the worst case for
    /// backfilling — no candidate ever "ends before the shadow").
    SiteMax {
        /// The limit everyone requests (s).
        limit: f64,
    },
}

impl EstimateModel {
    /// The walltime this model produces for a job with the given actual
    /// runtime. Always `>= runtime` (schedulers treat the request as a
    /// kill limit; an underestimating model would change job outcomes,
    /// which is a different experiment).
    pub fn walltime_for<R: Rng + ?Sized>(&self, runtime: f64, rng: &mut R) -> f64 {
        let w = match *self {
            EstimateModel::Exact => runtime,
            EstimateModel::Multiplicative { factor, cap } => {
                (runtime * rng.random_range(1.0..=factor.max(1.0 + 1e-9))).min(cap)
            }
            EstimateModel::Bucketed { bucket, cap } => {
                ((runtime / bucket).ceil() * bucket).min(cap)
            }
            EstimateModel::SiteMax { limit } => limit,
        };
        w.max(runtime)
    }

    /// Rewrites every job's walltime in a trace under this model.
    pub fn apply(&self, trace: &Trace, seed: u64) -> Trace {
        let mut rng = SmallRng::seed_from_u64(seed);
        trace
            .map_jobs(|mut j: Job| {
                j.walltime = self.walltime_for(j.runtime, &mut rng);
                j
            })
            .expect("estimate model produced an invalid trace")
    }
}

/// Mean overestimation factor `E[walltime / runtime]` of a trace
/// (diagnostic; 1.0 = perfect estimates).
pub fn mean_overestimation(trace: &Trace) -> f64 {
    if trace.is_empty() {
        return 1.0;
    }
    trace.jobs().iter().map(|j| j.walltime / j.runtime.max(f64::MIN_POSITIVE)).sum::<f64>()
        / trace.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig, MachineProfile};

    fn base() -> Trace {
        generate(
            &MachineProfile::theta().scaled(0.05),
            &GeneratorConfig { n_jobs: 500, seed: 3, ..GeneratorConfig::default() },
        )
    }

    #[test]
    fn exact_model_is_oracle() {
        let t = EstimateModel::Exact.apply(&base(), 1);
        for j in t.jobs() {
            assert_eq!(j.walltime, j.runtime);
        }
        assert!((mean_overestimation(&t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multiplicative_stays_in_band() {
        let m = EstimateModel::Multiplicative { factor: 3.0, cap: 43_200.0 };
        let t = m.apply(&base(), 2);
        for j in t.jobs() {
            assert!(j.walltime >= j.runtime);
            assert!(j.walltime <= (j.runtime * 3.0).min(43_200.0).max(j.runtime) + 1e-9);
        }
        let over = mean_overestimation(&t);
        assert!((1.2..3.0).contains(&over), "mean overestimation {over}");
    }

    #[test]
    fn bucketed_rounds_up() {
        let m = EstimateModel::Bucketed { bucket: 1_800.0, cap: 86_400.0 };
        let t = m.apply(&base(), 3);
        for j in t.jobs() {
            assert!(j.walltime >= j.runtime);
            let in_bucket = (j.walltime / 1_800.0).fract().abs() < 1e-9;
            assert!(
                in_bucket || j.walltime == j.runtime,
                "walltime {} not on a bucket boundary",
                j.walltime
            );
        }
    }

    #[test]
    fn site_max_floors_at_runtime() {
        // Jobs longer than the "limit" keep walltime = runtime (they'd be
        // killed otherwise, which is out of scope for estimate studies).
        let m = EstimateModel::SiteMax { limit: 600.0 };
        let t = m.apply(&base(), 4);
        for j in t.jobs() {
            assert!(j.walltime >= j.runtime);
            assert!(j.walltime == 600.0 || j.walltime == j.runtime);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let m = EstimateModel::Multiplicative { factor: 2.0, cap: f64::INFINITY };
        let b = base();
        assert_eq!(m.apply(&b, 9), m.apply(&b, 9));
        assert_ne!(m.apply(&b, 9), m.apply(&b, 10));
    }
}
