//! # bbsched-workloads
//!
//! Workload models and synthetic trace generation for the BBSched
//! reproduction (§4.1 of the paper).
//!
//! The paper evaluates on two real traces — a four-month Slurm log from
//! **Cori** (NERSC, capacity computing, 12,076 nodes, 1.8 PB shared burst
//! buffer) and a five-month Cobalt log from **Theta** (ALCF, capability
//! computing, 4,392 nodes, 1.26 PB projected shared burst buffer) — plus
//! eight synthetic workloads (S1–S4 per machine) that stress burst-buffer
//! demand, and three more (S5–S7, §5) that add local-SSD demand.
//!
//! The real logs are proprietary, so this crate provides *calibrated
//! generators* ([`generator`]) reproducing every published statistic of
//! Table 2 and Fig. 5 — system sizes, burst-buffer request ranges and
//! participation rates, job-size and runtime distributions typical of
//! capacity vs. capability systems — and the exact S1–S7 transformation
//! rules ([`synthetic`]). See DESIGN.md §3 for the substitution rationale.
//!
//! Around that core:
//!
//! * [`swf`] — Standard Workload Format import/export for real logs;
//! * [`estimates`] — walltime-estimate models (oracle → site-max) for
//!   backfilling sensitivity studies;
//! * [`dag`] — campaign/DAG weaving to exercise §3.1's dependency rule;
//! * diurnal/weekend arrival modulation in [`generator`] (§3.1's
//!   "job queue length often changes").

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dag;
pub mod dist;
pub mod estimates;
pub mod generator;
pub mod job;
pub mod swf;
pub mod synthetic;
pub mod system;
pub mod trace;

pub use dag::{weave_campaigns, DagConfig};
pub use estimates::EstimateModel;
pub use generator::{generate, GeneratorConfig, MachineProfile};
pub use job::Job;
pub use synthetic::{SsdMix, Workload};
pub use system::{ExtraResource, SystemConfig, SystemConfigError};
pub use trace::{Trace, TraceStats};

/// Gigabytes per terabyte, used throughout for burst-buffer arithmetic.
pub const GB_PER_TB: f64 = 1000.0;
