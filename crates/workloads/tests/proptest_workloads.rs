//! Property-based tests of trace generation, transforms, and persistence.

use bbsched_workloads::{generate, swf, GeneratorConfig, Job, MachineProfile, Trace, Workload};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every generated trace is internally valid for arbitrary seeds and
    /// sane loads, on both machines and at random scales.
    #[test]
    fn generated_traces_are_valid(
        seed in any::<u64>(),
        n_jobs in 1usize..300,
        load in 0.3f64..2.0,
        scale_pct in 1u32..=100,
        theta in any::<bool>(),
    ) {
        let factor = f64::from(scale_pct) / 100.0;
        let base = if theta { MachineProfile::theta() } else { MachineProfile::cori() };
        let profile = base.scaled(factor);
        let trace = generate(&profile, &GeneratorConfig { n_jobs, seed, load_factor: load, ..GeneratorConfig::default() });
        prop_assert_eq!(trace.len(), n_jobs);
        for j in trace.jobs() {
            prop_assert!(j.validate().is_ok());
            prop_assert!(j.nodes >= 1 && j.nodes <= profile.system.nodes);
            prop_assert!(j.walltime >= j.runtime);
            prop_assert!(j.bb_gb >= 0.0);
        }
        // Sorted by submit.
        for w in trace.jobs().windows(2) {
            prop_assert!(w[0].submit <= w[1].submit);
        }
    }

    /// The BB stress transforms never touch existing requests, never
    /// change the schedule-relevant fields, and only add requests.
    #[test]
    fn stress_transform_is_conservative(seed in any::<u64>(), xseed in any::<u64>()) {
        let profile = MachineProfile::cori().scaled(0.05);
        let base = generate(
            &profile,
            &GeneratorConfig { n_jobs: 400, seed, load_factor: 1.0, ..GeneratorConfig::default() },
        );
        for w in [Workload::S1, Workload::S2, Workload::S3, Workload::S4] {
            let out = w.apply_scaled(&base, xseed, 0.05);
            prop_assert_eq!(out.len(), base.len());
            for (a, b) in base.jobs().iter().zip(out.jobs()) {
                prop_assert_eq!(a.id, b.id);
                prop_assert_eq!(a.nodes, b.nodes);
                prop_assert!((a.submit - b.submit).abs() < 1e-12);
                prop_assert!((a.runtime - b.runtime).abs() < 1e-12);
                if a.bb_gb > 0.0 {
                    prop_assert_eq!(a.bb_gb, b.bb_gb, "existing request changed");
                } else {
                    prop_assert!(b.bb_gb >= 0.0);
                }
            }
            let frac = out.stats().bb_fraction();
            prop_assert!(frac >= base.stats().bb_fraction() - 1e-12);
            prop_assert!(frac <= 1.0);
        }
    }

    /// SSD transforms give every job a request within the §5 ranges.
    #[test]
    fn ssd_transform_ranges(seed in any::<u64>()) {
        let profile = MachineProfile::theta().scaled(0.05);
        let base = generate(
            &profile,
            &GeneratorConfig { n_jobs: 300, seed, load_factor: 1.0, ..GeneratorConfig::default() },
        );
        for w in [Workload::S5, Workload::S6, Workload::S7] {
            let out = w.apply_scaled(&base, seed ^ 1, 0.05);
            for j in out.jobs() {
                prop_assert!(j.ssd_gb_per_node >= 0.0);
                prop_assert!(j.ssd_gb_per_node <= 256.0);
            }
        }
    }

    /// SWF round-trips preserve the schedule-relevant fields for
    /// arbitrary job sets (integer-second times, as SWF requires).
    #[test]
    fn swf_roundtrip(
        raw in proptest::collection::vec(
            (0u32..100_000, 1u32..5_000, 1u32..100_000, 1.0f64..3.0, 0u32..50_000),
            1..50,
        )
    ) {
        let jobs: Vec<Job> = raw
            .into_iter()
            .enumerate()
            .map(|(i, (submit, nodes, runtime, wf, bb))| {
                let runtime = f64::from(runtime);
                Job::new(
                    i as u64,
                    f64::from(submit),
                    nodes,
                    runtime,
                    (runtime * wf).ceil(),
                )
                .with_bb(f64::from(bb))
            })
            .collect();
        let n = jobs.len();
        let t = Trace::from_jobs(jobs).unwrap();
        let dir = std::env::temp_dir()
            .join(format!("bbsched_prop_swf_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.swf");
        swf::write_swf(&t, &path).unwrap();
        let back = swf::read_swf(&path).unwrap();
        prop_assert_eq!(back.len(), n);
        for (a, b) in t.jobs().iter().zip(back.jobs()) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.nodes, b.nodes);
            prop_assert!((a.submit - b.submit).abs() < 1.0);
            prop_assert!((a.runtime - b.runtime).abs() < 1.0);
            prop_assert_eq!(a.bb_gb, b.bb_gb);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// JSONL round-trips are lossless.
    #[test]
    fn jsonl_roundtrip_lossless(
        raw in proptest::collection::vec(
            (0.0f64..1e6, 1u32..5_000, 1.0f64..1e5, 0.0f64..1e5),
            1..40,
        )
    ) {
        let jobs: Vec<Job> = raw
            .into_iter()
            .enumerate()
            .map(|(i, (submit, nodes, runtime, bb))| {
                Job::new(i as u64, submit, nodes, runtime, runtime * 2.0).with_bb(bb)
            })
            .collect();
        let t = Trace::from_jobs(jobs).unwrap();
        let dir = std::env::temp_dir()
            .join(format!("bbsched_prop_jsonl_{}_{:x}", std::process::id(), t.len()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        t.save_jsonl(&path).unwrap();
        let back = Trace::load_jsonl(&path).unwrap();
        prop_assert_eq!(&t, &back);
        std::fs::remove_dir_all(&dir).ok();
    }
}
