//! # bbsched-core
//!
//! The optimization core of **BBSched**, a multi-resource scheduling scheme
//! for HPC systems (Fan et al., *Scheduling Beyond CPUs for HPC*, HPDC 2019).
//!
//! BBSched formulates the question *"which jobs from the front-of-queue
//! window should start right now?"* as a multi-objective optimization (MOO)
//! problem — a multi-dimensional knapsack whose objectives are the
//! utilizations of each schedulable resource (compute nodes, shared burst
//! buffer, and optionally local SSDs) — and solves it with a multi-objective
//! genetic algorithm fast enough for the 15–30 s response-time budget of
//! production HPC schedulers.
//!
//! This crate provides, paper-section by paper-section:
//!
//! * [`problem`] — the MOO formulations of §3.2.1 (CPU + burst buffer) and
//!   §5 (CPU + burst buffer + heterogeneous local SSD), behind the
//!   [`problem::MooProblem`] trait so further resources can be added.
//! * [`chromosome`] — the binary selection vector (one gene per window
//!   slot), backed by a compact `u64` bitset.
//! * [`ga`] — the genetic solver of §3.2.2: population `P`, generations
//!   `G`, single-point crossover, bit-flip mutation `p_m`, and the
//!   Pareto-set + age elitist selection described in the paper. A scalarized
//!   mode powers the *weighted* and *constrained* comparison policies.
//! * [`pareto`] — dominance tests and Pareto-front extraction.
//! * [`exhaustive`] — the brute-force solver used as ground truth for
//!   generational distance (Fig. 4) and the exponential curve of Fig. 2.
//! * [`quality`] — generational distance (GD) and related front-quality
//!   metrics (§3.2.3).
//! * [`decision`] — the decision maker of §3.2.4 (2× trade-off rule) and
//!   its §5 extension (4× rule over three non-node axes).
//! * [`window`] — window-based scheduling bookkeeping and the starvation
//!   bound of §3.1.
//! * [`parallel`] — scoped-thread parallel population evaluation (the
//!   paper notes the GA "can be accelerated by leveraging parallel
//!   processing").
//!
//! ## Quick example
//!
//! ```
//! use bbsched_core::problem::{JobDemand, KnapsackMooProblem};
//! use bbsched_core::resource::ResourceModel;
//! use bbsched_core::ga::{GaConfig, MooGa};
//!
//! // Table 1 of the paper: 100 nodes, 100 TB of burst buffer, five jobs.
//! let window = vec![
//!     JobDemand::cpu_bb(80, 20_000.0),
//!     JobDemand::cpu_bb(10, 85_000.0),
//!     JobDemand::cpu_bb(40, 5_000.0),
//!     JobDemand::cpu_bb(10, 0.0),
//!     JobDemand::cpu_bb(20, 0.0),
//! ];
//! let problem = KnapsackMooProblem::new(window, ResourceModel::cpu_bb(100, 100_000.0));
//! let front = MooGa::new(GaConfig::default()).solve(&problem);
//! // The Pareto front contains the (100 nodes, 20 TB) and (80 nodes, 90 TB)
//! // trade-off points from Table 1(b).
//! assert!(front.len() >= 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chromosome;
pub mod decision;
pub mod exhaustive;
pub mod ga;
pub mod parallel;
pub mod pareto;
pub mod pools;
pub mod problem;
pub mod quality;
pub mod resource;
pub mod window;

pub use chromosome::Chromosome;
pub use decision::{choose_knee, choose_preferred, DecisionRule};
pub use ga::{GaConfig, GaConfigError, MooGa, SolveMode};
pub use pareto::{dominates, ParetoFront};
pub use pools::{NodeAssignment, PoolState};
pub use problem::{Available, JobDemand, KnapsackMooProblem, MooProblem, RepairStyle};
#[allow(deprecated)]
pub use problem::{CpuBbProblem, CpuBbSsdProblem};
pub use resource::{
    DemandSlot, Flavor, FlavorSet, ResourceKind, ResourceModel, ResourceModelError, ResourceSpec,
    ResourceVector, MAX_FLAVORS, MAX_RESOURCES,
};

/// Maximum number of objectives supported by the fixed-size objective
/// vector used on the GA hot path. The paper uses 2 (§3.2.1) and 4 (§5);
/// the generic core allows one utilization objective per registered
/// resource plus per-resource waste objectives.
pub const MAX_OBJECTIVES: usize = 6;

/// A fixed-capacity objective vector: `values[..len]` are meaningful.
///
/// Using a stack array instead of `Vec<f64>` keeps the GA inner loop free of
/// heap allocation (see the repo's HPC guide notes on allocation in hot
/// loops).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Objectives {
    values: [f64; MAX_OBJECTIVES],
    len: usize,
}

impl Objectives {
    /// Creates a zeroed objective vector with `len` active objectives.
    ///
    /// # Panics
    /// Panics if `len > MAX_OBJECTIVES` or `len == 0`.
    #[inline]
    pub fn zeros(len: usize) -> Self {
        assert!(len > 0 && len <= MAX_OBJECTIVES, "1..={MAX_OBJECTIVES} objectives supported");
        Self { values: [0.0; MAX_OBJECTIVES], len }
    }

    /// Builds an objective vector from a slice.
    ///
    /// # Panics
    /// Panics if the slice is empty or longer than [`MAX_OBJECTIVES`].
    #[inline]
    pub fn from_slice(slice: &[f64]) -> Self {
        let mut o = Self::zeros(slice.len());
        o.values[..slice.len()].copy_from_slice(slice);
        o
    }

    /// The active objective values.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.values[..self.len]
    }

    /// Mutable view of the active objective values.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.values[..self.len]
    }

    /// Number of active objectives.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether there are no active objectives (never true for a constructed
    /// vector; present for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Weighted sum of the active objectives (used by the scalarized GA).
    #[inline]
    pub fn weighted_sum(&self, weights: &[f64]) -> f64 {
        debug_assert_eq!(weights.len(), self.len);
        self.as_slice().iter().zip(weights).map(|(v, w)| v * w).sum()
    }
}

impl std::ops::Index<usize> for Objectives {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.as_slice()[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objectives_roundtrip() {
        let o = Objectives::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(o.len(), 3);
        assert_eq!(o.as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(o[1], 2.0);
        assert!(!o.is_empty());
    }

    #[test]
    fn objectives_weighted_sum() {
        let o = Objectives::from_slice(&[10.0, 20.0]);
        assert_eq!(o.weighted_sum(&[0.5, 0.25]), 10.0);
    }

    #[test]
    #[should_panic]
    fn objectives_reject_too_many() {
        let _ = Objectives::zeros(MAX_OBJECTIVES + 1);
    }

    #[test]
    #[should_panic]
    fn objectives_reject_zero() {
        let _ = Objectives::zeros(0);
    }
}
