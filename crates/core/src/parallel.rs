//! Parallel population evaluation.
//!
//! §3.2.2 notes that the genetic solver "can be accelerated by leveraging
//! parallel processing" and §3.3 that the `O(G × P)` cost "can be further
//! lowered via parallel processing of the MOO". Repair and evaluation of a
//! generation's chromosomes are embarrassingly parallel, so we shard the
//! population across scoped `std::thread` workers.
//!
//! Measured honestly (`ga_scaling` bench): per-generation scoped-thread
//! spawning costs more than it saves even at `w = 256`, `P = 128` on this
//! workload — chromosome evaluation is just too cheap. The hook matters
//! for *expensive* `MooProblem::evaluate` implementations (e.g. problems
//! that consult a placement simulator per candidate), which is the
//! scenario the paper's "parallel processing" remark anticipates; for the
//! paper's own knapsack objectives, keep `threads = 1`.
//!
//! Sharding uses `std::thread::scope` (stable since 1.63), which joins all
//! workers on scope exit and propagates worker panics — the same
//! guarantees the earlier `crossbeam::scope` implementation relied on,
//! without the external dependency.

use crate::chromosome::Chromosome;
use crate::problem::MooProblem;
use crate::Objectives;

/// Greedy saturation: select every still-fitting unselected job, front of
/// the window first. Because both MOO formulations have objectives that are
/// monotone in the selection, the saturated chromosome weakly dominates the
/// input — exact Pareto points are always saturated.
pub fn saturate<P: MooProblem + ?Sized>(problem: &P, c: &mut Chromosome) {
    for i in 0..c.len() {
        if !c.get(i) {
            c.set(i, true);
            if !problem.is_feasible(c) {
                c.set(i, false);
            }
        }
    }
}

/// Repairs (and optionally saturates) every chromosome in place and returns
/// their objective vectors, using up to `threads` worker threads (1 = fully
/// serial, no spawning).
pub fn repair_and_evaluate<P: MooProblem + ?Sized>(
    problem: &P,
    chroms: &mut [Chromosome],
    threads: usize,
    saturate_after: bool,
) -> Vec<Objectives> {
    let fix = |problem: &P, c: &mut Chromosome| {
        problem.repair(c);
        if saturate_after {
            saturate(problem, c);
        }
    };
    if threads <= 1 || chroms.len() < 2 {
        return chroms
            .iter_mut()
            .map(|c| {
                fix(problem, c);
                problem.evaluate(c)
            })
            .collect();
    }

    let n = chroms.len();
    let workers = threads.min(n);
    let chunk = n.div_ceil(workers);
    let mut out = vec![Objectives::zeros(problem.num_objectives().max(1)); n];

    std::thread::scope(|s| {
        let mut rem_chroms: &mut [Chromosome] = chroms;
        let mut rem_out: &mut [Objectives] = &mut out;
        while !rem_chroms.is_empty() {
            let take = chunk.min(rem_chroms.len());
            let (c_head, c_tail) = rem_chroms.split_at_mut(take);
            let (o_head, o_tail) = rem_out.split_at_mut(take);
            rem_chroms = c_tail;
            rem_out = o_tail;
            s.spawn(move || {
                for (c, o) in c_head.iter_mut().zip(o_head.iter_mut()) {
                    problem.repair(c);
                    if saturate_after {
                        saturate(problem, c);
                    }
                    *o = problem.evaluate(c);
                }
            });
        }
    });

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{JobDemand, KnapsackMooProblem};
    use crate::resource::ResourceModel;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_problem(w: usize, seed: u64) -> (KnapsackMooProblem, Vec<Chromosome>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let window: Vec<JobDemand> = (0..w)
            .map(|_| JobDemand::cpu_bb(rng.random_range(1..100), rng.random_range(0.0..1000.0)))
            .collect();
        let problem = KnapsackMooProblem::new(window, ResourceModel::cpu_bb(200, 2_000.0));
        let chroms: Vec<Chromosome> = (0..32)
            .map(|_| {
                let mut c = Chromosome::zeros(w);
                for i in 0..w {
                    if rng.random_bool(0.5) {
                        c.set(i, true);
                    }
                }
                c
            })
            .collect();
        (problem, chroms)
    }

    #[test]
    fn parallel_matches_serial() {
        let (problem, chroms) = random_problem(40, 7);
        let mut serial = chroms.clone();
        let mut par = chroms;
        let so = repair_and_evaluate(&problem, &mut serial, 1, false);
        let po = repair_and_evaluate(&problem, &mut par, 4, false);
        assert_eq!(serial, par);
        assert_eq!(so.len(), po.len());
        for (a, b) in so.iter().zip(&po) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn all_outputs_feasible() {
        let (problem, mut chroms) = random_problem(25, 11);
        let _ = repair_and_evaluate(&problem, &mut chroms, 3, false);
        for c in &chroms {
            assert!(problem.is_feasible(c));
        }
    }

    #[test]
    fn handles_single_chromosome() {
        let (problem, mut chroms) = random_problem(10, 3);
        chroms.truncate(1);
        let out = repair_and_evaluate(&problem, &mut chroms, 8, false);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn handles_empty_batch() {
        let (problem, _) = random_problem(10, 3);
        let mut none: Vec<Chromosome> = vec![];
        let out = repair_and_evaluate(&problem, &mut none, 4, false);
        assert!(out.is_empty());
    }

    #[test]
    fn saturation_weakly_dominates() {
        let (problem, chroms) = random_problem(30, 19);
        for c in &chroms {
            let mut repaired = c.clone();
            problem.repair(&mut repaired);
            let before = problem.evaluate(&repaired);
            let mut polished = repaired.clone();
            saturate(&problem, &mut polished);
            assert!(problem.is_feasible(&polished));
            let after = problem.evaluate(&polished);
            for (b, a) in before.as_slice().iter().zip(after.as_slice()) {
                assert!(a >= b, "saturation must not lose objective value");
            }
            // Saturated: no unselected job fits.
            for i in 0..polished.len() {
                if !polished.get(i) {
                    let mut probe = polished.clone();
                    probe.set(i, true);
                    assert!(!problem.is_feasible(&probe), "job {i} still fits after saturation");
                }
            }
        }
    }

    #[test]
    fn saturated_batch_matches_flag() {
        let (problem, chroms) = random_problem(20, 23);
        let mut plain = chroms.clone();
        let mut polished = chroms;
        let _ = repair_and_evaluate(&problem, &mut plain, 1, false);
        let _ = repair_and_evaluate(&problem, &mut polished, 1, true);
        // Polished chromosomes select a superset of the plain ones.
        for (a, b) in plain.iter().zip(&polished) {
            for i in 0..a.len() {
                assert!(!a.get(i) || b.get(i), "saturation removed a selection");
            }
        }
    }
}
