//! Parallel evaluation and the coarse-grained worker pool.
//!
//! §3.2.2 notes that the genetic solver "can be accelerated by leveraging
//! parallel processing" and §3.3 that the `O(G × P)` cost "can be further
//! lowered via parallel processing of the MOO". Two grains are on offer
//! here, and only one of them pays for the paper's own problems:
//!
//! * **Per-generation sharding** ([`repair_and_evaluate`] with
//!   `threads > 1`): measured honestly (`ga_scaling` bench), scoped-thread
//!   spawning per generation costs more than it saves even at `w = 256`,
//!   `P = 128` — chromosome evaluation is just too cheap. The hook remains
//!   for *expensive* `MooProblem::evaluate` implementations (e.g. problems
//!   that consult a placement simulator per candidate); for the paper's
//!   knapsack objectives, keep `threads = 1` and let the GA take the
//!   serial, memoized path ([`repair_and_evaluate_memo`]).
//! * **Whole-task batching** ([`run_batch`]): entire GA invocations,
//!   simulations, or experiment-grid cells are seconds-scale and
//!   embarrassingly parallel, so that is where threads go — the CLI's
//!   `--threads` and the bench sweep driver both fan out over [`run_batch`],
//!   which returns results in input order so parallel output is
//!   byte-identical to serial output.
//!
//! Everything uses `std::thread::scope` (stable since 1.63), which joins
//! all workers on scope exit and propagates worker panics — the same
//! guarantees the earlier `crossbeam::scope` implementation relied on,
//! without the external dependency.

use crate::chromosome::Chromosome;
use crate::problem::MooProblem;
use crate::Objectives;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// FNV-1a hasher for the memo: chromosome keys are one or two `u64` words,
/// for which SipHash's per-lookup cost is pure overhead on the GA hot path.
#[derive(Default)]
struct FnvHasher(u64);

impl Hasher for FnvHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x1000_0000_01b3);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// Greedy saturation: select every still-fitting unselected job, front of
/// the window first. Because both MOO formulations have objectives that are
/// monotone in the selection, the saturated chromosome weakly dominates the
/// input — exact Pareto points are always saturated.
///
/// Feasibility probes go through the problem's scratch state
/// ([`MooProblem::scratch_from`]), so one pass over the window costs O(w)
/// aggregate work instead of the O(w²) of a full rescan per probe.
pub fn saturate<P: MooProblem + ?Sized>(problem: &P, c: &mut Chromosome) {
    let mut scratch = problem.scratch_from(c);
    for i in 0..c.len() {
        if !c.get(i) {
            problem.scratch_set(&mut scratch, i, true);
            if problem.scratch_is_feasible(&scratch) {
                c.set(i, true);
            } else {
                problem.scratch_set(&mut scratch, i, false);
            }
        }
    }
}

/// Memo of repair/saturate/evaluate results, keyed by the *pre-repair*
/// chromosome.
///
/// Sound because repair and saturation are pure functions of the chromosome
/// (the cyclic repair order derives from the content hash, not an RNG) and
/// `evaluate` is pure by the [`MooProblem`] contract. Duplicate children
/// proliferate once the population converges — crossover of equal parents
/// reproduces them exactly — so late-run generations hit the memo almost
/// every time. One memo must never be shared across different problems.
#[derive(Default)]
pub struct EvalMemo {
    map: HashMap<Chromosome, (Chromosome, Objectives), BuildHasherDefault<FnvHasher>>,
}

impl EvalMemo {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Distinct pre-repair chromosomes seen so far.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the memo has seen no chromosome yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Serial, memoized variant of [`repair_and_evaluate`]: each chromosome is
/// looked up pre-repair, and only misses pay for repair + saturation +
/// evaluation. Results (including the in-place repaired chromosomes) are
/// identical to the unmemoized path.
pub fn repair_and_evaluate_memo<P: MooProblem + ?Sized>(
    problem: &P,
    chroms: &mut [Chromosome],
    saturate_after: bool,
    memo: &mut EvalMemo,
) -> Vec<Objectives> {
    chroms
        .iter_mut()
        .map(|c| {
            if let Some((fixed, objs)) = memo.map.get(c) {
                c.clone_from(fixed);
                return *objs;
            }
            let key = c.clone();
            let objs = if saturate_after {
                problem.repair(c);
                saturate(problem, c);
                problem.evaluate(c)
            } else {
                problem.repair_evaluate(c)
            };
            memo.map.insert(key, (c.clone(), objs));
            objs
        })
        .collect()
}

/// Repairs (and optionally saturates) every chromosome in place and returns
/// their objective vectors, using up to `threads` worker threads (1 = fully
/// serial, no spawning).
pub fn repair_and_evaluate<P: MooProblem + ?Sized>(
    problem: &P,
    chroms: &mut [Chromosome],
    threads: usize,
    saturate_after: bool,
) -> Vec<Objectives> {
    let fix = |problem: &P, c: &mut Chromosome| {
        problem.repair(c);
        if saturate_after {
            saturate(problem, c);
        }
    };
    if threads <= 1 || chroms.len() < 2 {
        return chroms
            .iter_mut()
            .map(|c| {
                fix(problem, c);
                problem.evaluate(c)
            })
            .collect();
    }

    let n = chroms.len();
    let workers = threads.min(n);
    let chunk = n.div_ceil(workers);
    let mut out = vec![Objectives::zeros(problem.num_objectives().max(1)); n];

    std::thread::scope(|s| {
        let mut rem_chroms: &mut [Chromosome] = chroms;
        let mut rem_out: &mut [Objectives] = &mut out;
        while !rem_chroms.is_empty() {
            let take = chunk.min(rem_chroms.len());
            let (c_head, c_tail) = rem_chroms.split_at_mut(take);
            let (o_head, o_tail) = rem_out.split_at_mut(take);
            rem_chroms = c_tail;
            rem_out = o_tail;
            s.spawn(move || {
                for (c, o) in c_head.iter_mut().zip(o_head.iter_mut()) {
                    problem.repair(c);
                    if saturate_after {
                        saturate(problem, c);
                    }
                    *o = problem.evaluate(c);
                }
            });
        }
    });

    out
}

/// Runs a batch of independent jobs on up to `threads` OS threads and
/// returns their results **in input order** — the coarse parallel grain
/// (whole GA invocations, whole simulations, whole experiment cells) where
/// threading actually pays on this workload; see the module doc.
///
/// Jobs are handed out dynamically (an atomic cursor), so uneven job costs
/// balance across workers. With `threads <= 1` or fewer than two jobs the
/// batch runs inline on the caller's thread, spawning nothing. Worker
/// panics propagate to the caller via `std::thread::scope`.
pub fn run_batch<T, F>(threads: usize, jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    if threads <= 1 || jobs.len() < 2 {
        return jobs.into_iter().map(|f| f()).collect();
    }
    let n = jobs.len();
    let jobs: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = jobs[i].lock().unwrap().take().expect("each job is taken once");
                *slots[i].lock().unwrap() = Some(job());
            });
        }
    });
    slots.into_iter().map(|m| m.into_inner().unwrap().expect("every job slot is filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{JobDemand, KnapsackMooProblem};
    use crate::resource::ResourceModel;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_problem(w: usize, seed: u64) -> (KnapsackMooProblem, Vec<Chromosome>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let window: Vec<JobDemand> = (0..w)
            .map(|_| JobDemand::cpu_bb(rng.random_range(1..100), rng.random_range(0.0..1000.0)))
            .collect();
        let problem = KnapsackMooProblem::new(window, ResourceModel::cpu_bb(200, 2_000.0));
        let chroms: Vec<Chromosome> = (0..32)
            .map(|_| {
                let mut c = Chromosome::zeros(w);
                for i in 0..w {
                    if rng.random_bool(0.5) {
                        c.set(i, true);
                    }
                }
                c
            })
            .collect();
        (problem, chroms)
    }

    #[test]
    fn parallel_matches_serial() {
        let (problem, chroms) = random_problem(40, 7);
        let mut serial = chroms.clone();
        let mut par = chroms;
        let so = repair_and_evaluate(&problem, &mut serial, 1, false);
        let po = repair_and_evaluate(&problem, &mut par, 4, false);
        assert_eq!(serial, par);
        assert_eq!(so.len(), po.len());
        for (a, b) in so.iter().zip(&po) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn all_outputs_feasible() {
        let (problem, mut chroms) = random_problem(25, 11);
        let _ = repair_and_evaluate(&problem, &mut chroms, 3, false);
        for c in &chroms {
            assert!(problem.is_feasible(c));
        }
    }

    #[test]
    fn handles_single_chromosome() {
        let (problem, mut chroms) = random_problem(10, 3);
        chroms.truncate(1);
        let out = repair_and_evaluate(&problem, &mut chroms, 8, false);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn handles_empty_batch() {
        let (problem, _) = random_problem(10, 3);
        let mut none: Vec<Chromosome> = vec![];
        let out = repair_and_evaluate(&problem, &mut none, 4, false);
        assert!(out.is_empty());
    }

    #[test]
    fn run_batch_preserves_input_order() {
        let want: Vec<usize> = (0..40).map(|i| i * i).collect();
        for threads in [1usize, 2, 4, 16, 64] {
            let jobs: Vec<_> = (0..40).map(|i| move || i * i).collect();
            assert_eq!(run_batch(threads, jobs), want, "order broke at {threads} threads");
        }
    }

    #[test]
    fn run_batch_handles_empty_and_single() {
        assert!(run_batch::<i32, fn() -> i32>(4, vec![]).is_empty());
        assert_eq!(run_batch(4, vec![|| 7]), vec![7]);
    }

    #[test]
    fn memoized_path_matches_unmemoized() {
        let (problem, chroms) = random_problem(30, 31);
        // Duplicate a prefix so the memo actually gets hits.
        let mut with_dups = chroms.clone();
        with_dups.extend(chroms.iter().take(8).cloned());
        for saturate_after in [false, true] {
            let mut plain = with_dups.clone();
            let mut memoed = with_dups.clone();
            let mut memo = EvalMemo::new();
            assert!(memo.is_empty());
            let po = repair_and_evaluate(&problem, &mut plain, 1, saturate_after);
            let mo = repair_and_evaluate_memo(&problem, &mut memoed, saturate_after, &mut memo);
            assert_eq!(plain, memoed, "memo hits must restore the repaired chromosome");
            for (a, b) in po.iter().zip(&mo) {
                assert_eq!(a.as_slice(), b.as_slice());
            }
            assert!(memo.len() <= with_dups.len() - 8, "duplicates must hit, not insert");
        }
    }

    #[test]
    fn saturation_weakly_dominates() {
        let (problem, chroms) = random_problem(30, 19);
        for c in &chroms {
            let mut repaired = c.clone();
            problem.repair(&mut repaired);
            let before = problem.evaluate(&repaired);
            let mut polished = repaired.clone();
            saturate(&problem, &mut polished);
            assert!(problem.is_feasible(&polished));
            let after = problem.evaluate(&polished);
            for (b, a) in before.as_slice().iter().zip(after.as_slice()) {
                assert!(a >= b, "saturation must not lose objective value");
            }
            // Saturated: no unselected job fits.
            for i in 0..polished.len() {
                if !polished.get(i) {
                    let mut probe = polished.clone();
                    probe.set(i, true);
                    assert!(!problem.is_feasible(&probe), "job {i} still fits after saturation");
                }
            }
        }
    }

    #[test]
    fn saturated_batch_matches_flag() {
        let (problem, chroms) = random_problem(20, 23);
        let mut plain = chroms.clone();
        let mut polished = chroms;
        let _ = repair_and_evaluate(&problem, &mut plain, 1, false);
        let _ = repair_and_evaluate(&problem, &mut polished, 1, true);
        // Polished chromosomes select a superset of the plain ones.
        for (a, b) in plain.iter().zip(&polished) {
            for i in 0..a.len() {
                assert!(!a.get(i) || b.get(i), "saturation removed a selection");
            }
        }
    }
}
