//! MOO problem formulations.
//!
//! §3.2.1 of the paper formulates window-based multi-resource scheduling as
//! a bi-objective knapsack: maximize `f1 = Σ n_i·x_i` (node utilization) and
//! `f2 = Σ b_i·x_i` (burst-buffer utilization) subject to the available
//! node and burst-buffer capacities. §5 extends it with two local-SSD
//! objectives (`f3` utilization, `f4` minus wasted capacity) on a cluster
//! whose nodes carry heterogeneous 128 GB / 256 GB SSDs.
//!
//! Both instantiations are now presets of one generic formulation,
//! [`KnapsackMooProblem`], which works over any [`ResourceModel`] of up to
//! [`crate::resource::MAX_RESOURCES`] pooled or per-node
//! resources — the paper's stated extensibility goal ("BBSched can be
//! easily extended to schedule other schedulable resources") realized as
//! data instead of code. The historical [`CpuBbProblem`] and
//! [`CpuBbSsdProblem`] types remain as thin deprecated wrappers and are
//! byte-for-byte equivalent to the generic path (see the golden tests).

use crate::chromosome::Chromosome;
use crate::resource::{ResourceModel, ResourceVector, MAX_EXTRA, MAX_FLAVORS, MAX_RESOURCES};
use crate::{Objectives, MAX_OBJECTIVES};
use serde::{Deserialize, Serialize};

/// Per-job resource demand as seen by the optimizer: one entry per window
/// slot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct JobDemand {
    /// Requested compute nodes (`n_i`).
    pub nodes: u32,
    /// Requested shared burst buffer in GB (`b_i`).
    pub bb_gb: f64,
    /// Requested local SSD per node in GB (`s_i`); 0 when the job (or the
    /// experiment) does not use local SSDs.
    pub ssd_gb_per_node: f64,
    /// Demands for resources registered beyond the paper's three (see
    /// [`DemandSlot::Extra`](crate::resource::DemandSlot::Extra)); unused
    /// slots stay 0.
    #[serde(default)]
    pub extra: [f64; MAX_EXTRA],
}

impl JobDemand {
    /// A demand over nodes and shared burst buffer only (§3.2.1 problems).
    pub fn cpu_bb(nodes: u32, bb_gb: f64) -> Self {
        Self { nodes, bb_gb, ..Self::default() }
    }

    /// A demand over nodes, shared burst buffer, and local SSD (§5).
    pub fn cpu_bb_ssd(nodes: u32, bb_gb: f64, ssd_gb_per_node: f64) -> Self {
        Self { nodes, bb_gb, ssd_gb_per_node, ..Self::default() }
    }

    /// Sets the demand for an extra registered resource (builder style).
    ///
    /// # Panics
    /// Panics if `slot >= MAX_EXTRA`.
    pub fn with_extra(mut self, slot: usize, amount: f64) -> Self {
        self.extra[slot] = amount;
        self
    }
}

/// Resources available at one scheduling invocation (i.e., `N - N_used`,
/// `B - B_used`, and the free node counts per SSD flavour).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Available {
    /// Free compute nodes.
    pub nodes: u32,
    /// Free shared burst buffer in GB.
    pub bb_gb: f64,
    /// Free nodes equipped with [`SSD_SMALL_GB`] local SSDs.
    pub nodes_128: u32,
    /// Free nodes equipped with [`SSD_LARGE_GB`] local SSDs.
    pub nodes_256: u32,
}

/// Capacity of the smaller local-SSD flavour (GB), per §5.
pub const SSD_SMALL_GB: f64 = 128.0;
/// Capacity of the larger local-SSD flavour (GB), per §5.
pub const SSD_LARGE_GB: f64 = 256.0;

impl Available {
    /// Availability for a CPU + burst-buffer system with no local SSDs.
    pub fn cpu_bb(nodes: u32, bb_gb: f64) -> Self {
        Self { nodes, bb_gb, nodes_128: 0, nodes_256: 0 }
    }

    /// Availability with heterogeneous local SSD pools. `nodes` must equal
    /// `nodes_128 + nodes_256` for SSD-aware problems.
    pub fn with_ssd(nodes_128: u32, nodes_256: u32, bb_gb: f64) -> Self {
        Self { nodes: nodes_128 + nodes_256, bb_gb, nodes_128, nodes_256 }
    }
}

/// Incremental-evaluation state for repeated feasibility probes against one
/// selection (see [`MooProblem::scratch_from`]).
///
/// Holds a mirror of the selection it describes plus, for problems that
/// support constant-time deltas ([`KnapsackMooProblem`]), the running
/// `Aggregate` of the mirrored selection. Probing feasibility after a
/// single-gene change through the scratch is O(R) instead of the O(w)
/// full rescan of [`MooProblem::is_feasible`], which turns the O(w²)
/// flip-probe loops of saturation and unconditional repair into O(w).
#[derive(Clone, Debug)]
pub struct EvalScratch {
    /// The selection this scratch describes. Default trait implementations
    /// evaluate feasibility from it directly; incremental implementations
    /// keep it as the debug-assert oracle.
    mirror: Chromosome,
    /// Running aggregate demand, maintained by delta; `None` for problems
    /// without an incremental override.
    agg: Option<Aggregate>,
}

impl EvalScratch {
    /// The selection the scratch currently describes.
    pub fn selection(&self) -> &Chromosome {
        &self.mirror
    }
}

/// A multi-objective window-selection problem.
///
/// Implementations must guarantee that `evaluate` is a pure function of the
/// chromosome (the GA caches objective vectors) and that `repair` always
/// produces a feasible chromosome.
pub trait MooProblem: Sync {
    /// Window size `w` (number of genes).
    fn len(&self) -> usize;

    /// `true` when the window holds no jobs.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of objectives (2 for §3.2.1, 4 for §5).
    fn num_objectives(&self) -> usize;

    /// Computes the objective vector of a (feasible) selection.
    fn evaluate(&self, x: &Chromosome) -> Objectives;

    /// Whether the selection satisfies every capacity constraint.
    fn is_feasible(&self, x: &Chromosome) -> bool;

    /// Makes `x` feasible by deselecting jobs, never by selecting new ones.
    ///
    /// BBSched's repair drops set genes in a pseudo-random cyclic order
    /// derived from the chromosome itself (pure, parallel-safe, and free of
    /// positional bias — a rear-first rule was found to systematically
    /// starve rear-window genes and collapse GA diversity; see DESIGN.md
    /// §6). The paper leaves constraint handling unspecified.
    fn repair(&self, x: &mut Chromosome);

    /// Per-objective normalization factors that convert raw objective values
    /// (node counts, GB) into system-relative utilization fractions. Used by
    /// the decision maker and by scalarizing policies so that weights are
    /// comparable across resources.
    fn normalizers(&self) -> Objectives;

    /// Creates scratch state describing the selection `x`, priming whatever
    /// running aggregates the problem maintains incrementally.
    ///
    /// The default implementation (and the defaults of the other `scratch_*`
    /// methods) falls back to full rescans of the mirrored selection, so
    /// trait implementors get correct — if not faster — behavior for free.
    fn scratch_from(&self, x: &Chromosome) -> EvalScratch {
        EvalScratch { mirror: x.clone(), agg: None }
    }

    /// Sets gene `i` of the scratch's selection to `on`, applying the
    /// matching ±item delta to any running aggregate. A no-op when the gene
    /// already has that value.
    fn scratch_set(&self, scratch: &mut EvalScratch, i: usize, on: bool) {
        scratch.mirror.set(i, on);
        let _ = self;
    }

    /// Whether the scratch's selection satisfies every capacity constraint;
    /// the same contract as [`MooProblem::is_feasible`], answered from the
    /// running aggregate when the problem maintains one.
    fn scratch_is_feasible(&self, scratch: &EvalScratch) -> bool {
        self.is_feasible(&scratch.mirror)
    }

    /// Repairs `x` and returns its objective vector — exactly
    /// `repair(x); evaluate(x)`, which is also the default implementation.
    ///
    /// Problems that aggregate demand during repair may override this to
    /// reuse that aggregate for evaluation when repair dropped nothing (the
    /// common case once the GA population is mostly feasible), saving one
    /// full window rescan per chromosome.
    fn repair_evaluate(&self, x: &mut Chromosome) -> Objectives {
        self.repair(x);
        self.evaluate(x)
    }
}

/// Floating-point slack for burst-buffer feasibility: requests are sums of
/// values ≥ 1 GB, so a relative epsilon avoids rejecting selections that are
/// feasible up to rounding.
const BB_EPS: f64 = 1e-9;

/// How [`KnapsackMooProblem::repair`] decides which set genes to drop while
/// walking the cyclic order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RepairStyle {
    /// Drop a gene only if it has positive demand on a currently violated
    /// constraint (the §3.2.1 implementation's rule, generalized to N
    /// resources). Never removes jobs that cannot help, so it preserves
    /// more of the candidate selection.
    #[default]
    DropIfRelieves,
    /// Drop every set gene encountered until the selection is feasible —
    /// the rule the original §5 SSD implementation used. Kept so the
    /// historical CPU+BB+SSD solver stream is reproducible bit-for-bit.
    DropUnconditionally,
}

/// Per-item hot-path data, precomputed once at problem construction so the
/// GA inner loop touches no `ResourceModel` indirection.
#[derive(Clone, Copy, Debug)]
struct Item {
    /// Requested nodes (exact integer arithmetic for resource 0).
    nodes: u32,
    /// Flavour class of the per-node resource (0 when none is registered).
    class: u8,
    /// Total demand per resource: pooled amount, or `per_node × nodes` for
    /// the per-node resource.
    totals: ResourceVector,
}

/// Aggregated demand of a selection.
#[derive(Clone, Copy, Debug)]
struct Aggregate {
    nodes: u64,
    /// Per-resource totals (`sums[0]` mirrors `nodes` and is unused).
    sums: [f64; MAX_RESOURCES],
    /// Selected node-slots per flavour class of the per-node resource.
    class_nodes: [u64; MAX_FLAVORS],
}

impl Aggregate {
    fn zero() -> Self {
        Self { nodes: 0, sums: [0.0; MAX_RESOURCES], class_nodes: [0; MAX_FLAVORS] }
    }
}

/// The generic window knapsack over an arbitrary [`ResourceModel`].
///
/// Objectives, in order: the utilization of each registered resource
/// (`Σ demand_i·x_i`; per-node resources use `Σ s_i·n_i·x_i`), followed by
/// **minus** wasted capacity for every resource with a waste objective.
/// With [`ResourceModel::cpu_bb`] this is exactly the §3.2.1 bi-objective
/// problem; with [`ResourceModel::cpu_bb_ssd`] it is exactly the §5
/// four-objective problem, including the greedy smallest-flavour-first
/// node assignment ("jobs requesting no more than 128 GB local SSD per
/// node \[prefer 128 GB nodes\] in order to mitigate wastage").
#[derive(Clone, Debug)]
pub struct KnapsackMooProblem {
    window: Vec<JobDemand>,
    items: Vec<Item>,
    model: ResourceModel,
    avail: ResourceVector,
    avail_nodes: u64,
    /// `(resource index, waste tracked)` of the per-node resource, if any;
    /// its flavour table is cached in `flavors`.
    per_node: Option<(usize, bool)>,
    flavors: crate::resource::FlavorSet,
    n_res: usize,
    n_obj: usize,
    norm: Objectives,
    repair_style: RepairStyle,
}

impl KnapsackMooProblem {
    /// Builds the problem for a window of jobs against a resource model
    /// whose `available` amounts describe the free capacity right now.
    ///
    /// # Panics
    /// Panics if the model registers a per-node resource whose flavour node
    /// counts do not sum to the available node count (the pools partition
    /// the machine).
    pub fn new(window: Vec<JobDemand>, model: ResourceModel) -> Self {
        let n_res = model.len();
        let per_node_full = model.per_node_resource();
        if let Some((_, flavors, _)) = per_node_full {
            assert_eq!(
                u64::from(model.avail_nodes()),
                u64::from(flavors.total_count()),
                "per-node flavour counts must sum to the available node count"
            );
        }
        let flavors = per_node_full
            .map(|(_, f, _)| *f)
            .unwrap_or_else(|| crate::resource::FlavorSet::homogeneous(0.0, 0));
        let per_node = per_node_full.map(|(r, _, w)| (r, w));
        let items = window
            .iter()
            .map(|d| {
                let mut totals = ResourceVector::zeros(n_res);
                let mut class = 0u8;
                for r in 0..n_res {
                    let raw = model.demand_of(d, r);
                    let total = match per_node {
                        Some((pr, _)) if pr == r => {
                            class = flavors.class_of(raw) as u8;
                            raw * f64::from(d.nodes)
                        }
                        _ => raw,
                    };
                    totals.set(r, total);
                }
                Item { nodes: d.nodes, class, totals }
            })
            .collect();
        let avail = model.available();
        let avail_nodes = u64::from(model.avail_nodes());
        let n_obj = model.num_objectives();
        let norm = model.default_normalizers();
        Self {
            window,
            items,
            model,
            avail,
            avail_nodes,
            per_node,
            flavors,
            n_res,
            n_obj,
            norm,
            repair_style: RepairStyle::default(),
        }
    }

    /// Overrides the normalization baselines, one per objective (e.g. total
    /// system capacity instead of currently-free capacity); values are
    /// floored at 1.
    ///
    /// # Panics
    /// Panics if `norm.len()` differs from the number of objectives.
    pub fn with_normalizers(mut self, norm: &[f64]) -> Self {
        assert_eq!(norm.len(), self.n_obj, "one normalizer per objective");
        let floored: Vec<f64> = norm.iter().map(|v| v.max(1.0)).collect();
        self.norm = Objectives::from_slice(&floored);
        self
    }

    /// Selects the repair rule (builder style); see [`RepairStyle`].
    pub fn with_repair_style(mut self, style: RepairStyle) -> Self {
        self.repair_style = style;
        self
    }

    /// The job demands in the window.
    pub fn window(&self) -> &[JobDemand] {
        &self.window
    }

    /// The resource model this problem was built against.
    pub fn model(&self) -> &ResourceModel {
        &self.model
    }

    /// The configured repair rule.
    pub fn repair_style(&self) -> RepairStyle {
        self.repair_style
    }

    fn aggregate(&self, x: &Chromosome) -> Aggregate {
        let mut agg = Aggregate::zero();
        let track_classes = self.per_node.is_some();
        for i in x.selected() {
            let it = &self.items[i];
            agg.nodes += u64::from(it.nodes);
            for r in 1..self.n_res {
                agg.sums[r] += it.totals.get(r);
            }
            if track_classes {
                agg.class_nodes[usize::from(it.class)] += u64::from(it.nodes);
            }
        }
        agg
    }

    /// Total capacity the greedy node→flavour assignment commits for the
    /// selected node-slots: class-`k` slots fill flavours `k, k+1, …`
    /// smallest-first; slots that fit nowhere are billed at the largest
    /// flavour (matching the §5 closed form for two tiers, where flexible
    /// overflow is always charged 256 GB).
    fn assigned_capacity(&self, class_nodes: &[u64; MAX_FLAVORS]) -> f64 {
        let nf = self.flavors.len();
        let mut free = [0u64; MAX_FLAVORS];
        for (j, slot) in free.iter_mut().enumerate().take(nf) {
            *slot = u64::from(self.flavors.get(j).count);
        }
        let largest = self.flavors.get(nf - 1).capacity;
        let mut assigned = 0.0;
        for (k, &slots) in class_nodes.iter().enumerate().take(nf) {
            let mut need = slots;
            for (j, slot) in free.iter_mut().enumerate().take(nf).skip(k) {
                if need == 0 {
                    break;
                }
                let take = need.min(*slot);
                *slot -= take;
                need -= take;
                assigned += take as f64 * self.flavors.get(j).capacity;
            }
            if need > 0 {
                assigned += need as f64 * largest;
            }
        }
        assigned
    }

    /// The per-node resource's flavour constraint: for every class `k`, the
    /// selected node-slots of class ≥ `k` must fit on the nodes of flavour
    /// ≥ `k` (for two tiers this is exactly `need_256 ≤ nodes_256`).
    fn flavor_feasible(&self, class_nodes: &[u64; MAX_FLAVORS]) -> bool {
        if self.per_node.is_none() {
            return true;
        }
        let nf = self.flavors.len();
        let mut cum_need = 0u64;
        let mut cum_cap = 0u64;
        for k in (0..nf).rev() {
            cum_need += class_nodes[k];
            cum_cap += u64::from(self.flavors.get(k).count);
            if cum_need > cum_cap {
                return false;
            }
        }
        true
    }

    /// Feasibility with relative + absolute slack on pooled resources (the
    /// public contract, matching both historical problems).
    fn feasible_agg(&self, agg: &Aggregate) -> bool {
        if agg.nodes > self.avail_nodes {
            return false;
        }
        for r in 1..self.n_res {
            if self.is_per_node(r) {
                continue; // constrained via the flavour table, not a pool sum
            }
            if agg.sums[r] > self.avail.get(r) * (1.0 + BB_EPS) + BB_EPS {
                return false;
            }
        }
        self.flavor_feasible(&agg.class_nodes)
    }

    /// Feasibility with absolute slack only, used *inside* repair (the
    /// historical §3.2.1 repair loop tested `b ≤ avail + ε`).
    fn repair_feasible(&self, agg: &Aggregate) -> bool {
        if agg.nodes > self.avail_nodes {
            return false;
        }
        for r in 1..self.n_res {
            if self.is_per_node(r) {
                continue;
            }
            if agg.sums[r] > self.avail.get(r) + BB_EPS {
                return false;
            }
        }
        self.flavor_feasible(&agg.class_nodes)
    }

    #[inline]
    fn is_per_node(&self, r: usize) -> bool {
        matches!(self.per_node, Some((pr, _)) if pr == r)
    }

    /// Adds (`on = true`) or removes (`on = false`) one item's demand from a
    /// running aggregate — the O(R) delta behind the scratch API and both
    /// repair loops.
    #[inline]
    fn apply_item(&self, agg: &mut Aggregate, it: &Item, on: bool) {
        if on {
            agg.nodes += u64::from(it.nodes);
            for r in 1..self.n_res {
                agg.sums[r] += it.totals.get(r);
            }
            if self.per_node.is_some() {
                agg.class_nodes[usize::from(it.class)] += u64::from(it.nodes);
            }
        } else {
            agg.nodes -= u64::from(it.nodes);
            for r in 1..self.n_res {
                agg.sums[r] -= it.totals.get(r);
            }
            if self.per_node.is_some() {
                agg.class_nodes[usize::from(it.class)] -= u64::from(it.nodes);
            }
        }
    }

    /// Objective vector of a selection whose aggregate demand is `agg`.
    fn objectives_from_agg(&self, agg: &Aggregate) -> Objectives {
        let mut vals = [0.0; MAX_OBJECTIVES];
        vals[0] = agg.nodes as f64;
        vals[1..self.n_res].copy_from_slice(&agg.sums[1..self.n_res]);
        let mut n = self.n_res;
        if let Some((r, true)) = self.per_node {
            let waste = (self.assigned_capacity(&agg.class_nodes) - agg.sums[r]).max(0.0);
            vals[n] = -waste;
            n += 1;
        }
        debug_assert_eq!(n, self.n_obj);
        Objectives::from_slice(&vals[..n])
    }

    /// Shared repair engine: drops genes per the configured style, keeping
    /// the aggregate current by O(R) deltas, and reports the final aggregate
    /// plus whether any gene was actually dropped.
    fn repair_impl(&self, x: &mut Chromosome) -> (Aggregate, bool) {
        let mut agg = self.aggregate(x);
        let mut changed = false;
        match self.repair_style {
            RepairStyle::DropUnconditionally => {
                // One full aggregate up front, then O(R) deltas per drop —
                // the historical per-drop `is_feasible` rescan made this
                // loop O(w²).
                if self.feasible_agg(&agg) {
                    return (agg, false);
                }
                let w = self.window.len();
                let start = (x.content_hash() % w as u64) as usize;
                for k in 0..w {
                    let i = (start + k) % w;
                    if x.get(i) {
                        x.set(i, false);
                        self.apply_item(&mut agg, &self.items[i], false);
                        changed = true;
                        if self.feasible_agg(&agg) {
                            break;
                        }
                    }
                }
                debug_assert!(self.is_feasible(x));
            }
            RepairStyle::DropIfRelieves => {
                if self.repair_feasible(&agg) {
                    return (agg, false);
                }
                let w = self.window.len();
                let start = (x.content_hash() % w as u64) as usize;
                for k in 0..w {
                    if self.repair_feasible(&agg) {
                        break;
                    }
                    let i = (start + k) % w;
                    if x.get(i) {
                        let it = &self.items[i];
                        if self.relieves(&agg, it) {
                            x.set(i, false);
                            self.apply_item(&mut agg, it, false);
                            changed = true;
                        }
                    }
                }
                debug_assert!(self.is_feasible(x));
            }
        }
        (agg, changed)
    }

    /// Whether dropping `item` would shrink a currently violated constraint.
    fn relieves(&self, agg: &Aggregate, item: &Item) -> bool {
        if agg.nodes > self.avail_nodes && item.nodes > 0 {
            return true;
        }
        for r in 1..self.n_res {
            if self.is_per_node(r) {
                continue;
            }
            if agg.sums[r] > self.avail.get(r) + BB_EPS && item.totals.get(r) > 0.0 {
                return true;
            }
        }
        if self.per_node.is_some() && item.nodes > 0 {
            // A violated suffix [k..] is relieved by any selected slot of
            // class >= k.
            let nf = self.flavors.len();
            let mut cum_need = 0u64;
            let mut cum_cap = 0u64;
            for k in (0..nf).rev() {
                cum_need += agg.class_nodes[k];
                cum_cap += u64::from(self.flavors.get(k).count);
                if cum_need > cum_cap && usize::from(item.class) >= k {
                    return true;
                }
            }
        }
        false
    }
}

impl MooProblem for KnapsackMooProblem {
    fn len(&self) -> usize {
        self.window.len()
    }

    fn num_objectives(&self) -> usize {
        self.n_obj
    }

    fn evaluate(&self, x: &Chromosome) -> Objectives {
        self.objectives_from_agg(&self.aggregate(x))
    }

    fn is_feasible(&self, x: &Chromosome) -> bool {
        self.feasible_agg(&self.aggregate(x))
    }

    fn repair(&self, x: &mut Chromosome) {
        let _ = self.repair_impl(x);
    }

    fn normalizers(&self) -> Objectives {
        self.norm
    }

    fn repair_evaluate(&self, x: &mut Chromosome) -> Objectives {
        let (agg, changed) = self.repair_impl(x);
        if changed {
            // Drops updated `agg` by deltas; objectives must come from the
            // same ascending full rescan `evaluate` performs so they are
            // bit-identical to the unfused path.
            self.evaluate(x)
        } else {
            // `agg` *is* the full rescan of the untouched selection.
            self.objectives_from_agg(&agg)
        }
    }

    fn scratch_from(&self, x: &Chromosome) -> EvalScratch {
        EvalScratch { mirror: x.clone(), agg: Some(self.aggregate(x)) }
    }

    fn scratch_set(&self, scratch: &mut EvalScratch, i: usize, on: bool) {
        if scratch.mirror.get(i) == on {
            return;
        }
        scratch.mirror.set(i, on);
        let agg = scratch.agg.as_mut().expect("scratch was built by KnapsackMooProblem");
        self.apply_item(agg, &self.items[i], on);
    }

    fn scratch_is_feasible(&self, scratch: &EvalScratch) -> bool {
        let agg = scratch.agg.as_ref().expect("scratch was built by KnapsackMooProblem");
        let fast = self.feasible_agg(agg);
        // Full-rescan oracle: the incremental aggregate must reach the same
        // verdict as re-aggregating the mirrored selection from scratch.
        debug_assert_eq!(
            fast,
            self.is_feasible(&scratch.mirror),
            "incremental feasibility diverged from the full rescan"
        );
        fast
    }
}

/// The §3.2.1 bi-objective problem: select window jobs to maximize node and
/// burst-buffer utilization subject to free capacity.
#[deprecated(
    since = "0.2.0",
    note = "use KnapsackMooProblem with ResourceModel::cpu_bb; this wrapper delegates to it"
)]
#[derive(Clone, Debug)]
pub struct CpuBbProblem {
    inner: KnapsackMooProblem,
}

#[allow(deprecated)]
impl CpuBbProblem {
    /// Builds the problem for a window of jobs against free capacity.
    pub fn new(window: Vec<JobDemand>, avail_nodes: u32, avail_bb_gb: f64) -> Self {
        Self {
            inner: KnapsackMooProblem::new(window, ResourceModel::cpu_bb(avail_nodes, avail_bb_gb)),
        }
    }

    /// Overrides the normalization baselines (e.g., total system capacity
    /// instead of currently-free capacity).
    pub fn with_normalizers(mut self, nodes: f64, bb_gb: f64) -> Self {
        self.inner = self.inner.with_normalizers(&[nodes, bb_gb]);
        self
    }

    /// The job demands in the window.
    pub fn window(&self) -> &[JobDemand] {
        self.inner.window()
    }

    /// Free nodes at this invocation.
    pub fn avail_nodes(&self) -> u32 {
        self.inner.model.avail_nodes()
    }

    /// Free burst buffer (GB) at this invocation.
    pub fn avail_bb_gb(&self) -> f64 {
        self.inner.avail.get(1)
    }
}

#[allow(deprecated)]
impl MooProblem for CpuBbProblem {
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn num_objectives(&self) -> usize {
        self.inner.num_objectives()
    }
    fn evaluate(&self, x: &Chromosome) -> Objectives {
        self.inner.evaluate(x)
    }
    fn is_feasible(&self, x: &Chromosome) -> bool {
        self.inner.is_feasible(x)
    }
    fn repair(&self, x: &mut Chromosome) {
        self.inner.repair(x)
    }
    fn normalizers(&self) -> Objectives {
        self.inner.normalizers()
    }
    fn scratch_from(&self, x: &Chromosome) -> EvalScratch {
        self.inner.scratch_from(x)
    }
    fn scratch_set(&self, scratch: &mut EvalScratch, i: usize, on: bool) {
        self.inner.scratch_set(scratch, i, on)
    }
    fn scratch_is_feasible(&self, scratch: &EvalScratch) -> bool {
        self.inner.scratch_is_feasible(scratch)
    }
    fn repair_evaluate(&self, x: &mut Chromosome) -> Objectives {
        self.inner.repair_evaluate(x)
    }
}

/// The §5 four-objective problem on a cluster with heterogeneous local SSDs.
///
/// Objectives, in order:
/// 1. node utilization `f1 = Σ n_i·x_i`
/// 2. burst-buffer utilization `f2 = Σ b_i·x_i`
/// 3. local SSD utilization `f3 = Σ s_i·n_i·x_i`
/// 4. **minus** wasted local SSD `f4 = -Σ (l_ij - s_i)·x_i` (maximized)
///
/// Node→SSD-flavour assignment follows the paper: jobs requesting more than
/// 128 GB per node must run on 256 GB nodes; jobs requesting at most 128 GB
/// prefer 128 GB nodes and overflow onto 256 GB nodes. Total waste depends
/// only on how many node-slots come from each pool, so the greedy assignment
/// is optimal for `f4` given a selection.
#[deprecated(
    since = "0.2.0",
    note = "use KnapsackMooProblem with ResourceModel::cpu_bb_ssd; this wrapper delegates to it"
)]
#[derive(Clone, Debug)]
pub struct CpuBbSsdProblem {
    inner: KnapsackMooProblem,
    avail: Available,
}

#[allow(deprecated)]
impl CpuBbSsdProblem {
    /// Builds the problem. `avail.nodes` must equal
    /// `avail.nodes_128 + avail.nodes_256`.
    ///
    /// The fourth normalizer (waste) defaults to the total free SSD capacity,
    /// so a normalized `f4` of 0 means no waste and −1 means everything
    /// assigned was wasted.
    ///
    /// # Panics
    /// Panics if the node pools do not sum to `avail.nodes`.
    pub fn new(window: Vec<JobDemand>, avail: Available) -> Self {
        assert_eq!(
            avail.nodes,
            avail.nodes_128 + avail.nodes_256,
            "SSD problem requires nodes == nodes_128 + nodes_256"
        );
        let model = ResourceModel::cpu_bb_ssd(avail.nodes_128, avail.nodes_256, avail.bb_gb);
        let inner = KnapsackMooProblem::new(window, model)
            .with_repair_style(RepairStyle::DropUnconditionally);
        Self { inner, avail }
    }

    /// Overrides normalization baselines (nodes, bb, ssd, waste).
    pub fn with_normalizers(mut self, norm: [f64; 4]) -> Self {
        self.inner = self.inner.with_normalizers(&norm);
        self
    }

    /// The job demands in the window.
    pub fn window(&self) -> &[JobDemand] {
        self.inner.window()
    }

    /// The availability this problem was built against.
    pub fn available(&self) -> Available {
        self.avail
    }
}

#[allow(deprecated)]
impl MooProblem for CpuBbSsdProblem {
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn num_objectives(&self) -> usize {
        self.inner.num_objectives()
    }
    fn evaluate(&self, x: &Chromosome) -> Objectives {
        self.inner.evaluate(x)
    }
    fn is_feasible(&self, x: &Chromosome) -> bool {
        self.inner.is_feasible(x)
    }
    fn repair(&self, x: &mut Chromosome) {
        self.inner.repair(x)
    }
    fn normalizers(&self) -> Objectives {
        self.inner.normalizers()
    }
    fn scratch_from(&self, x: &Chromosome) -> EvalScratch {
        self.inner.scratch_from(x)
    }
    fn scratch_set(&self, scratch: &mut EvalScratch, i: usize, on: bool) {
        self.inner.scratch_set(scratch, i, on)
    }
    fn scratch_is_feasible(&self, scratch: &EvalScratch) -> bool {
        self.inner.scratch_is_feasible(scratch)
    }
    fn repair_evaluate(&self, x: &mut Chromosome) -> Objectives {
        self.inner.repair_evaluate(x)
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::resource::{DemandSlot, ResourceSpec};

    fn table1_window() -> Vec<JobDemand> {
        vec![
            JobDemand::cpu_bb(80, 20_000.0),
            JobDemand::cpu_bb(10, 85_000.0),
            JobDemand::cpu_bb(40, 5_000.0),
            JobDemand::cpu_bb(10, 0.0),
            JobDemand::cpu_bb(20, 0.0),
        ]
    }

    #[test]
    fn cpu_bb_evaluates_table1_solutions() {
        let p = CpuBbProblem::new(table1_window(), 100, 100_000.0);
        // Solution 2 of Table 1(b): {J1, J5} -> 100 nodes, 20 TB.
        let s2 = Chromosome::from_bits(&[true, false, false, false, true]);
        assert!(p.is_feasible(&s2));
        let o = p.evaluate(&s2);
        assert_eq!(o.as_slice(), &[100.0, 20_000.0]);
        // Solution 3: {J2..J5} -> 80 nodes, 90 TB.
        let s3 = Chromosome::from_bits(&[false, true, true, true, true]);
        assert!(p.is_feasible(&s3));
        let o = p.evaluate(&s3);
        assert_eq!(o.as_slice(), &[80.0, 90_000.0]);
    }

    #[test]
    fn cpu_bb_detects_infeasible() {
        let p = CpuBbProblem::new(table1_window(), 100, 100_000.0);
        // All five jobs: 160 nodes > 100.
        let all = Chromosome::from_bits(&[true; 5]);
        assert!(!p.is_feasible(&all));
        // J1 + J2: 105 TB > 100 TB.
        let bb_over = Chromosome::from_bits(&[true, true, false, false, false]);
        assert!(!p.is_feasible(&bb_over));
    }

    #[test]
    fn cpu_bb_repair_only_deselects() {
        let p = CpuBbProblem::new(table1_window(), 100, 100_000.0);
        let before = Chromosome::from_bits(&[true; 5]);
        let mut after = before.clone();
        p.repair(&mut after);
        assert!(p.is_feasible(&after));
        // Repair never selects a job that was not already selected.
        for i in 0..5 {
            assert!(!after.get(i) || before.get(i));
        }
        // And it does not over-prune: at least one job must survive, since
        // single-job selections are feasible here.
        assert!(after.count_ones() >= 1);
    }

    #[test]
    fn cpu_bb_repair_keeps_feasible_untouched() {
        let p = CpuBbProblem::new(table1_window(), 100, 100_000.0);
        let mut s = Chromosome::from_bits(&[true, false, false, true, false]);
        let before = s.clone();
        p.repair(&mut s);
        assert_eq!(s, before);
    }

    #[test]
    fn normalizers_default_to_available() {
        let p = CpuBbProblem::new(table1_window(), 100, 100_000.0);
        assert_eq!(p.normalizers().as_slice(), &[100.0, 100_000.0]);
        let p = p.with_normalizers(200.0, 400_000.0);
        assert_eq!(p.normalizers().as_slice(), &[200.0, 400_000.0]);
    }

    fn ssd_window() -> Vec<JobDemand> {
        vec![
            JobDemand::cpu_bb_ssd(4, 100.0, 200.0), // must use 256-GB nodes
            JobDemand::cpu_bb_ssd(2, 0.0, 64.0),    // prefers 128-GB nodes
            JobDemand::cpu_bb_ssd(2, 50.0, 0.0),    // no SSD demand
        ]
    }

    #[test]
    fn ssd_waste_uses_greedy_assignment() {
        // 4 x 128-GB nodes, 4 x 256-GB nodes.
        let avail = Available::with_ssd(4, 4, 1_000.0);
        let p = CpuBbSsdProblem::new(ssd_window(), avail);
        let all = Chromosome::from_bits(&[true, true, true]);
        assert!(p.is_feasible(&all));
        let o = p.evaluate(&all);
        // f1 = 8 nodes, f2 = 150 GB bb, f3 = 4*200 + 2*64 = 928 GB.
        assert_eq!(o[0], 8.0);
        assert_eq!(o[1], 150.0);
        assert_eq!(o[2], 928.0);
        // Big job: 4 nodes on 256 -> waste 4*(256-200)=224.
        // Flexible 4 node-slots all fit on the 4 free 128s:
        // waste 2*(128-64) + 2*(128-0) = 128 + 256 = 384. Total 608.
        assert_eq!(o[3], -608.0);
    }

    #[test]
    fn ssd_infeasible_when_256_pool_exhausted() {
        let avail = Available::with_ssd(6, 2, 1_000.0);
        let p = CpuBbSsdProblem::new(ssd_window(), avail);
        // The 200-GB/node job needs 4 nodes from a 2-node 256 pool.
        let big = Chromosome::from_bits(&[true, false, false]);
        assert!(!p.is_feasible(&big));
        let mut r = big;
        p.repair(&mut r);
        assert!(p.is_feasible(&r));
        assert_eq!(r.count_ones(), 0);
    }

    #[test]
    fn ssd_overflow_to_256_increases_waste() {
        // Only 1 free 128-GB node: one flexible slot overflows to 256.
        let avail = Available::with_ssd(1, 7, 1_000.0);
        let p = CpuBbSsdProblem::new(ssd_window(), avail);
        let small = Chromosome::from_bits(&[false, true, false]);
        let o = p.evaluate(&small);
        // One slot on 128 (waste 64), one on 256 (waste 192).
        assert_eq!(o[3], -(64.0 + 192.0));
    }

    #[test]
    #[should_panic]
    fn ssd_pools_must_sum() {
        let bad = Available { nodes: 10, bb_gb: 0.0, nodes_128: 4, nodes_256: 4 };
        let _ = CpuBbSsdProblem::new(vec![], bad);
    }

    // ---- generic-path tests -------------------------------------------

    /// Every chromosome over the Table-1 window must evaluate, feasibility-
    /// check, and repair identically through the wrapper and the generic
    /// problem (the wrapper *is* the generic problem, but this pins the
    /// preset wiring).
    #[test]
    fn generic_cpu_bb_is_bit_identical_to_wrapper() {
        let wrapper = CpuBbProblem::new(table1_window(), 100, 100_000.0);
        let generic =
            KnapsackMooProblem::new(table1_window(), ResourceModel::cpu_bb(100, 100_000.0));
        assert_eq!(generic.num_objectives(), 2);
        for mask in 0u64..32 {
            let c = Chromosome::from_mask(mask, 5);
            assert_eq!(wrapper.evaluate(&c), generic.evaluate(&c));
            assert_eq!(wrapper.is_feasible(&c), generic.is_feasible(&c));
            let mut a = c.clone();
            let mut b = c.clone();
            wrapper.repair(&mut a);
            generic.repair(&mut b);
            assert_eq!(a, b, "repair diverged on mask {mask:#b}");
        }
        assert_eq!(wrapper.normalizers(), generic.normalizers());
    }

    #[test]
    fn generic_ssd_preset_matches_wrapper_with_drop_all_repair() {
        let avail = Available::with_ssd(4, 4, 1_000.0);
        let wrapper = CpuBbSsdProblem::new(ssd_window(), avail);
        let generic =
            KnapsackMooProblem::new(ssd_window(), ResourceModel::cpu_bb_ssd(4, 4, 1_000.0))
                .with_repair_style(RepairStyle::DropUnconditionally);
        assert_eq!(generic.num_objectives(), 4);
        for mask in 0u64..8 {
            let c = Chromosome::from_mask(mask, 3);
            assert_eq!(wrapper.evaluate(&c), generic.evaluate(&c));
            assert_eq!(wrapper.is_feasible(&c), generic.is_feasible(&c));
            let mut a = c.clone();
            let mut b = c.clone();
            wrapper.repair(&mut a);
            generic.repair(&mut b);
            assert_eq!(a, b, "repair diverged on mask {mask:#b}");
        }
    }

    #[test]
    fn gated_repair_preserves_innocent_genes_on_ssd_problem() {
        // BB is over capacity; job 1 (no BB demand) cannot relieve it. The
        // gated rule must keep job 1 while the historical rule drops
        // whatever the cyclic order reaches first.
        let window = vec![
            JobDemand::cpu_bb_ssd(2, 900.0, 0.0),
            JobDemand::cpu_bb_ssd(2, 0.0, 64.0),
            JobDemand::cpu_bb_ssd(2, 800.0, 0.0),
        ];
        let p = KnapsackMooProblem::new(window, ResourceModel::cpu_bb_ssd(4, 4, 1_000.0));
        assert_eq!(p.repair_style(), RepairStyle::DropIfRelieves);
        let mut c = Chromosome::from_bits(&[true, true, true]);
        p.repair(&mut c);
        assert!(p.is_feasible(&c));
        assert!(c.get(1), "gated repair must not drop a gene that relieves nothing");
    }

    #[test]
    fn three_pooled_resources_round_trip() {
        // Nodes + BB + a pooled GPU bank: 3 objectives, no per-node table.
        let model = ResourceModel::new(vec![
            ResourceSpec::pooled("nodes", 10.0, DemandSlot::Nodes),
            ResourceSpec::pooled("bb_gb", 100.0, DemandSlot::BbGb),
            ResourceSpec::pooled("gpus", 8.0, DemandSlot::Extra(0)),
        ])
        .unwrap();
        let window = vec![
            JobDemand::cpu_bb(4, 60.0).with_extra(0, 6.0),
            JobDemand::cpu_bb(4, 30.0).with_extra(0, 4.0),
            JobDemand::cpu_bb(2, 20.0),
        ];
        let p = KnapsackMooProblem::new(window, model);
        assert_eq!(p.num_objectives(), 3);
        let all = Chromosome::from_bits(&[true, true, true]);
        // 10 GPUs > 8 available: infeasible, and repair must fix exactly that.
        assert!(!p.is_feasible(&all));
        let mut r = all;
        p.repair(&mut r);
        assert!(p.is_feasible(&r));
        let o = p.evaluate(&r);
        assert!(o[2] <= 8.0);
        // A selection inside every pool is feasible and additive.
        let two = Chromosome::from_bits(&[true, false, true]);
        assert!(p.is_feasible(&two));
        assert_eq!(p.evaluate(&two).as_slice(), &[6.0, 80.0, 6.0]);
        assert_eq!(p.normalizers().as_slice(), &[10.0, 100.0, 8.0]);
    }

    #[test]
    fn per_node_gpu_resource_tracks_waste() {
        // Homogeneous 4-GPU nodes, waste objective on: a 1-GPU-per-node job
        // wastes 3 GPUs per node it occupies.
        let model = ResourceModel::new(vec![
            ResourceSpec::pooled("nodes", 4.0, DemandSlot::Nodes),
            ResourceSpec::pooled("bb_gb", 100.0, DemandSlot::BbGb),
            ResourceSpec::per_node(
                "gpus",
                crate::resource::FlavorSet::homogeneous(4.0, 4),
                DemandSlot::Extra(0),
            )
            .with_waste_objective(),
        ])
        .unwrap();
        let window = vec![JobDemand::cpu_bb(2, 0.0).with_extra(0, 1.0)];
        let p = KnapsackMooProblem::new(window, model);
        assert_eq!(p.num_objectives(), 4);
        let one = Chromosome::from_bits(&[true]);
        let o = p.evaluate(&one);
        assert_eq!(o[0], 2.0);
        assert_eq!(o[2], 2.0); // 1 GPU/node x 2 nodes used
        assert_eq!(o[3], -6.0); // 2 nodes x (4 - 1) GPUs wasted
    }

    #[test]
    fn extra_demand_slots_default_to_zero_and_serde_round_trip() {
        let d = JobDemand::cpu_bb(4, 10.0);
        assert_eq!(d.extra, [0.0; MAX_EXTRA]);
        let d = d.with_extra(1, 3.5);
        let s = serde_json::to_string(&d).unwrap();
        let back: JobDemand = serde_json::from_str(&s).unwrap();
        assert_eq!(d, back);
    }
}
