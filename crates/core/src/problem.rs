//! MOO problem formulations.
//!
//! §3.2.1 of the paper formulates window-based multi-resource scheduling as
//! a bi-objective knapsack: maximize `f1 = Σ n_i·x_i` (node utilization) and
//! `f2 = Σ b_i·x_i` (burst-buffer utilization) subject to the available
//! node and burst-buffer capacities. §5 extends it with two local-SSD
//! objectives (`f3` utilization, `f4` minus wasted capacity) on a cluster
//! whose nodes carry heterogeneous 128 GB / 256 GB SSDs.
//!
//! Both formulations implement [`MooProblem`], which is all the genetic and
//! exhaustive solvers need — adding yet another resource (the paper's
//! stated extensibility goal) means implementing this trait once.

use crate::chromosome::Chromosome;
use crate::Objectives;
use serde::{Deserialize, Serialize};

/// Per-job resource demand as seen by the optimizer: one entry per window
/// slot.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobDemand {
    /// Requested compute nodes (`n_i`).
    pub nodes: u32,
    /// Requested shared burst buffer in GB (`b_i`).
    pub bb_gb: f64,
    /// Requested local SSD per node in GB (`s_i`); 0 when the job (or the
    /// experiment) does not use local SSDs.
    pub ssd_gb_per_node: f64,
}

impl JobDemand {
    /// A demand over nodes and shared burst buffer only (§3.2.1 problems).
    pub fn cpu_bb(nodes: u32, bb_gb: f64) -> Self {
        Self { nodes, bb_gb, ssd_gb_per_node: 0.0 }
    }

    /// A demand over nodes, shared burst buffer, and local SSD (§5).
    pub fn cpu_bb_ssd(nodes: u32, bb_gb: f64, ssd_gb_per_node: f64) -> Self {
        Self { nodes, bb_gb, ssd_gb_per_node }
    }
}

/// Resources available at one scheduling invocation (i.e., `N - N_used`,
/// `B - B_used`, and the free node counts per SSD flavour).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Available {
    /// Free compute nodes.
    pub nodes: u32,
    /// Free shared burst buffer in GB.
    pub bb_gb: f64,
    /// Free nodes equipped with [`SSD_SMALL_GB`] local SSDs.
    pub nodes_128: u32,
    /// Free nodes equipped with [`SSD_LARGE_GB`] local SSDs.
    pub nodes_256: u32,
}

/// Capacity of the smaller local-SSD flavour (GB), per §5.
pub const SSD_SMALL_GB: f64 = 128.0;
/// Capacity of the larger local-SSD flavour (GB), per §5.
pub const SSD_LARGE_GB: f64 = 256.0;

impl Available {
    /// Availability for a CPU + burst-buffer system with no local SSDs.
    pub fn cpu_bb(nodes: u32, bb_gb: f64) -> Self {
        Self { nodes, bb_gb, nodes_128: 0, nodes_256: 0 }
    }

    /// Availability with heterogeneous local SSD pools. `nodes` must equal
    /// `nodes_128 + nodes_256` for SSD-aware problems.
    pub fn with_ssd(nodes_128: u32, nodes_256: u32, bb_gb: f64) -> Self {
        Self { nodes: nodes_128 + nodes_256, bb_gb, nodes_128, nodes_256 }
    }
}

/// A multi-objective window-selection problem.
///
/// Implementations must guarantee that `evaluate` is a pure function of the
/// chromosome (the GA caches objective vectors) and that `repair` always
/// produces a feasible chromosome.
pub trait MooProblem: Sync {
    /// Window size `w` (number of genes).
    fn len(&self) -> usize;

    /// `true` when the window holds no jobs.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of objectives (2 for §3.2.1, 4 for §5).
    fn num_objectives(&self) -> usize;

    /// Computes the objective vector of a (feasible) selection.
    fn evaluate(&self, x: &Chromosome) -> Objectives;

    /// Whether the selection satisfies every capacity constraint.
    fn is_feasible(&self, x: &Chromosome) -> bool;

    /// Makes `x` feasible by deselecting jobs, never by selecting new ones.
    ///
    /// BBSched's repair drops set genes in a pseudo-random cyclic order
    /// derived from the chromosome itself (pure, parallel-safe, and free of
    /// positional bias — a rear-first rule was found to systematically
    /// starve rear-window genes and collapse GA diversity; see DESIGN.md
    /// §6). The paper leaves constraint handling unspecified.
    fn repair(&self, x: &mut Chromosome);

    /// Per-objective normalization factors that convert raw objective values
    /// (node counts, GB) into system-relative utilization fractions. Used by
    /// the decision maker and by scalarizing policies so that weights are
    /// comparable across resources.
    fn normalizers(&self) -> Objectives;
}

/// The §3.2.1 bi-objective problem: select window jobs to maximize node and
/// burst-buffer utilization subject to free capacity.
#[derive(Clone, Debug)]
pub struct CpuBbProblem {
    window: Vec<JobDemand>,
    avail_nodes: u32,
    avail_bb_gb: f64,
    /// Totals used for normalization; default to the available amounts.
    norm_nodes: f64,
    norm_bb: f64,
}

impl CpuBbProblem {
    /// Builds the problem for a window of jobs against free capacity.
    pub fn new(window: Vec<JobDemand>, avail_nodes: u32, avail_bb_gb: f64) -> Self {
        Self {
            window,
            avail_nodes,
            avail_bb_gb,
            norm_nodes: f64::from(avail_nodes).max(1.0),
            norm_bb: avail_bb_gb.max(1.0),
        }
    }

    /// Overrides the normalization baselines (e.g., total system capacity
    /// instead of currently-free capacity).
    pub fn with_normalizers(mut self, nodes: f64, bb_gb: f64) -> Self {
        self.norm_nodes = nodes.max(1.0);
        self.norm_bb = bb_gb.max(1.0);
        self
    }

    /// The job demands in the window.
    pub fn window(&self) -> &[JobDemand] {
        &self.window
    }

    /// Free nodes at this invocation.
    pub fn avail_nodes(&self) -> u32 {
        self.avail_nodes
    }

    /// Free burst buffer (GB) at this invocation.
    pub fn avail_bb_gb(&self) -> f64 {
        self.avail_bb_gb
    }

    #[inline]
    fn sums(&self, x: &Chromosome) -> (u64, f64) {
        let mut nodes = 0u64;
        let mut bb = 0.0f64;
        for i in x.selected() {
            let d = &self.window[i];
            nodes += u64::from(d.nodes);
            bb += d.bb_gb;
        }
        (nodes, bb)
    }
}

/// Floating-point slack for burst-buffer feasibility: requests are sums of
/// values ≥ 1 GB, so a relative epsilon avoids rejecting selections that are
/// feasible up to rounding.
const BB_EPS: f64 = 1e-9;

impl MooProblem for CpuBbProblem {
    fn len(&self) -> usize {
        self.window.len()
    }

    fn num_objectives(&self) -> usize {
        2
    }

    fn evaluate(&self, x: &Chromosome) -> Objectives {
        let (nodes, bb) = self.sums(x);
        Objectives::from_slice(&[nodes as f64, bb])
    }

    fn is_feasible(&self, x: &Chromosome) -> bool {
        let (nodes, bb) = self.sums(x);
        nodes <= u64::from(self.avail_nodes)
            && bb <= self.avail_bb_gb * (1.0 + BB_EPS) + BB_EPS
    }

    fn repair(&self, x: &mut Chromosome) {
        let (mut nodes, mut bb) = self.sums(x);
        let feasible =
            |n: u64, b: f64| n <= u64::from(self.avail_nodes) && b <= self.avail_bb_gb + BB_EPS;
        if feasible(nodes, bb) {
            return;
        }
        let w = self.window.len();
        let start = (x.content_hash() % w as u64) as usize;
        // First pass: drop genes that relieve a violated constraint.
        for k in 0..w {
            if feasible(nodes, bb) {
                break;
            }
            let i = (start + k) % w;
            if x.get(i) {
                let d = &self.window[i];
                let relieves = (nodes > u64::from(self.avail_nodes) && d.nodes > 0)
                    || (bb > self.avail_bb_gb + BB_EPS && d.bb_gb > 0.0);
                if relieves {
                    x.set(i, false);
                    nodes -= u64::from(d.nodes);
                    bb -= d.bb_gb;
                }
            }
        }
        debug_assert!(self.is_feasible(x));
    }

    fn normalizers(&self) -> Objectives {
        Objectives::from_slice(&[self.norm_nodes, self.norm_bb])
    }
}

/// The §5 four-objective problem on a cluster with heterogeneous local SSDs.
///
/// Objectives, in order:
/// 1. node utilization `f1 = Σ n_i·x_i`
/// 2. burst-buffer utilization `f2 = Σ b_i·x_i`
/// 3. local SSD utilization `f3 = Σ s_i·n_i·x_i`
/// 4. **minus** wasted local SSD `f4 = -Σ (l_ij - s_i)·x_i` (maximized)
///
/// Node→SSD-flavour assignment follows the paper: jobs requesting more than
/// 128 GB per node must run on 256 GB nodes; jobs requesting at most 128 GB
/// prefer 128 GB nodes and overflow onto 256 GB nodes. Total waste depends
/// only on how many node-slots come from each pool, so the greedy assignment
/// is optimal for `f4` given a selection.
#[derive(Clone, Debug)]
pub struct CpuBbSsdProblem {
    window: Vec<JobDemand>,
    avail: Available,
    norm: [f64; 4],
}

impl CpuBbSsdProblem {
    /// Builds the problem. `avail.nodes` must equal
    /// `avail.nodes_128 + avail.nodes_256`.
    ///
    /// The fourth normalizer (waste) defaults to the total free SSD capacity,
    /// so a normalized `f4` of 0 means no waste and −1 means everything
    /// assigned was wasted.
    ///
    /// # Panics
    /// Panics if the node pools do not sum to `avail.nodes`.
    pub fn new(window: Vec<JobDemand>, avail: Available) -> Self {
        assert_eq!(
            avail.nodes,
            avail.nodes_128 + avail.nodes_256,
            "SSD problem requires nodes == nodes_128 + nodes_256"
        );
        let ssd_cap =
            f64::from(avail.nodes_128) * SSD_SMALL_GB + f64::from(avail.nodes_256) * SSD_LARGE_GB;
        let norm = [
            f64::from(avail.nodes).max(1.0),
            avail.bb_gb.max(1.0),
            ssd_cap.max(1.0),
            ssd_cap.max(1.0),
        ];
        Self { window, avail, norm }
    }

    /// Overrides normalization baselines (nodes, bb, ssd, waste).
    pub fn with_normalizers(mut self, norm: [f64; 4]) -> Self {
        self.norm = norm.map(|v| v.max(1.0));
        self
    }

    /// The job demands in the window.
    pub fn window(&self) -> &[JobDemand] {
        &self.window
    }

    /// The availability this problem was built against.
    pub fn available(&self) -> Available {
        self.avail
    }

    /// Aggregates a selection: (total nodes, bb, nodes that must be 256 GB,
    /// nodes that may be either, ssd utilization, requested ssd total).
    fn aggregate(&self, x: &Chromosome) -> Aggregate {
        let mut agg = Aggregate::default();
        for i in x.selected() {
            let d = &self.window[i];
            agg.nodes += u64::from(d.nodes);
            agg.bb += d.bb_gb;
            agg.ssd_util += d.ssd_gb_per_node * f64::from(d.nodes);
            if d.ssd_gb_per_node > SSD_SMALL_GB {
                agg.need_256 += u64::from(d.nodes);
            } else {
                agg.flexible += u64::from(d.nodes);
            }
        }
        agg
    }

    /// Wasted SSD for a feasible selection under the greedy assignment.
    fn waste(&self, agg: &Aggregate) -> f64 {
        // Flexible node-slots take 128 GB nodes first, overflow to 256 GB.
        let on_128 = agg.flexible.min(u64::from(self.avail.nodes_128));
        let overflow = agg.flexible - on_128;
        let assigned_cap = on_128 as f64 * SSD_SMALL_GB
            + (overflow + agg.need_256) as f64 * SSD_LARGE_GB;
        (assigned_cap - agg.ssd_util).max(0.0)
    }

    fn feasible_agg(&self, agg: &Aggregate) -> bool {
        agg.nodes <= u64::from(self.avail.nodes)
            && agg.bb <= self.avail.bb_gb * (1.0 + BB_EPS) + BB_EPS
            && agg.need_256 <= u64::from(self.avail.nodes_256)
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Aggregate {
    nodes: u64,
    bb: f64,
    ssd_util: f64,
    /// Node-slots that must land on 256 GB nodes (per-node request > 128 GB).
    need_256: u64,
    /// Node-slots that can land on either flavour.
    flexible: u64,
}

impl MooProblem for CpuBbSsdProblem {
    fn len(&self) -> usize {
        self.window.len()
    }

    fn num_objectives(&self) -> usize {
        4
    }

    fn evaluate(&self, x: &Chromosome) -> Objectives {
        let agg = self.aggregate(x);
        let waste = self.waste(&agg);
        Objectives::from_slice(&[agg.nodes as f64, agg.bb, agg.ssd_util, -waste])
    }

    fn is_feasible(&self, x: &Chromosome) -> bool {
        self.feasible_agg(&self.aggregate(x))
    }

    fn repair(&self, x: &mut Chromosome) {
        if self.is_feasible(x) {
            return;
        }
        let w = self.window.len();
        let start = (x.content_hash() % w as u64) as usize;
        for k in 0..w {
            let i = (start + k) % w;
            if x.get(i) {
                x.set(i, false);
                if self.is_feasible(x) {
                    return;
                }
            }
        }
        debug_assert!(self.is_feasible(x));
    }

    fn normalizers(&self) -> Objectives {
        Objectives::from_slice(&self.norm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1_window() -> Vec<JobDemand> {
        vec![
            JobDemand::cpu_bb(80, 20_000.0),
            JobDemand::cpu_bb(10, 85_000.0),
            JobDemand::cpu_bb(40, 5_000.0),
            JobDemand::cpu_bb(10, 0.0),
            JobDemand::cpu_bb(20, 0.0),
        ]
    }

    #[test]
    fn cpu_bb_evaluates_table1_solutions() {
        let p = CpuBbProblem::new(table1_window(), 100, 100_000.0);
        // Solution 2 of Table 1(b): {J1, J5} -> 100 nodes, 20 TB.
        let s2 = Chromosome::from_bits(&[true, false, false, false, true]);
        assert!(p.is_feasible(&s2));
        let o = p.evaluate(&s2);
        assert_eq!(o.as_slice(), &[100.0, 20_000.0]);
        // Solution 3: {J2..J5} -> 80 nodes, 90 TB.
        let s3 = Chromosome::from_bits(&[false, true, true, true, true]);
        assert!(p.is_feasible(&s3));
        let o = p.evaluate(&s3);
        assert_eq!(o.as_slice(), &[80.0, 90_000.0]);
    }

    #[test]
    fn cpu_bb_detects_infeasible() {
        let p = CpuBbProblem::new(table1_window(), 100, 100_000.0);
        // All five jobs: 160 nodes > 100.
        let all = Chromosome::from_bits(&[true; 5]);
        assert!(!p.is_feasible(&all));
        // J1 + J2: 105 TB > 100 TB.
        let bb_over = Chromosome::from_bits(&[true, true, false, false, false]);
        assert!(!p.is_feasible(&bb_over));
    }

    #[test]
    fn cpu_bb_repair_only_deselects() {
        let p = CpuBbProblem::new(table1_window(), 100, 100_000.0);
        let before = Chromosome::from_bits(&[true; 5]);
        let mut after = before.clone();
        p.repair(&mut after);
        assert!(p.is_feasible(&after));
        // Repair never selects a job that was not already selected.
        for i in 0..5 {
            assert!(!after.get(i) || before.get(i));
        }
        // And it does not over-prune: at least one job must survive, since
        // single-job selections are feasible here.
        assert!(after.count_ones() >= 1);
    }

    #[test]
    fn cpu_bb_repair_keeps_feasible_untouched() {
        let p = CpuBbProblem::new(table1_window(), 100, 100_000.0);
        let mut s = Chromosome::from_bits(&[true, false, false, true, false]);
        let before = s.clone();
        p.repair(&mut s);
        assert_eq!(s, before);
    }

    #[test]
    fn normalizers_default_to_available() {
        let p = CpuBbProblem::new(table1_window(), 100, 100_000.0);
        assert_eq!(p.normalizers().as_slice(), &[100.0, 100_000.0]);
        let p = p.with_normalizers(200.0, 400_000.0);
        assert_eq!(p.normalizers().as_slice(), &[200.0, 400_000.0]);
    }

    fn ssd_window() -> Vec<JobDemand> {
        vec![
            JobDemand::cpu_bb_ssd(4, 100.0, 200.0), // must use 256-GB nodes
            JobDemand::cpu_bb_ssd(2, 0.0, 64.0),    // prefers 128-GB nodes
            JobDemand::cpu_bb_ssd(2, 50.0, 0.0),    // no SSD demand
        ]
    }

    #[test]
    fn ssd_waste_uses_greedy_assignment() {
        // 4 x 128-GB nodes, 4 x 256-GB nodes.
        let avail = Available::with_ssd(4, 4, 1_000.0);
        let p = CpuBbSsdProblem::new(ssd_window(), avail);
        let all = Chromosome::from_bits(&[true, true, true]);
        assert!(p.is_feasible(&all));
        let o = p.evaluate(&all);
        // f1 = 8 nodes, f2 = 150 GB bb, f3 = 4*200 + 2*64 = 928 GB.
        assert_eq!(o[0], 8.0);
        assert_eq!(o[1], 150.0);
        assert_eq!(o[2], 928.0);
        // Big job: 4 nodes on 256 -> waste 4*(256-200)=224.
        // Flexible 4 node-slots all fit on the 4 free 128s:
        // waste 2*(128-64) + 2*(128-0) = 128 + 256 = 384. Total 608.
        assert_eq!(o[3], -608.0);
    }

    #[test]
    fn ssd_infeasible_when_256_pool_exhausted() {
        let avail = Available::with_ssd(6, 2, 1_000.0);
        let p = CpuBbSsdProblem::new(ssd_window(), avail);
        // The 200-GB/node job needs 4 nodes from a 2-node 256 pool.
        let big = Chromosome::from_bits(&[true, false, false]);
        assert!(!p.is_feasible(&big));
        let mut r = big;
        p.repair(&mut r);
        assert!(p.is_feasible(&r));
        assert_eq!(r.count_ones(), 0);
    }

    #[test]
    fn ssd_overflow_to_256_increases_waste() {
        // Only 1 free 128-GB node: one flexible slot overflows to 256.
        let avail = Available::with_ssd(1, 7, 1_000.0);
        let p = CpuBbSsdProblem::new(ssd_window(), avail);
        let small = Chromosome::from_bits(&[false, true, false]);
        let o = p.evaluate(&small);
        // One slot on 128 (waste 64), one on 256 (waste 192).
        assert_eq!(o[3], -(64.0 + 192.0));
    }

    #[test]
    #[should_panic]
    fn ssd_pools_must_sum() {
        let bad = Available { nodes: 10, bb_gb: 0.0, nodes_128: 4, nodes_256: 4 };
        let _ = CpuBbSsdProblem::new(vec![], bad);
    }
}
