//! The generic N-resource model underlying every MOO formulation.
//!
//! The paper instantiates its window-knapsack twice — CPU + burst buffer
//! (§3.2.1, two objectives) and CPU + burst buffer + heterogeneous local SSD
//! (§5, four objectives) — and stresses that "BBSched can be easily extended
//! to schedule other schedulable resources". This module is that extension
//! point: a scheduling problem is described by an ordered table of
//! [`ResourceSpec`]s (resource 0 is always compute nodes), and the solver,
//! pools, and simulator all operate on fixed-capacity [`ResourceVector`]s so
//! the GA inner loop stays free of heap allocation regardless of how many
//! resources are registered.
//!
//! Two kinds of resource are modelled:
//!
//! * **Pooled** — a shared pool drawn from in arbitrary amounts (compute
//!   nodes, shared burst buffer, a pooled GPU bank, licenses, …).
//! * **Per-node** — an amount consumed *on every node* a job runs on, where
//!   the node pool is partitioned into capacity *flavours* (the paper's
//!   128 GB / 256 GB local-SSD nodes). A per-node resource may additionally
//!   track a *waste* objective (`-Σ wasted capacity`, maximized), which is
//!   how the §5 "minus wasted SSD" objective direction is expressed.

use serde::{Deserialize, Serialize};

/// Maximum number of resource dimensions supported by the fixed-capacity
/// vectors on the GA hot path. The paper uses 2 (§3.2.1) and 3 (§5).
pub const MAX_RESOURCES: usize = 5;

/// Maximum number of per-node capacity flavours. The paper uses 2
/// (128 GB and 256 GB local SSDs).
pub const MAX_FLAVORS: usize = 4;

/// Extra per-job demand slots available beyond the named paper resources
/// (see [`DemandSlot::Extra`]).
pub const MAX_EXTRA: usize = 2;

/// A fixed-capacity per-resource quantity vector: `values[..len]` are
/// meaningful, one entry per registered resource, index 0 = compute nodes.
///
/// Like `Objectives`, this is a stack array rather than a `Vec<f64>` so the
/// GA's repair/evaluate inner loops never allocate.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResourceVector {
    values: [f64; MAX_RESOURCES],
    len: usize,
}

impl ResourceVector {
    /// A zeroed vector over `len` resources.
    ///
    /// # Panics
    /// Panics if `len == 0` or `len > MAX_RESOURCES`.
    #[inline]
    pub fn zeros(len: usize) -> Self {
        assert!(len > 0 && len <= MAX_RESOURCES, "1..={MAX_RESOURCES} resources supported");
        Self { values: [0.0; MAX_RESOURCES], len }
    }

    /// Builds a vector from a slice.
    ///
    /// # Panics
    /// Panics if the slice is empty or longer than [`MAX_RESOURCES`].
    #[inline]
    pub fn from_slice(slice: &[f64]) -> Self {
        let mut v = Self::zeros(slice.len());
        v.values[..slice.len()].copy_from_slice(slice);
        v
    }

    /// The amount for resource `r`.
    ///
    /// # Panics
    /// Panics if `r >= len`.
    #[inline]
    pub fn get(&self, r: usize) -> f64 {
        assert!(r < self.len);
        self.values[r]
    }

    /// Sets the amount for resource `r`.
    ///
    /// # Panics
    /// Panics if `r >= len`.
    #[inline]
    pub fn set(&mut self, r: usize, v: f64) {
        assert!(r < self.len);
        self.values[r] = v;
    }

    /// The active amounts.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.values[..self.len]
    }

    /// Number of registered resources.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether there are no registered resources (never true for a
    /// constructed vector; present for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Component-wise `self + other`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    #[inline]
    pub fn saturating_add(&self, other: &Self) -> Self {
        assert_eq!(self.len, other.len);
        let mut out = *self;
        for r in 0..self.len {
            out.values[r] += other.values[r];
        }
        out
    }

    /// Component-wise minimum.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    #[inline]
    pub fn component_min(&self, other: &Self) -> Self {
        assert_eq!(self.len, other.len);
        let mut out = *self;
        for r in 0..self.len {
            out.values[r] = out.values[r].min(other.values[r]);
        }
        out
    }

    /// Component-wise maximum.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    #[inline]
    pub fn component_max(&self, other: &Self) -> Self {
        assert_eq!(self.len, other.len);
        let mut out = *self;
        for r in 0..self.len {
            out.values[r] = out.values[r].max(other.values[r]);
        }
        out
    }
}

/// One capacity flavour of a per-node resource: `count` nodes each carrying
/// `capacity` units (e.g. 2,944 nodes with 128 GB SSDs).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Flavor {
    /// Per-node capacity of this flavour.
    pub capacity: f64,
    /// Number of nodes of this flavour.
    pub count: u32,
}

/// The flavour table of a per-node resource, sorted by ascending capacity.
///
/// The greedy assignment of §5 generalizes to any number of flavours: a
/// job's demand classifies it to the *smallest* sufficient flavour
/// ([`FlavorSet::class_of`]), and node-slots fill flavours smallest-first,
/// "in order to mitigate wastage".
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlavorSet {
    flavors: [Flavor; MAX_FLAVORS],
    len: usize,
}

impl FlavorSet {
    /// Builds a flavour table.
    ///
    /// # Panics
    /// Panics if `flavors` is empty, holds more than [`MAX_FLAVORS`]
    /// entries, or is not sorted by strictly ascending capacity.
    pub fn new(flavors: &[Flavor]) -> Self {
        assert!(
            !flavors.is_empty() && flavors.len() <= MAX_FLAVORS,
            "1..={MAX_FLAVORS} flavours supported"
        );
        assert!(
            flavors.windows(2).all(|w| w[0].capacity < w[1].capacity),
            "flavours must have strictly ascending capacities"
        );
        let mut table = [Flavor { capacity: 0.0, count: 0 }; MAX_FLAVORS];
        table[..flavors.len()].copy_from_slice(flavors);
        Self { flavors: table, len: flavors.len() }
    }

    /// The paper's two-tier local-SSD split: `n_small` nodes at
    /// `small_cap` GB and `n_large` nodes at `large_cap` GB.
    pub fn two_tier(small_cap: f64, n_small: u32, large_cap: f64, n_large: u32) -> Self {
        Self::new(&[
            Flavor { capacity: small_cap, count: n_small },
            Flavor { capacity: large_cap, count: n_large },
        ])
    }

    /// A single-flavour (homogeneous) per-node resource.
    pub fn homogeneous(capacity: f64, count: u32) -> Self {
        Self::new(&[Flavor { capacity, count }])
    }

    /// Number of flavours.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty (never true for a constructed set).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `k`-th flavour (ascending capacity).
    ///
    /// # Panics
    /// Panics if `k >= len`.
    #[inline]
    pub fn get(&self, k: usize) -> Flavor {
        assert!(k < self.len);
        self.flavors[k]
    }

    /// The active flavours.
    #[inline]
    pub fn as_slice(&self) -> &[Flavor] {
        &self.flavors[..self.len]
    }

    /// The smallest flavour whose capacity covers a per-node demand, or the
    /// largest flavour if none does (over-demands are clamped upstream, as
    /// the seed simulator clamps SSD requests to 256 GB).
    ///
    /// Matches §5 exactly for two tiers: demand ≤ 128 GB → class 0
    /// (flexible), demand > 128 GB → class 1 (needs a 256 GB node).
    #[inline]
    pub fn class_of(&self, per_node_demand: f64) -> usize {
        for k in 0..self.len {
            if per_node_demand <= self.flavors[k].capacity {
                return k;
            }
        }
        self.len - 1
    }

    /// Total nodes across all flavours.
    pub fn total_count(&self) -> u32 {
        self.as_slice().iter().map(|f| f.count).sum()
    }

    /// Total capacity across all flavours (`Σ count × capacity`).
    pub fn total_capacity(&self) -> f64 {
        self.as_slice().iter().map(|f| f64::from(f.count) * f.capacity).sum()
    }
}

/// Pooled vs. per-node consumption semantics of a resource.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ResourceKind {
    /// A shared pool drawn from in arbitrary amounts (nodes, burst buffer).
    Pooled,
    /// An amount consumed on every node the job runs on; the node pool is
    /// partitioned into capacity flavours.
    PerNode {
        /// Flavour table (ascending capacity).
        flavors: FlavorSet,
    },
}

/// Which field of a `JobDemand` supplies the per-job demand for a resource.
///
/// The demand struct keeps the paper's named fields (for API continuity)
/// plus [`MAX_EXTRA`] anonymous slots for resources beyond the paper's
/// three, so registering a new resource needs no change to the core types.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DemandSlot {
    /// `JobDemand::nodes` (resource 0 only).
    Nodes,
    /// `JobDemand::bb_gb` — a total, pooled amount.
    BbGb,
    /// `JobDemand::ssd_gb_per_node` — a per-node amount.
    SsdPerNode,
    /// `JobDemand::extra[i]` — demand for a registered extra resource.
    Extra(u8),
}

/// Full description of one schedulable resource dimension.
///
/// `available` is the amount the problem is constrained by (free at this
/// invocation, not necessarily the machine total); objective normalization
/// against machine totals is layered on via `with_normalizers`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResourceSpec {
    /// Human-readable name ("nodes", "bb_gb", "ssd", "gpus", …).
    pub name: String,
    /// Consumption semantics.
    pub kind: ResourceKind,
    /// Available amount: pool size for [`ResourceKind::Pooled`], total
    /// capacity (`Σ count × capacity`) for [`ResourceKind::PerNode`].
    pub available: f64,
    /// Where a job's demand for this resource comes from.
    pub slot: DemandSlot,
    /// Whether to add a `-waste` objective for this resource (per-node
    /// resources only): maximizing `-Σ unused assigned capacity` is the §5
    /// "minus wasted SSD" objective direction.
    pub track_waste: bool,
}

impl ResourceSpec {
    /// A pooled resource with the given free amount.
    pub fn pooled(name: impl Into<String>, available: f64, slot: DemandSlot) -> Self {
        Self { name: name.into(), kind: ResourceKind::Pooled, available, slot, track_waste: false }
    }

    /// A per-node resource over the given flavour table.
    pub fn per_node(name: impl Into<String>, flavors: FlavorSet, slot: DemandSlot) -> Self {
        Self {
            name: name.into(),
            kind: ResourceKind::PerNode { flavors },
            available: flavors.total_capacity(),
            slot,
            track_waste: false,
        }
    }

    /// Enables the waste objective (builder style).
    ///
    /// # Panics
    /// Panics for pooled resources — waste is only defined for per-node
    /// capacity assignment.
    pub fn with_waste_objective(mut self) -> Self {
        assert!(
            matches!(self.kind, ResourceKind::PerNode { .. }),
            "waste objective requires a per-node resource"
        );
        self.track_waste = true;
        self
    }
}

/// Errors from [`ResourceModel::new`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResourceModelError {
    /// The spec table was empty.
    Empty,
    /// More than [`MAX_RESOURCES`] specs.
    TooManyResources(usize),
    /// Resource 0 must be pooled compute nodes with [`DemandSlot::Nodes`].
    FirstResourceNotNodes,
    /// [`DemandSlot::Nodes`] used for a resource other than resource 0.
    NodesSlotReused(usize),
    /// More than one per-node resource registered (the node pool can only
    /// be partitioned one way).
    MultiplePerNode,
    /// An availability or flavour capacity was negative or NaN (pooled
    /// availabilities may be `+inf`, modelling an unconstrained pool).
    InvalidAmount(usize),
    /// More objectives than the solver's fixed-size vectors support.
    TooManyObjectives(usize),
    /// An [`DemandSlot::Extra`] index beyond [`MAX_EXTRA`].
    ExtraSlotOutOfRange(usize),
}

impl std::fmt::Display for ResourceModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Empty => write!(f, "resource table is empty"),
            Self::TooManyResources(n) => {
                write!(f, "{n} resources exceed the supported maximum of {MAX_RESOURCES}")
            }
            Self::FirstResourceNotNodes => {
                write!(f, "resource 0 must be pooled compute nodes with DemandSlot::Nodes")
            }
            Self::NodesSlotReused(r) => {
                write!(f, "resource {r} reuses DemandSlot::Nodes (reserved for resource 0)")
            }
            Self::MultiplePerNode => {
                write!(f, "at most one per-node resource is supported")
            }
            Self::InvalidAmount(r) => {
                write!(f, "resource {r} has a negative or non-finite amount")
            }
            Self::TooManyObjectives(n) => {
                write!(f, "{n} objectives exceed the solver maximum of {}", crate::MAX_OBJECTIVES)
            }
            Self::ExtraSlotOutOfRange(r) => {
                write!(f, "resource {r} uses an extra demand slot >= {MAX_EXTRA}")
            }
        }
    }
}

impl std::error::Error for ResourceModelError {}

/// An ordered resource table describing one scheduling problem instance.
///
/// Invariants (checked at construction): resource 0 is pooled compute
/// nodes keyed by [`DemandSlot::Nodes`]; at most one resource is per-node;
/// `resources + waste objectives <= MAX_OBJECTIVES`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResourceModel {
    specs: Vec<ResourceSpec>,
}

impl ResourceModel {
    /// Validates and builds a model from an ordered spec table.
    pub fn new(specs: Vec<ResourceSpec>) -> Result<Self, ResourceModelError> {
        if specs.is_empty() {
            return Err(ResourceModelError::Empty);
        }
        if specs.len() > MAX_RESOURCES {
            return Err(ResourceModelError::TooManyResources(specs.len()));
        }
        let first_ok = matches!(specs[0].kind, ResourceKind::Pooled)
            && specs[0].slot == DemandSlot::Nodes
            && !specs[0].track_waste;
        if !first_ok {
            return Err(ResourceModelError::FirstResourceNotNodes);
        }
        let mut per_node_seen = false;
        for (r, s) in specs.iter().enumerate() {
            if r > 0 && s.slot == DemandSlot::Nodes {
                return Err(ResourceModelError::NodesSlotReused(r));
            }
            if let DemandSlot::Extra(i) = s.slot {
                if usize::from(i) >= MAX_EXTRA {
                    return Err(ResourceModelError::ExtraSlotOutOfRange(r));
                }
            }
            // `+inf` is allowed: it models an unconstrained pool.
            if s.available.is_nan() || s.available < 0.0 {
                return Err(ResourceModelError::InvalidAmount(r));
            }
            if let ResourceKind::PerNode { flavors } = &s.kind {
                if per_node_seen {
                    return Err(ResourceModelError::MultiplePerNode);
                }
                per_node_seen = true;
                if flavors.as_slice().iter().any(|f| !(f.capacity.is_finite() && f.capacity >= 0.0))
                {
                    return Err(ResourceModelError::InvalidAmount(r));
                }
            }
        }
        let n_obj = specs.len() + specs.iter().filter(|s| s.track_waste).count();
        if n_obj > crate::MAX_OBJECTIVES {
            return Err(ResourceModelError::TooManyObjectives(n_obj));
        }
        Ok(Self { specs })
    }

    /// The §3.2.1 preset: pooled compute nodes + pooled shared burst buffer.
    pub fn cpu_bb(avail_nodes: u32, avail_bb_gb: f64) -> Self {
        Self::new(vec![
            ResourceSpec::pooled("nodes", f64::from(avail_nodes), DemandSlot::Nodes),
            ResourceSpec::pooled("bb_gb", avail_bb_gb, DemandSlot::BbGb),
        ])
        .expect("cpu_bb preset is always valid")
    }

    /// The §5 preset: nodes + burst buffer + two-tier per-node local SSD
    /// with a waste objective.
    pub fn cpu_bb_ssd(avail_nodes_128: u32, avail_nodes_256: u32, avail_bb_gb: f64) -> Self {
        use crate::problem::{SSD_LARGE_GB, SSD_SMALL_GB};
        let flavors =
            FlavorSet::two_tier(SSD_SMALL_GB, avail_nodes_128, SSD_LARGE_GB, avail_nodes_256);
        Self::new(vec![
            ResourceSpec::pooled(
                "nodes",
                f64::from(avail_nodes_128 + avail_nodes_256),
                DemandSlot::Nodes,
            ),
            ResourceSpec::pooled("bb_gb", avail_bb_gb, DemandSlot::BbGb),
            ResourceSpec::per_node("ssd", flavors, DemandSlot::SsdPerNode).with_waste_objective(),
        ])
        .expect("cpu_bb_ssd preset is always valid")
    }

    /// The ordered spec table.
    #[inline]
    pub fn specs(&self) -> &[ResourceSpec] {
        &self.specs
    }

    /// Number of resource dimensions.
    #[inline]
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the table is empty (never true for a constructed model).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Number of objectives: one per resource plus one per waste tracker.
    pub fn num_objectives(&self) -> usize {
        self.specs.len() + self.specs.iter().filter(|s| s.track_waste).count()
    }

    /// The per-node resource, if any: `(resource index, flavour table,
    /// waste tracked)`.
    pub fn per_node_resource(&self) -> Option<(usize, &FlavorSet, bool)> {
        self.specs.iter().enumerate().find_map(|(r, s)| match &s.kind {
            ResourceKind::PerNode { flavors } => Some((r, flavors, s.track_waste)),
            ResourceKind::Pooled => None,
        })
    }

    /// Available compute nodes (resource 0's pool, exact integer).
    pub fn avail_nodes(&self) -> u32 {
        self.specs[0].available as u32
    }

    /// Available amounts as a vector.
    pub fn available(&self) -> ResourceVector {
        ResourceVector::from_slice(&self.specs.iter().map(|s| s.available).collect::<Vec<_>>())
    }

    /// Default objective normalizers: each resource's availability (floored
    /// at 1 so empty pools do not divide by zero), and each waste
    /// objective's total flavour capacity.
    pub fn default_normalizers(&self) -> crate::Objectives {
        let mut norms = Vec::with_capacity(self.num_objectives());
        for s in &self.specs {
            norms.push(s.available.max(1.0));
        }
        for s in &self.specs {
            if s.track_waste {
                norms.push(s.available.max(1.0));
            }
        }
        crate::Objectives::from_slice(&norms)
    }

    /// A job's demand for resource `r` (per-node amount for per-node
    /// resources, total amount for pooled ones).
    #[inline]
    pub fn demand_of(&self, d: &crate::problem::JobDemand, r: usize) -> f64 {
        match self.specs[r].slot {
            DemandSlot::Nodes => f64::from(d.nodes),
            DemandSlot::BbGb => d.bb_gb,
            DemandSlot::SsdPerNode => d.ssd_gb_per_node,
            DemandSlot::Extra(i) => d.extra[usize::from(i)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::JobDemand;

    #[test]
    fn vector_roundtrip_and_ops() {
        let a = ResourceVector::from_slice(&[1.0, 2.0, 3.0]);
        let b = ResourceVector::from_slice(&[4.0, 1.0, 5.0]);
        assert_eq!(a.len(), 3);
        assert_eq!(a.get(2), 3.0);
        assert_eq!(a.saturating_add(&b).as_slice(), &[5.0, 3.0, 8.0]);
        assert_eq!(a.component_min(&b).as_slice(), &[1.0, 1.0, 3.0]);
        let mut c = a;
        c.set(0, 9.0);
        assert_eq!(c.as_slice(), &[9.0, 2.0, 3.0]);
        assert!(!a.is_empty());
    }

    #[test]
    #[should_panic]
    fn vector_rejects_too_many() {
        let _ = ResourceVector::zeros(MAX_RESOURCES + 1);
    }

    #[test]
    fn flavor_classification_matches_paper() {
        let f = FlavorSet::two_tier(128.0, 10, 256.0, 4);
        assert_eq!(f.class_of(0.0), 0);
        assert_eq!(f.class_of(64.0), 0);
        assert_eq!(f.class_of(128.0), 0); // exactly 128 GB fits a small node
        assert_eq!(f.class_of(128.1), 1);
        assert_eq!(f.class_of(256.0), 1);
        assert_eq!(f.class_of(999.0), 1); // clamped to the largest flavour
        assert_eq!(f.total_count(), 14);
        assert_eq!(f.total_capacity(), 10.0 * 128.0 + 4.0 * 256.0);
    }

    #[test]
    #[should_panic]
    fn flavors_must_ascend() {
        let _ = FlavorSet::new(&[
            Flavor { capacity: 256.0, count: 1 },
            Flavor { capacity: 128.0, count: 1 },
        ]);
    }

    #[test]
    fn presets_are_valid() {
        let m = ResourceModel::cpu_bb(100, 100_000.0);
        assert_eq!(m.len(), 2);
        assert_eq!(m.num_objectives(), 2);
        assert!(m.per_node_resource().is_none());
        assert_eq!(m.avail_nodes(), 100);
        assert_eq!(m.default_normalizers().as_slice(), &[100.0, 100_000.0]);

        let m = ResourceModel::cpu_bb_ssd(6, 4, 50_000.0);
        assert_eq!(m.len(), 3);
        assert_eq!(m.num_objectives(), 4);
        let (r, flavors, waste) = m.per_node_resource().unwrap();
        assert_eq!(r, 2);
        assert!(waste);
        assert_eq!(flavors.len(), 2);
        let cap = 6.0 * 128.0 + 4.0 * 256.0;
        assert_eq!(m.default_normalizers().as_slice(), &[10.0, 50_000.0, cap, cap]);
    }

    #[test]
    fn model_validation_rejects_bad_tables() {
        assert_eq!(ResourceModel::new(vec![]).unwrap_err(), ResourceModelError::Empty);
        // First resource must be nodes.
        let bad = vec![ResourceSpec::pooled("bb", 10.0, DemandSlot::BbGb)];
        assert_eq!(ResourceModel::new(bad).unwrap_err(), ResourceModelError::FirstResourceNotNodes);
        // Nodes slot reuse.
        let bad = vec![
            ResourceSpec::pooled("nodes", 10.0, DemandSlot::Nodes),
            ResourceSpec::pooled("nodes2", 10.0, DemandSlot::Nodes),
        ];
        assert_eq!(ResourceModel::new(bad).unwrap_err(), ResourceModelError::NodesSlotReused(1));
        // Two per-node resources.
        let bad = vec![
            ResourceSpec::pooled("nodes", 10.0, DemandSlot::Nodes),
            ResourceSpec::per_node("a", FlavorSet::homogeneous(1.0, 10), DemandSlot::SsdPerNode),
            ResourceSpec::per_node("b", FlavorSet::homogeneous(1.0, 10), DemandSlot::Extra(0)),
        ];
        assert_eq!(ResourceModel::new(bad).unwrap_err(), ResourceModelError::MultiplePerNode);
        // Extra slot out of range.
        let bad = vec![
            ResourceSpec::pooled("nodes", 10.0, DemandSlot::Nodes),
            ResourceSpec::pooled("x", 1.0, DemandSlot::Extra(MAX_EXTRA as u8)),
        ];
        assert_eq!(
            ResourceModel::new(bad).unwrap_err(),
            ResourceModelError::ExtraSlotOutOfRange(1)
        );
        // Negative availability.
        let bad = vec![
            ResourceSpec::pooled("nodes", 10.0, DemandSlot::Nodes),
            ResourceSpec::pooled("x", -1.0, DemandSlot::Extra(0)),
        ];
        assert_eq!(ResourceModel::new(bad).unwrap_err(), ResourceModelError::InvalidAmount(1));
        // Error type is a real std error.
        let e: Box<dyn std::error::Error> = Box::new(ResourceModelError::Empty);
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn demand_slots_route_to_fields() {
        let m = ResourceModel::new(vec![
            ResourceSpec::pooled("nodes", 10.0, DemandSlot::Nodes),
            ResourceSpec::pooled("bb", 10.0, DemandSlot::BbGb),
            ResourceSpec::pooled("gpus", 16.0, DemandSlot::Extra(0)),
        ])
        .unwrap();
        let d = JobDemand::cpu_bb(4, 7.0).with_extra(0, 2.0);
        assert_eq!(m.demand_of(&d, 0), 4.0);
        assert_eq!(m.demand_of(&d, 1), 7.0);
        assert_eq!(m.demand_of(&d, 2), 2.0);
    }
}
