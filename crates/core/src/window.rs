//! Window-based scheduling bookkeeping (§3.1).
//!
//! BBSched dispatches jobs from a *window* at the front of the base
//! scheduler's priority-ordered waiting queue, balancing optimization power
//! (larger windows) against preservation of the site's job order (smaller
//! windows). Two concerns live here:
//!
//! * [`WindowConfig`] — window size and the starvation bound;
//! * [`StarvationTracker`] — per-job counts of how many scheduling
//!   iterations a job has sat in the window without being selected. "Once a
//!   job passes the bound (e.g., 50), it must be selected to run."

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Window parameters. Paper defaults: size 20 (§4.3), starvation bound 50
/// (§3.1's example value).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowConfig {
    /// Number of jobs taken from the front of the waiting queue.
    pub size: usize,
    /// Maximum scheduling iterations a job may stay in the window without
    /// being selected before it is forced to run.
    pub starvation_bound: u32,
}

impl Default for WindowConfig {
    fn default() -> Self {
        Self { size: 20, starvation_bound: 50 }
    }
}

impl WindowConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.size == 0 {
            return Err("window size must be >= 1".into());
        }
        if self.starvation_bound == 0 {
            return Err("starvation bound must be >= 1".into());
        }
        Ok(())
    }
}

/// Tracks how long each job has been passed over inside the window.
#[derive(Clone, Debug, Default)]
pub struct StarvationTracker {
    passes: HashMap<u64, u32>,
}

impl StarvationTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the outcome of one scheduling iteration: every window job
    /// not in `selected` accrues one pass; selected (or departed) jobs are
    /// forgotten.
    pub fn observe(&mut self, window: &[u64], selected: &[u64]) {
        for &id in window {
            if selected.contains(&id) {
                self.passes.remove(&id);
            } else {
                *self.passes.entry(id).or_insert(0) += 1;
            }
        }
    }

    /// Number of iterations job `id` has been passed over.
    pub fn passes(&self, id: u64) -> u32 {
        self.passes.get(&id).copied().unwrap_or(0)
    }

    /// Whether job `id` has exceeded the starvation bound and must run.
    /// A job may *stay* for `bound` iterations; strictly exceeding it
    /// triggers forced selection ("once a job passes the bound", §3.1).
    pub fn is_starved(&self, id: u64, bound: u32) -> bool {
        self.passes(id) > bound
    }

    /// Drops bookkeeping for a job that left the system (e.g., was
    /// cancelled or started through backfilling).
    pub fn forget(&mut self, id: u64) {
        self.passes.remove(&id);
    }

    /// Number of jobs currently tracked.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// Whether no job is tracked.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// The tracked `(job id, passes)` pairs sorted by job id: a canonical,
    /// order-independent export of the tracker's state for snapshotting.
    pub fn entries(&self) -> Vec<(u64, u32)> {
        let mut out: Vec<(u64, u32)> = self.passes.iter().map(|(&id, &p)| (id, p)).collect();
        out.sort_unstable();
        out
    }

    /// Rebuilds a tracker from exported [`StarvationTracker::entries`].
    /// Later duplicates of a job id overwrite earlier ones.
    pub fn from_entries(entries: &[(u64, u32)]) -> Self {
        Self { passes: entries.iter().copied().collect() }
    }
}

/// Builds the scheduling window from a priority-ordered queue, honouring
/// job dependencies: "jobs with dependencies are allowed to enter the
/// window only if all the dependencies have been completed" (§3.1).
///
/// `queue` is the waiting queue in base-scheduler priority order;
/// `deps_met` reports whether all dependencies of a job are complete.
/// Returns the *indices into `queue`* of the window members, in order.
pub fn fill_window<F>(queue_len: usize, window_size: usize, mut deps_met: F) -> Vec<usize>
where
    F: FnMut(usize) -> bool,
{
    let mut window = Vec::with_capacity(window_size.min(queue_len));
    for qi in 0..queue_len {
        if window.len() == window_size {
            break;
        }
        if deps_met(qi) {
            window.push(qi);
        }
    }
    window
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(WindowConfig::default().validate().is_ok());
        assert!(WindowConfig { size: 0, starvation_bound: 50 }.validate().is_err());
        assert!(WindowConfig { size: 20, starvation_bound: 0 }.validate().is_err());
    }

    #[test]
    fn tracker_accumulates_passes() {
        let mut t = StarvationTracker::new();
        t.observe(&[1, 2, 3], &[2]);
        assert_eq!(t.passes(1), 1);
        assert_eq!(t.passes(2), 0);
        assert_eq!(t.passes(3), 1);
        t.observe(&[1, 3], &[]);
        assert_eq!(t.passes(1), 2);
        assert!(t.is_starved(1, 1)); // 2 passes > bound of 1
        assert!(!t.is_starved(3, 2)); // 2 passes does not exceed bound of 2
    }

    #[test]
    fn selection_resets_count() {
        let mut t = StarvationTracker::new();
        t.observe(&[7], &[]);
        t.observe(&[7], &[]);
        assert_eq!(t.passes(7), 2);
        t.observe(&[7], &[7]);
        assert_eq!(t.passes(7), 0);
        assert!(t.is_empty());
    }

    #[test]
    fn forget_removes_tracking() {
        let mut t = StarvationTracker::new();
        t.observe(&[9], &[]);
        assert_eq!(t.len(), 1);
        t.forget(9);
        assert_eq!(t.passes(9), 0);
        assert!(t.is_empty());
    }

    #[test]
    fn entries_roundtrip_is_canonical() {
        let mut t = StarvationTracker::new();
        t.observe(&[9, 4, 7], &[]);
        t.observe(&[9, 4], &[]);
        let entries = t.entries();
        assert_eq!(entries, vec![(4, 2), (7, 1), (9, 2)]);
        let back = StarvationTracker::from_entries(&entries);
        assert_eq!(back.entries(), entries);
        assert_eq!(back.passes(4), 2);
        assert_eq!(back.passes(7), 1);
    }

    #[test]
    fn fill_window_respects_size_and_deps() {
        // Queue of 6; job at index 2 has unmet dependencies.
        let w = fill_window(6, 4, |qi| qi != 2);
        assert_eq!(w, vec![0, 1, 3, 4]);
    }

    #[test]
    fn fill_window_short_queue() {
        let w = fill_window(2, 10, |_| true);
        assert_eq!(w, vec![0, 1]);
    }

    #[test]
    fn fill_window_all_blocked() {
        let w = fill_window(5, 3, |_| false);
        assert!(w.is_empty());
    }
}
