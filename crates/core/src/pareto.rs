//! Pareto dominance and front extraction.
//!
//! All objectives are *maximized* (the paper expresses minimization of
//! wasted SSD as maximizing its negation). A solution is in the Pareto set
//! "if improving one of its objectives would deteriorate at least one other
//! objective" (§3.2.2).

use crate::chromosome::Chromosome;
use crate::Objectives;

/// Returns `true` iff `a` dominates `b`: `a` is at least as good in every
/// objective and strictly better in at least one.
#[inline]
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly_better = false;
    for (&x, &y) in a.iter().zip(b) {
        if x < y {
            return false;
        }
        if x > y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// A solution paired with its objective vector.
#[derive(Clone, Debug)]
pub struct Solution {
    /// The selection vector.
    pub chromosome: Chromosome,
    /// Its (cached) objective values.
    pub objectives: Objectives,
}

/// A set of mutually non-dominated solutions.
///
/// The front deduplicates identical objective vectors, keeping the solution
/// the decision maker would prefer (selected jobs closest to the window
/// front), so downstream trade-off analysis sees one representative per
/// objective point.
#[derive(Clone, Debug, Default)]
pub struct ParetoFront {
    solutions: Vec<Solution>,
}

impl ParetoFront {
    /// An empty front.
    pub fn new() -> Self {
        Self::default()
    }

    /// Extracts the Pareto front from an arbitrary pool of solutions.
    pub fn from_pool<I>(pool: I) -> Self
    where
        I: IntoIterator<Item = Solution>,
    {
        let mut front = Self::new();
        for s in pool {
            front.insert(s);
        }
        front
    }

    /// Attempts to add a solution. Returns `true` if it joined the front
    /// (it was not dominated); dominated members are evicted.
    pub fn insert(&mut self, s: Solution) -> bool {
        for existing in &self.solutions {
            if dominates(existing.objectives.as_slice(), s.objectives.as_slice()) {
                return false;
            }
            if existing.objectives.as_slice() == s.objectives.as_slice() {
                // Duplicate objective point: keep the front-of-window
                // representative (decision-maker tie-break, §3.2.4).
                return false;
            }
        }
        self.solutions.retain(|e| !dominates(s.objectives.as_slice(), e.objectives.as_slice()));
        self.solutions.push(s);
        true
    }

    /// The solutions on the front (unspecified order).
    pub fn solutions(&self) -> &[Solution] {
        &self.solutions
    }

    /// Number of solutions on the front.
    pub fn len(&self) -> usize {
        self.solutions.len()
    }

    /// Whether the front is empty.
    pub fn is_empty(&self) -> bool {
        self.solutions.is_empty()
    }

    /// Iterate over objective vectors.
    pub fn objective_vectors(&self) -> impl Iterator<Item = &[f64]> + '_ {
        self.solutions.iter().map(|s| s.objectives.as_slice())
    }

    /// Sorts the front by descending first objective (node utilization),
    /// breaking ties by front-of-window preference. Useful for stable
    /// display and for the decision maker.
    pub fn sort_by_first_objective(&mut self) {
        self.solutions.sort_by(|a, b| {
            b.objectives[0]
                .partial_cmp(&a.objectives[0])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.chromosome.front_preference(&b.chromosome))
        });
    }

    /// Consumes the front, returning its solutions.
    pub fn into_solutions(self) -> Vec<Solution> {
        self.solutions
    }

    /// Verifies the front invariant: no member dominates another. Intended
    /// for tests and debug assertions.
    pub fn is_mutually_nondominated(&self) -> bool {
        for (i, a) in self.solutions.iter().enumerate() {
            for (j, b) in self.solutions.iter().enumerate() {
                if i != j && dominates(a.objectives.as_slice(), b.objectives.as_slice()) {
                    return false;
                }
            }
        }
        true
    }
}

/// NSGA-II crowding distance of each point within one non-dominated set:
/// boundary points per objective get `f64::INFINITY`; interior points get
/// the sum over objectives of the normalized gap between their neighbours.
/// Larger = lonelier = more worth keeping for front diversity.
///
/// Used by the `ParetoCrowding` GA selection variant (an ablation against
/// the paper's age-based elitism).
pub fn crowding_distance(points: &[&[f64]]) -> Vec<f64> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let m = points[0].len();
    let mut dist = vec![0.0f64; n];
    if n <= 2 {
        return vec![f64::INFINITY; n];
    }
    let mut order: Vec<usize> = (0..n).collect();
    #[allow(clippy::needless_range_loop)] // k indexes into every point's k-th objective
    for k in 0..m {
        order.sort_by(|&a, &b| {
            points[a][k].partial_cmp(&points[b][k]).unwrap_or(std::cmp::Ordering::Equal)
        });
        let lo = points[order[0]][k];
        let hi = points[order[n - 1]][k];
        let range = (hi - lo).max(f64::MIN_POSITIVE);
        dist[order[0]] = f64::INFINITY;
        dist[order[n - 1]] = f64::INFINITY;
        for w in 1..n - 1 {
            let gap = (points[order[w + 1]][k] - points[order[w - 1]][k]) / range;
            if dist[order[w]].is_finite() {
                dist[order[w]] += gap;
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sol(bits: &[bool], objs: &[f64]) -> Solution {
        Solution {
            chromosome: Chromosome::from_bits(bits),
            objectives: Objectives::from_slice(objs),
        }
    }

    #[test]
    fn dominance_basics() {
        assert!(dominates(&[2.0, 2.0], &[1.0, 2.0]));
        assert!(dominates(&[2.0, 3.0], &[1.0, 2.0]));
        assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0])); // equal: not strict
        assert!(!dominates(&[2.0, 1.0], &[1.0, 2.0])); // trade-off
        assert!(!dominates(&[0.0, 0.0], &[1.0, 0.0]));
    }

    #[test]
    fn front_keeps_tradeoffs_drops_dominated() {
        let mut f = ParetoFront::new();
        assert!(f.insert(sol(&[true, false], &[100.0, 20.0])));
        assert!(f.insert(sol(&[false, true], &[80.0, 90.0])));
        // Dominated by the first point.
        assert!(!f.insert(sol(&[false, false], &[90.0, 20.0])));
        assert_eq!(f.len(), 2);
        assert!(f.is_mutually_nondominated());
    }

    #[test]
    fn front_evicts_newly_dominated() {
        let mut f = ParetoFront::new();
        f.insert(sol(&[true, false], &[50.0, 50.0]));
        f.insert(sol(&[false, true], &[60.0, 60.0]));
        assert_eq!(f.len(), 1);
        assert_eq!(f.solutions()[0].objectives.as_slice(), &[60.0, 60.0]);
    }

    #[test]
    fn front_dedups_equal_points() {
        let mut f = ParetoFront::new();
        f.insert(sol(&[true, false], &[10.0, 10.0]));
        assert!(!f.insert(sol(&[false, true], &[10.0, 10.0])));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn sort_orders_by_nodes_desc() {
        let mut f = ParetoFront::new();
        f.insert(sol(&[false, true], &[80.0, 90.0]));
        f.insert(sol(&[true, false], &[100.0, 20.0]));
        f.sort_by_first_objective();
        assert_eq!(f.solutions()[0].objectives[0], 100.0);
        assert_eq!(f.solutions()[1].objectives[0], 80.0);
    }

    #[test]
    fn empty_front() {
        let f = ParetoFront::new();
        assert!(f.is_empty());
        assert_eq!(f.len(), 0);
        assert!(f.is_mutually_nondominated());
    }

    #[test]
    fn crowding_boundaries_are_infinite() {
        let pts: Vec<&[f64]> = vec![&[0.0, 10.0], &[5.0, 5.0], &[10.0, 0.0]];
        let d = crowding_distance(&pts);
        assert!(d[0].is_infinite());
        assert!(d[2].is_infinite());
        assert!(d[1].is_finite() && d[1] > 0.0);
    }

    #[test]
    fn crowding_prefers_lonely_points() {
        // Four points on a line; the middle pair are crowded together.
        let pts: Vec<&[f64]> = vec![&[0.0, 30.0], &[14.0, 16.0], &[15.0, 15.0], &[30.0, 0.0]];
        let d = crowding_distance(&pts);
        // Interior points: index 1 and 2; both have the same neighbour gap
        // here, so just check they are finite and positive.
        assert!(d[1] > 0.0 && d[2] > 0.0);
        assert!(d[0].is_infinite() && d[3].is_infinite());
    }

    #[test]
    fn crowding_small_sets() {
        assert!(crowding_distance(&[]).is_empty());
        let one: Vec<&[f64]> = vec![&[1.0, 1.0]];
        assert_eq!(crowding_distance(&one), vec![f64::INFINITY]);
        let two: Vec<&[f64]> = vec![&[1.0, 2.0], &[2.0, 1.0]];
        assert_eq!(crowding_distance(&two), vec![f64::INFINITY; 2]);
    }
}
