//! The multi-objective genetic algorithm of §3.2.2.
//!
//! The solver mimics natural selection over a constant-size population of
//! `P` chromosomes for `G` generations:
//!
//! * **crossover** — two children from two random parents, swapping genes
//!   after a random cut point;
//! * **mutation** — each child gene bit-flips with low probability `p_m`;
//! * **selection** — the pool (parents + children) is split into the Pareto
//!   solutions (*Set 1*) and the rest (*Set 2*); Set 1 passes to the next
//!   generation first, then the *newest* chromosomes of Set 2; if Set 1
//!   alone exceeds `P`, the newest of Set 1 are kept. Survivor ages
//!   increment every generation, children start at age 0.
//!
//! Every chromosome is kept feasible via [`MooProblem::repair`], so the
//! capacity constraints of the MOO formulation always hold.
//!
//! A scalarized mode ([`SolveMode::Scalar`]) reuses the same evolutionary
//! machinery with "keep the best `P` by weighted sum" selection; this powers
//! the *weighted* and *constrained* comparison policies of §4.3, which the
//! paper describes as single-objective conversions of the same problem.

use crate::chromosome::Chromosome;
use crate::parallel;
use crate::pareto::{dominates, ParetoFront, Solution};
use crate::problem::MooProblem;
use crate::Objectives;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// How the GA turns objective vectors into survivor choices.
#[derive(Clone, Debug, PartialEq)]
pub enum SolveMode {
    /// Multi-objective Pareto selection (BBSched proper, §3.2.2):
    /// non-dominated Set 1 survives first, then the newest of the rest.
    Pareto,
    /// NSGA-II-style variant: like [`SolveMode::Pareto`], but overflowing
    /// or tying choices are settled by *crowding distance* instead of age,
    /// preserving front diversity. An ablation of the paper's age rule.
    ParetoCrowding,
    /// Single-objective selection by weighted sum of *normalized*
    /// objectives (weights are applied after dividing each objective by the
    /// problem's [`MooProblem::normalizers`]). Used by the weighted and
    /// constrained comparison methods.
    Scalar(Vec<f64>),
}

/// GA hyper-parameters. Paper defaults (§4.3): window 20, `G = 500`,
/// `P = 20`, `p_m = 0.05 %`.
#[derive(Clone, Debug)]
pub struct GaConfig {
    /// Population size `P`.
    pub population: usize,
    /// Number of generations `G`.
    pub generations: usize,
    /// Per-gene bit-flip probability `p_m`.
    pub mutation_rate: f64,
    /// RNG seed; equal seeds give identical runs.
    pub seed: u64,
    /// Selection mode.
    pub mode: SolveMode,
    /// Worker threads for population evaluation (1 = serial). The paper
    /// notes the GA "can be accelerated by leveraging parallel processing".
    pub threads: usize,
    /// Saturation polish: after each child is repaired, greedily select any
    /// still-fitting window job (front-of-window first). Every *exact*
    /// Pareto point of the §3.2.1/§5 problems is saturated — objectives are
    /// monotone in the selection — so polishing weakly dominates the
    /// unpolished chromosome and can only improve the approximation. Off by
    /// default for strict fidelity to the paper's operator set; the
    /// `ga_scaling` ablation quantifies the gain.
    pub saturate: bool,
    /// External Pareto archive: accumulate every individual ever evaluated
    /// into a best-ever front and return *that* instead of the final
    /// generation's Set 1. Immune to the drift where a good point is found
    /// mid-run and later lost. Off by default (the paper returns "the
    /// chromosomes in Set 1 in the final generation").
    pub archive: bool,
}

impl Default for GaConfig {
    fn default() -> Self {
        Self {
            population: 20,
            generations: 500,
            mutation_rate: 0.0005,
            seed: 0x5eed_b00c,
            mode: SolveMode::Pareto,
            threads: 1,
            saturate: false,
            archive: false,
        }
    }
}

/// Errors from [`GaConfig::validate`].
#[derive(Clone, Debug, PartialEq)]
pub enum GaConfigError {
    /// Population size below the two parents crossover needs.
    PopulationTooSmall(usize),
    /// Mutation rate outside `[0, 1]`.
    MutationRateOutOfRange(f64),
    /// Zero worker threads requested.
    ZeroThreads,
    /// Scalar mode configured without any weights.
    EmptyScalarWeights,
}

impl std::fmt::Display for GaConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::PopulationTooSmall(p) => write!(f, "population must be >= 2, got {p}"),
            Self::MutationRateOutOfRange(r) => {
                write!(f, "mutation_rate must be in [0, 1], got {r}")
            }
            Self::ZeroThreads => write!(f, "threads must be >= 1"),
            Self::EmptyScalarWeights => write!(f, "scalar mode requires at least one weight"),
        }
    }
}

impl std::error::Error for GaConfigError {}

impl GaConfig {
    /// Validates the configuration, returning a typed error for nonsensical
    /// settings.
    pub fn validate(&self) -> Result<(), GaConfigError> {
        if self.population < 2 {
            return Err(GaConfigError::PopulationTooSmall(self.population));
        }
        if !(0.0..=1.0).contains(&self.mutation_rate) {
            return Err(GaConfigError::MutationRateOutOfRange(self.mutation_rate));
        }
        if self.threads == 0 {
            return Err(GaConfigError::ZeroThreads);
        }
        if let SolveMode::Scalar(w) = &self.mode {
            if w.is_empty() {
                return Err(GaConfigError::EmptyScalarWeights);
            }
        }
        Ok(())
    }
}

/// One member of the GA population.
#[derive(Clone, Debug)]
struct Individual {
    chrom: Chromosome,
    objs: Objectives,
    /// Generations survived; children are born with age 0, and "newer
    /// chromosomes have higher priorities" during selection.
    age: u32,
}

/// The multi-objective genetic solver.
#[derive(Clone, Debug)]
pub struct MooGa {
    config: GaConfig,
}

impl MooGa {
    /// Creates a solver with the given configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see [`GaConfig::validate`]).
    pub fn new(config: GaConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid GaConfig: {e}");
        }
        Self { config }
    }

    /// The solver configuration.
    pub fn config(&self) -> &GaConfig {
        &self.config
    }

    /// Runs the GA and returns the Pareto front of the final generation
    /// (Set 1, §3.2.2). In scalar mode the returned front holds the single
    /// best solution by weighted sum.
    pub fn solve<P: MooProblem + ?Sized>(&self, problem: &P) -> ParetoFront {
        self.solve_traced(problem, &[]).final_front
    }

    /// Like [`MooGa::solve`], but additionally snapshots the front after
    /// each generation count listed in `checkpoints` (must be sorted
    /// ascending). Used to reproduce Fig. 4 (GD vs. `G`) in one run.
    pub fn solve_traced<P: MooProblem + ?Sized>(
        &self,
        problem: &P,
        checkpoints: &[usize],
    ) -> GaTrace {
        debug_assert!(checkpoints.windows(2).all(|w| w[0] <= w[1]));
        let w = problem.len();
        let mut trace = GaTrace::default();
        if w == 0 {
            for &c in checkpoints {
                trace.checkpoints.push((c, ParetoFront::new()));
            }
            return trace;
        }

        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        let p = self.config.population;
        // Memo of repair/evaluate results for the serial path; converged
        // populations re-produce the same children over and over, so most
        // late-run lookups hit.
        let mut memo = parallel::EvalMemo::new();
        let mut pop = self.initial_population(problem, &mut rng, &mut memo);
        let mut archive = ParetoFront::new();
        if self.config.archive {
            for ind in &pop {
                archive.insert(Solution { chromosome: ind.chrom.clone(), objectives: ind.objs });
            }
        }
        let mut next_checkpoint = 0usize;

        // Snapshot before any evolution if generation 0 is requested.
        while next_checkpoint < checkpoints.len() && checkpoints[next_checkpoint] == 0 {
            trace.checkpoints.push((0, self.extract_front(problem, &pop)));
            next_checkpoint += 1;
        }

        let mut children_chroms: Vec<Chromosome> = Vec::with_capacity(p + 1);
        // Chromosomes dropped by selection, recycled as crossover children so
        // the steady-state loop allocates nothing.
        let mut recycle: Vec<Chromosome> = Vec::with_capacity(2 * p);
        let mut scratch = SelectScratch::default();
        for gen in 1..=self.config.generations {
            // --- crossover + mutation -> P children ---
            children_chroms.clear();
            while children_chroms.len() < p {
                let pa = rng.random_range(0..pop.len());
                let pb = rng.random_range(0..pop.len());
                let point = rng.random_range(0..=w);
                let mut c1 = recycle.pop().unwrap_or_else(|| Chromosome::zeros(w));
                let mut c2 = recycle.pop().unwrap_or_else(|| Chromosome::zeros(w));
                pop[pa].chrom.crossover_into(&pop[pb].chrom, point, &mut c1, &mut c2);
                self.mutate(&mut c1, &mut rng);
                self.mutate(&mut c2, &mut rng);
                children_chroms.push(c1);
                if children_chroms.len() < p {
                    children_chroms.push(c2);
                } else {
                    recycle.push(c2);
                }
            }

            // --- repair + evaluate (memoized when serial) ---
            let objs = self.repair_and_evaluate(problem, &mut children_chroms, &mut memo);

            // --- selection over parents + children ---
            let mut pool: Vec<Individual> = pop;
            pool.reserve(children_chroms.len());
            for (chrom, objs) in children_chroms.drain(..).zip(objs) {
                if self.config.archive {
                    archive.insert(Solution { chromosome: chrom.clone(), objectives: objs });
                }
                pool.push(Individual { chrom, objs, age: 0 });
            }
            pop = match &self.config.mode {
                SolveMode::Pareto => select_pareto(pool, p, &mut recycle, &mut scratch),
                SolveMode::ParetoCrowding => select_crowding(pool, p),
                SolveMode::Scalar(weights) => {
                    select_scalar(pool, p, weights, problem.normalizers().as_slice(), &mut recycle)
                }
            };
            for ind in &mut pop {
                ind.age += 1;
            }

            while next_checkpoint < checkpoints.len() && checkpoints[next_checkpoint] == gen {
                trace.checkpoints.push((gen, self.extract_front(problem, &pop)));
                next_checkpoint += 1;
            }
        }

        trace.final_front =
            if self.config.archive { archive } else { self.extract_front(problem, &pop) };
        trace
    }

    /// Convenience for scalarized policies: returns the single best
    /// solution by the configured weights.
    ///
    /// # Panics
    /// Panics if called on a Pareto-mode solver.
    pub fn solve_scalar<P: MooProblem + ?Sized>(&self, problem: &P) -> Solution {
        assert!(
            matches!(self.config.mode, SolveMode::Scalar(_)),
            "solve_scalar requires SolveMode::Scalar"
        );
        let front = self.solve(problem);
        front.into_solutions().into_iter().next().unwrap_or_else(|| Solution {
            chromosome: Chromosome::zeros(problem.len().max(1)),
            objectives: problem.evaluate(&Chromosome::zeros(problem.len().max(1))),
        })
    }

    /// Repairs and evaluates a batch: the serial path goes through the memo,
    /// `threads > 1` keeps the unmemoized sharded path (results identical).
    fn repair_and_evaluate<P: MooProblem + ?Sized>(
        &self,
        problem: &P,
        chroms: &mut [Chromosome],
        memo: &mut parallel::EvalMemo,
    ) -> Vec<Objectives> {
        if self.config.threads <= 1 {
            parallel::repair_and_evaluate_memo(problem, chroms, self.config.saturate, memo)
        } else {
            parallel::repair_and_evaluate(
                problem,
                chroms,
                self.config.threads,
                self.config.saturate,
            )
        }
    }

    fn initial_population<P: MooProblem + ?Sized>(
        &self,
        problem: &P,
        rng: &mut SmallRng,
        memo: &mut parallel::EvalMemo,
    ) -> Vec<Individual> {
        let w = problem.len();
        let mut chroms: Vec<Chromosome> = (0..self.config.population)
            .map(|_| {
                let mut c = Chromosome::zeros(w);
                for i in 0..w {
                    if rng.random_bool(0.5) {
                        c.set(i, true);
                    }
                }
                c
            })
            .collect();
        let objs = self.repair_and_evaluate(problem, &mut chroms, memo);
        chroms
            .into_iter()
            .zip(objs)
            .map(|(chrom, objs)| Individual { chrom, objs, age: 0 })
            .collect()
    }

    #[inline]
    fn mutate(&self, c: &mut Chromosome, rng: &mut SmallRng) {
        let pm = self.config.mutation_rate;
        if pm <= 0.0 {
            return;
        }
        if pm >= 1.0 {
            // `random_bool(1.0)` returns true without consuming a draw.
            for i in 0..c.len() {
                c.flip(i);
            }
            return;
        }
        // Same draw stream as `rng.random_bool(pm)` per gene with the
        // threshold compare hoisted out of the loop: `pm * 2^53` is a pure
        // exponent shift (exact), so `(word >> 11) as f64 < threshold`
        // decides identically to `unit_f64(word) < pm`.
        let threshold = pm * (1u64 << 53) as f64;
        for i in 0..c.len() {
            if ((rng.next_u64() >> 11) as f64) < threshold {
                c.flip(i);
            }
        }
    }

    fn extract_front<P: MooProblem + ?Sized>(
        &self,
        problem: &P,
        pop: &[Individual],
    ) -> ParetoFront {
        match &self.config.mode {
            SolveMode::Pareto | SolveMode::ParetoCrowding => ParetoFront::from_pool(
                pop.iter().map(|i| Solution { chromosome: i.chrom.clone(), objectives: i.objs }),
            ),
            SolveMode::Scalar(weights) => {
                let norm = problem.normalizers();
                let best = pop.iter().max_by(|a, b| {
                    scalar_fitness(&a.objs, weights, norm.as_slice())
                        .partial_cmp(&scalar_fitness(&b.objs, weights, norm.as_slice()))
                        .unwrap_or(std::cmp::Ordering::Equal)
                        // Ties: prefer front-of-window selections.
                        .then_with(|| b.chrom.front_preference(&a.chrom))
                });
                let mut front = ParetoFront::new();
                if let Some(b) = best {
                    front.insert(Solution { chromosome: b.chrom.clone(), objectives: b.objs });
                }
                front
            }
        }
    }
}

/// Result of a traced GA run.
#[derive(Debug, Default)]
pub struct GaTrace {
    /// `(generation, front)` snapshots at the requested checkpoints.
    pub checkpoints: Vec<(usize, ParetoFront)>,
    /// Front after the final generation.
    pub final_front: ParetoFront,
}

#[inline]
fn scalar_fitness(objs: &Objectives, weights: &[f64], norm: &[f64]) -> f64 {
    objs.as_slice().iter().zip(norm).zip(weights).map(|((&v, &n), &w)| w * v / n).sum()
}

/// Indices of the non-dominated members of `pool`. Equal objective vectors
/// are both retained (the paper keeps all Set-1 chromosomes).
///
/// Members are first grouped by exactly-equal objective vectors: equal
/// vectors never dominate each other and share every dominance verdict, so
/// the O(n²) comparison loop runs over the *distinct* vectors only. A
/// converged population collapses to a handful of distinct points, which is
/// where the per-generation selection cost used to go.
fn nondominated_indices(pool: &[Individual]) -> Vec<bool> {
    let mut uniq: Vec<&[f64]> = Vec::new();
    let mut group: Vec<u32> = Vec::with_capacity(pool.len());
    for ind in pool {
        let v = ind.objs.as_slice();
        let g = uniq.iter().position(|u| *u == v).unwrap_or_else(|| {
            uniq.push(v);
            uniq.len() - 1
        });
        group.push(g as u32);
    }
    let d = uniq.len();
    let mut nondom = vec![true; d];
    for i in 0..d {
        for j in 0..d {
            if i != j && dominates(uniq[j], uniq[i]) {
                nondom[i] = false;
                break;
            }
        }
    }
    group.into_iter().map(|g| nondom[g as usize]).collect()
}

/// Reusable buffers for [`select_pareto`], hoisted out of the
/// per-generation loop so steady-state selection allocates nothing.
#[derive(Default)]
struct SelectScratch {
    /// Pool index of the first member with each distinct objective vector.
    uniq: Vec<u32>,
    /// Distinct-vector group of each pool member.
    group: Vec<u32>,
    /// Non-domination verdict per distinct vector.
    nondom: Vec<bool>,
    /// Whether a Set-1 representative for the group was already taken.
    rep_taken: Vec<bool>,
    set1: Vec<u32>,
    set2: Vec<u32>,
    picks: Vec<u32>,
    slots: Vec<Option<Individual>>,
}

/// The §3.2.2 selection: Set 1 (Pareto) first, then newest of Set 2; if
/// Set 1 overflows `p`, keep its newest members.
///
/// One refinement over the paper's prose: within Set 1, *distinct objective
/// points* take priority over duplicates. Without this, a burst of
/// identical age-0 children (crossover of converged parents) can evict an
/// older elite that is the only representative of a better objective point,
/// and the front silently degrades — the textbook elitism-loss failure.
/// Duplicated points only fill leftover slots, newest first, exactly as the
/// paper's age rule prescribes.
///
/// Members are grouped by exactly-equal objective vectors: equal vectors
/// never dominate each other and share every dominance verdict, so the
/// O(n²) comparison loop runs over the *distinct* vectors only, and Set-1
/// duplicate detection is a per-group flag instead of a rescan.
fn select_pareto(
    pool: Vec<Individual>,
    p: usize,
    recycle: &mut Vec<Chromosome>,
    s: &mut SelectScratch,
) -> Vec<Individual> {
    // All bookkeeping runs over indices; pool members move exactly once, at
    // materialization.
    s.uniq.clear();
    s.group.clear();
    for (i, ind) in pool.iter().enumerate() {
        let v = ind.objs.as_slice();
        let mut g = None;
        for (gi, &u) in s.uniq.iter().enumerate() {
            if pool[u as usize].objs.as_slice() == v {
                g = Some(gi);
                break;
            }
        }
        let g = g.unwrap_or_else(|| {
            s.uniq.push(i as u32);
            s.uniq.len() - 1
        });
        s.group.push(g as u32);
    }
    let d = s.uniq.len();
    s.nondom.clear();
    s.nondom.resize(d, true);
    for i in 0..d {
        let vi = pool[s.uniq[i] as usize].objs.as_slice();
        for j in 0..d {
            if i != j && dominates(pool[s.uniq[j] as usize].objs.as_slice(), vi) {
                s.nondom[i] = false;
                break;
            }
        }
    }
    s.set1.clear();
    s.set2.clear();
    for (i, &g) in s.group.iter().enumerate() {
        if s.nondom[g as usize] {
            s.set1.push(i as u32);
        } else {
            s.set2.push(i as u32);
        }
    }

    // Partition Set 1 into one representative per distinct objective vector
    // (newest representative wins) and the remaining duplicates; the
    // representatives lead `picks`, duplicates follow.
    s.set1.sort_by_key(|&i| pool[i as usize].age);
    s.rep_taken.clear();
    s.rep_taken.resize(d, false);
    s.picks.clear();
    let mut n_reps = 0;
    for k in 0..s.set1.len() {
        let i = s.set1[k];
        let g = s.group[i as usize] as usize;
        if s.rep_taken[g] {
            s.picks.push(i); // duplicate: appended after the representatives
        } else {
            s.rep_taken[g] = true;
            s.picks.insert(n_reps, i);
            n_reps += 1;
        }
    }
    if n_reps >= p {
        // More distinct Pareto points than slots: keep the newest ones
        // (ages ascending already).
        s.picks.truncate(p);
    } else if s.picks.len() > p {
        // Enough Set-1 duplicates (already age-sorted) to fill the gap.
        s.picks.truncate(p);
    } else if s.picks.len() < p {
        // Fill with the newest of Set 2.
        s.set2.sort_by_key(|&i| pool[i as usize].age);
        let need = p - s.picks.len();
        s.picks.extend(s.set2.iter().take(need));
    }

    s.slots.clear();
    s.slots.extend(pool.into_iter().map(Some));
    let slots = &mut s.slots;
    let survivors: Vec<Individual> = s
        .picks
        .iter()
        .map(|&i| slots[i as usize].take().expect("selection picks each pool member at most once"))
        .collect();
    recycle.extend(slots.drain(..).flatten().map(|ind| ind.chrom));
    survivors
}

/// NSGA-II-style selection: non-dominated sorting into successive fronts;
/// fronts fill the next generation in rank order, and the last,
/// overflowing front is truncated by descending crowding distance.
fn select_crowding(mut pool: Vec<Individual>, p: usize) -> Vec<Individual> {
    let mut next: Vec<Individual> = Vec::with_capacity(p);
    while next.len() < p && !pool.is_empty() {
        let in_front = nondominated_indices(&pool);
        let mut front = Vec::new();
        let mut rest = Vec::new();
        for (ind, is_front) in pool.into_iter().zip(in_front) {
            if is_front {
                front.push(ind);
            } else {
                rest.push(ind);
            }
        }
        if next.len() + front.len() <= p {
            next.extend(front);
        } else {
            let points: Vec<&[f64]> = front.iter().map(|i| i.objs.as_slice()).collect();
            let dist = crate::pareto::crowding_distance(&points);
            let mut order: Vec<usize> = (0..front.len()).collect();
            order.sort_by(|&a, &b| {
                dist[b]
                    .partial_cmp(&dist[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| front[a].age.cmp(&front[b].age))
            });
            let need = p - next.len();
            let keep: std::collections::HashSet<usize> = order.into_iter().take(need).collect();
            for (i, ind) in front.into_iter().enumerate() {
                if keep.contains(&i) {
                    next.push(ind);
                }
            }
        }
        pool = rest;
    }
    next
}

/// Scalarized selection: top `p` by weighted normalized sum, newest first on
/// ties.
fn select_scalar(
    pool: Vec<Individual>,
    p: usize,
    weights: &[f64],
    norm: &[f64],
    recycle: &mut Vec<Chromosome>,
) -> Vec<Individual> {
    // Fitness is computed once per member, not once per comparison.
    let mut keyed: Vec<(f64, Individual)> =
        pool.into_iter().map(|ind| (scalar_fitness(&ind.objs, weights, norm), ind)).collect();
    keyed.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.1.age.cmp(&b.1.age))
    });
    recycle.extend(keyed.drain(p.min(keyed.len())..).map(|(_, ind)| ind.chrom));
    keyed.into_iter().map(|(_, ind)| ind).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{JobDemand, KnapsackMooProblem};
    use crate::resource::ResourceModel;

    fn table1_problem() -> KnapsackMooProblem {
        KnapsackMooProblem::new(
            vec![
                JobDemand::cpu_bb(80, 20_000.0),
                JobDemand::cpu_bb(10, 85_000.0),
                JobDemand::cpu_bb(40, 5_000.0),
                JobDemand::cpu_bb(10, 0.0),
                JobDemand::cpu_bb(20, 0.0),
            ],
            ResourceModel::cpu_bb(100, 100_000.0),
        )
    }

    #[test]
    fn finds_table1_pareto_set() {
        // Paper defaults (G = 500, P = 20, p_m = 0.05%) find both Table-1(b)
        // Pareto points for 49/50 seeds on this toy window; pin a good seed.
        let ga = MooGa::new(GaConfig { generations: 500, seed: 42, ..GaConfig::default() });
        let mut front = ga.solve(&table1_problem());
        front.sort_by_first_objective();
        let points: Vec<Vec<f64>> = front.objective_vectors().map(|v| v.to_vec()).collect();
        // Must contain the two Table-1(b) Pareto points.
        assert!(points.contains(&vec![100.0, 20_000.0]), "missing (100, 20TB): {points:?}");
        assert!(points.contains(&vec![80.0, 90_000.0]), "missing (80, 90TB): {points:?}");
        assert!(front.is_mutually_nondominated());
    }

    #[test]
    fn deterministic_under_seed() {
        let p = table1_problem();
        let cfg = GaConfig { generations: 50, seed: 42, ..GaConfig::default() };
        let a = MooGa::new(cfg.clone()).solve(&p);
        let b = MooGa::new(cfg).solve(&p);
        let va: Vec<Vec<f64>> = a.objective_vectors().map(|v| v.to_vec()).collect();
        let vb: Vec<Vec<f64>> = b.objective_vectors().map(|v| v.to_vec()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn all_front_solutions_feasible() {
        let p = table1_problem();
        let ga = MooGa::new(GaConfig { generations: 100, ..GaConfig::default() });
        let front = ga.solve(&p);
        use crate::problem::MooProblem;
        for s in front.solutions() {
            assert!(p.is_feasible(&s.chromosome));
        }
    }

    #[test]
    fn empty_window_yields_empty_front() {
        let p = KnapsackMooProblem::new(vec![], ResourceModel::cpu_bb(10, 10.0));
        let front = MooGa::new(GaConfig::default()).solve(&p);
        assert!(front.is_empty());
    }

    #[test]
    fn scalar_mode_maximizes_weighted_objective() {
        let p = table1_problem();
        // Pure node weight: the optimum is 100 nodes.
        let cfg = GaConfig {
            generations: 200,
            mode: SolveMode::Scalar(vec![1.0, 0.0]),
            ..GaConfig::default()
        };
        let best = MooGa::new(cfg).solve_scalar(&p);
        assert_eq!(best.objectives[0], 100.0);
        // Pure BB weight: the optimum is 90 TB.
        let cfg = GaConfig {
            generations: 200,
            mode: SolveMode::Scalar(vec![0.0, 1.0]),
            ..GaConfig::default()
        };
        let best = MooGa::new(cfg).solve_scalar(&p);
        assert_eq!(best.objectives[1], 90_000.0);
    }

    #[test]
    fn traced_checkpoints_are_recorded() {
        let p = table1_problem();
        let ga = MooGa::new(GaConfig { generations: 30, ..GaConfig::default() });
        let trace = ga.solve_traced(&p, &[0, 10, 30]);
        let gens: Vec<usize> = trace.checkpoints.iter().map(|(g, _)| *g).collect();
        assert_eq!(gens, vec![0, 10, 30]);
        assert!(!trace.final_front.is_empty());
    }

    #[test]
    fn parallel_matches_serial_feasibility() {
        let p = table1_problem();
        let cfg = GaConfig { generations: 50, threads: 4, ..GaConfig::default() };
        let front = MooGa::new(cfg).solve(&p);
        assert!(!front.is_empty());
        use crate::problem::MooProblem;
        for s in front.solutions() {
            assert!(p.is_feasible(&s.chromosome));
        }
    }

    #[test]
    fn archive_front_is_at_least_as_good() {
        use crate::quality::hypervolume_2d;
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(77);
        for trial in 0..4 {
            let window: Vec<JobDemand> = (0..18)
                .map(|_| {
                    JobDemand::cpu_bb(rng.random_range(8..200), rng.random_range(0.0..30_000.0))
                })
                .collect();
            let p = KnapsackMooProblem::new(window, ResourceModel::cpu_bb(500, 80_000.0));
            let solve = |archive: bool| {
                let cfg = GaConfig {
                    generations: 80,
                    seed: 2_000 + trial,
                    archive,
                    ..GaConfig::default()
                };
                MooGa::new(cfg).solve(&p)
            };
            let plain = solve(false);
            let archived = solve(true);
            assert!(archived.is_mutually_nondominated());
            // The archive contains everything the final generation saw, so
            // its hypervolume can never be smaller.
            let hv_plain = hypervolume_2d(&plain, 0.0, 0.0);
            let hv_arch = hypervolume_2d(&archived, 0.0, 0.0);
            assert!(
                hv_arch >= hv_plain - 1e-9,
                "trial {trial}: archive lost quality {hv_plain} -> {hv_arch}"
            );
        }
    }

    #[test]
    fn saturation_improves_or_matches_front_quality() {
        use crate::quality::hypervolume_2d;
        // On random windows the saturated GA's hypervolume should never be
        // worse than the plain GA's under the same seed/budget.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(31);
        for trial in 0..5 {
            let window: Vec<JobDemand> = (0..20)
                .map(|_| {
                    JobDemand::cpu_bb(rng.random_range(8..200), rng.random_range(0.0..30_000.0))
                })
                .collect();
            let p = KnapsackMooProblem::new(window, ResourceModel::cpu_bb(500, 80_000.0));
            let solve = |saturate: bool| {
                let cfg = GaConfig {
                    generations: 100,
                    seed: 1000 + trial,
                    saturate,
                    ..GaConfig::default()
                };
                hypervolume_2d(&MooGa::new(cfg).solve(&p), 0.0, 0.0)
            };
            let plain = solve(false);
            let polished = solve(true);
            assert!(
                polished >= plain * 0.999,
                "trial {trial}: saturation regressed hypervolume {plain} -> {polished}"
            );
        }
    }

    #[test]
    fn crowding_mode_finds_table1_pareto_set() {
        let cfg = GaConfig {
            generations: 500,
            seed: 42,
            mode: SolveMode::ParetoCrowding,
            ..GaConfig::default()
        };
        let mut front = MooGa::new(cfg).solve(&table1_problem());
        front.sort_by_first_objective();
        let points: Vec<Vec<f64>> = front.objective_vectors().map(|v| v.to_vec()).collect();
        assert!(points.contains(&vec![100.0, 20_000.0]), "{points:?}");
        assert!(points.contains(&vec![80.0, 90_000.0]), "{points:?}");
        assert!(front.is_mutually_nondominated());
    }

    #[test]
    fn crowding_mode_solutions_feasible() {
        let p = table1_problem();
        let cfg =
            GaConfig { generations: 100, mode: SolveMode::ParetoCrowding, ..GaConfig::default() };
        let front = MooGa::new(cfg).solve(&p);
        use crate::problem::MooProblem;
        for s in front.solutions() {
            assert!(p.is_feasible(&s.chromosome));
        }
    }

    #[test]
    fn config_validation() {
        assert_eq!(
            GaConfig { population: 1, ..GaConfig::default() }.validate(),
            Err(GaConfigError::PopulationTooSmall(1))
        );
        assert_eq!(
            GaConfig { mutation_rate: 1.5, ..GaConfig::default() }.validate(),
            Err(GaConfigError::MutationRateOutOfRange(1.5))
        );
        assert_eq!(
            GaConfig { threads: 0, ..GaConfig::default() }.validate(),
            Err(GaConfigError::ZeroThreads)
        );
        assert_eq!(
            GaConfig { mode: SolveMode::Scalar(vec![]), ..GaConfig::default() }.validate(),
            Err(GaConfigError::EmptyScalarWeights)
        );
        assert!(GaConfig::default().validate().is_ok());
        // Typed errors are real std errors with stable messages.
        let boxed: Box<dyn std::error::Error> = Box::new(GaConfigError::ZeroThreads);
        assert_eq!(boxed.to_string(), "threads must be >= 1");
    }
}
