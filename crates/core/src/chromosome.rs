//! Binary chromosomes: the selection vector `x = [x_1, ..., x_w]` of §3.2.1.
//!
//! Each gene corresponds to one slot of the scheduling window; gene `i` is 1
//! iff job `J_i` is selected to execute. Chromosomes are stored as a compact
//! bitset over `u64` words so that crossover, mutation, and evaluation stay
//! cache-friendly for the window sizes the paper explores (up to 50, Table 3)
//! and well beyond.

use std::fmt;

/// Bits per storage word.
const WORD_BITS: usize = 64;

/// A binary selection vector over a scheduling window of `len` jobs.
///
/// The bit at position `i` encodes whether the job at window slot `i` is
/// selected to execute (`true`) or left waiting (`false`).
#[derive(PartialEq, Eq, Hash)]
pub struct Chromosome {
    words: Vec<u64>,
    len: usize,
}

impl Clone for Chromosome {
    fn clone(&self) -> Self {
        Self { words: self.words.clone(), len: self.len }
    }

    /// Reuses the existing word buffer — the GA's memo hit path restores
    /// repaired chromosomes with `clone_from`, so hits allocate nothing.
    fn clone_from(&mut self, source: &Self) {
        self.words.clone_from(&source.words);
        self.len = source.len;
    }
}

impl Chromosome {
    /// Creates an all-zero chromosome (no job selected) of the given length.
    pub fn zeros(len: usize) -> Self {
        let n_words = len.div_ceil(WORD_BITS).max(1);
        Self { words: vec![0; n_words], len }
    }

    /// Builds a chromosome from a boolean slice.
    pub fn from_bits(bits: &[bool]) -> Self {
        let mut c = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                c.set(i, true);
            }
        }
        c
    }

    /// Builds a chromosome of length `len` from the low bits of `mask`.
    ///
    /// Convenient for exhaustive enumeration of windows with `len <= 64`.
    ///
    /// # Panics
    /// Panics if `len > 64`.
    pub fn from_mask(mask: u64, len: usize) -> Self {
        assert!(len <= WORD_BITS, "from_mask supports at most 64 genes");
        let mut c = Self::zeros(len);
        c.words[0] = if len == WORD_BITS { mask } else { mask & ((1u64 << len) - 1) };
        c
    }

    /// Number of genes (window size `w`).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the window is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns gene `i`.
    ///
    /// # Panics
    /// Panics (in debug builds) if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets gene `i` to `value`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        debug_assert!(i < self.len);
        let w = i / WORD_BITS;
        let b = i % WORD_BITS;
        if value {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Flips gene `i` (the mutation primitive).
    #[inline]
    pub fn flip(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS] ^= 1 << (i % WORD_BITS);
    }

    /// Number of selected jobs.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterator over the indices of selected jobs, in ascending order.
    pub fn selected(&self) -> impl Iterator<Item = usize> + '_ {
        self.words
            .iter()
            .enumerate()
            .flat_map(move |(wi, &word)| BitIter { word, base: wi * WORD_BITS })
    }

    /// Iterator over all genes as booleans.
    pub fn bits(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Single-point crossover: swaps all genes at positions `>= point`
    /// between `self` and `other`, producing two children.
    ///
    /// This is the crossover of §3.2.2 / Fig. 3: "generates two children by
    /// randomly selecting two parents ... and swapping genes of parents at a
    /// random position".
    ///
    /// # Panics
    /// Panics if the parents have different lengths or `point > len`.
    pub fn crossover(&self, other: &Self, point: usize) -> (Self, Self) {
        let mut a = self.clone();
        let mut b = other.clone();
        self.crossover_into(other, point, &mut a, &mut b);
        (a, b)
    }

    /// [`Chromosome::crossover`] writing into caller-provided children —
    /// the GA's allocation-free hot path, which recycles the chromosomes
    /// selection drops each generation instead of heap-allocating new ones.
    ///
    /// # Panics
    /// Panics if the parents have different lengths or `point > len`.
    pub fn crossover_into(&self, other: &Self, point: usize, a: &mut Self, b: &mut Self) {
        assert_eq!(self.len, other.len, "crossover requires equal-length parents");
        assert!(point <= self.len);
        a.clone_from(self);
        b.clone_from(other);
        // Whole-word swap: the first affected word keeps its low `point % 64`
        // bits and takes the rest from the other parent; later words swap
        // entirely. Bits above `len` are zero in both parents, so they stay
        // zero in both children.
        let first = point / WORD_BITS;
        for w in first..self.words.len() {
            let keep = if w == first { (1u64 << (point % WORD_BITS)) - 1 } else { 0 };
            a.words[w] = (self.words[w] & keep) | (other.words[w] & !keep);
            b.words[w] = (other.words[w] & keep) | (self.words[w] & !keep);
        }
    }

    /// Lexicographic "front of window first" comparison used by the decision
    /// maker's tie-break (§3.2.4): among equal-objective solutions prefer the
    /// one whose selected jobs sit closest to the front of the window.
    ///
    /// Returns `std::cmp::Ordering::Less` when `self` is preferred.
    pub fn front_preference(&self, other: &Self) -> std::cmp::Ordering {
        debug_assert_eq!(self.len, other.len);
        for i in 0..self.len {
            match (self.get(i), other.get(i)) {
                (true, false) => return std::cmp::Ordering::Less,
                (false, true) => return std::cmp::Ordering::Greater,
                _ => {}
            }
        }
        std::cmp::Ordering::Equal
    }

    /// Clears every gene.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// A cheap content hash (FNV-1a over the storage words), used to derive
    /// a pseudo-random yet deterministic starting point for constraint
    /// repair without threading an RNG through parallel code.
    pub fn content_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &w in &self.words {
            h ^= w;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^ self.len as u64
    }
}

struct BitIter {
    word: u64,
    base: usize,
}

impl Iterator for BitIter {
    type Item = usize;
    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(self.base + tz)
    }
}

impl fmt::Debug for Chromosome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Chromosome[")?;
        for b in self.bits() {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_flip() {
        let mut c = Chromosome::zeros(70);
        assert_eq!(c.len(), 70);
        assert_eq!(c.count_ones(), 0);
        c.set(0, true);
        c.set(63, true);
        c.set(69, true);
        assert!(c.get(0) && c.get(63) && c.get(69));
        assert!(!c.get(1));
        assert_eq!(c.count_ones(), 3);
        c.flip(63);
        assert!(!c.get(63));
        assert_eq!(c.count_ones(), 2);
    }

    #[test]
    fn selected_indices() {
        let c = Chromosome::from_bits(&[true, false, true, false, true]);
        let sel: Vec<_> = c.selected().collect();
        assert_eq!(sel, vec![0, 2, 4]);
    }

    #[test]
    fn selected_crosses_word_boundary() {
        let mut c = Chromosome::zeros(130);
        for i in [0, 63, 64, 127, 129] {
            c.set(i, true);
        }
        let sel: Vec<_> = c.selected().collect();
        assert_eq!(sel, vec![0, 63, 64, 127, 129]);
    }

    #[test]
    fn from_mask_matches_bits() {
        let c = Chromosome::from_mask(0b10110, 5);
        let sel: Vec<_> = c.selected().collect();
        assert_eq!(sel, vec![1, 2, 4]);
        // Bits above len are masked off.
        let c = Chromosome::from_mask(u64::MAX, 3);
        assert_eq!(c.count_ones(), 3);
    }

    #[test]
    fn crossover_swaps_suffix() {
        let a = Chromosome::from_bits(&[true, true, true, true]);
        let b = Chromosome::from_bits(&[false, false, false, false]);
        let (c, d) = a.crossover(&b, 2);
        assert_eq!(c.bits().collect::<Vec<_>>(), vec![true, true, false, false]);
        assert_eq!(d.bits().collect::<Vec<_>>(), vec![false, false, true, true]);
    }

    #[test]
    fn crossover_at_ends_is_identity_or_swap() {
        let a = Chromosome::from_bits(&[true, false, true]);
        let b = Chromosome::from_bits(&[false, true, false]);
        let (c, d) = a.crossover(&b, 3);
        assert_eq!(c, a);
        assert_eq!(d, b);
        let (c, d) = a.crossover(&b, 0);
        assert_eq!(c, b);
        assert_eq!(d, a);
    }

    #[test]
    fn crossover_across_word_boundaries() {
        let mut a = Chromosome::zeros(130);
        let mut b = Chromosome::zeros(130);
        for i in 0..130 {
            if i % 3 == 0 {
                a.set(i, true);
            }
            if i % 2 == 0 {
                b.set(i, true);
            }
        }
        for point in [0usize, 1, 63, 64, 65, 127, 128, 130] {
            let (c, d) = a.crossover(&b, point);
            for i in 0..130 {
                let (want_c, want_d) =
                    if i < point { (a.get(i), b.get(i)) } else { (b.get(i), a.get(i)) };
                assert_eq!(c.get(i), want_c, "child c gene {i} at point {point}");
                assert_eq!(d.get(i), want_d, "child d gene {i} at point {point}");
            }
        }
    }

    #[test]
    fn clone_from_copies_content_at_any_length() {
        let src = Chromosome::from_bits(&[true, false, true, true]);
        let mut dst = Chromosome::zeros(4);
        dst.clone_from(&src);
        assert_eq!(dst, src);
        // Growing and shrinking through clone_from both land on equality.
        let long = Chromosome::from_bits(&[true; 100]);
        dst.clone_from(&long);
        assert_eq!(dst, long);
        dst.clone_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn front_preference_prefers_early_jobs() {
        let front = Chromosome::from_bits(&[true, false, false]);
        let back = Chromosome::from_bits(&[false, true, true]);
        assert_eq!(front.front_preference(&back), std::cmp::Ordering::Less);
        assert_eq!(back.front_preference(&front), std::cmp::Ordering::Greater);
        assert_eq!(front.front_preference(&front.clone()), std::cmp::Ordering::Equal);
    }

    #[test]
    fn clear_resets() {
        let mut c = Chromosome::from_bits(&[true; 10]);
        c.clear();
        assert_eq!(c.count_ones(), 0);
    }
}
