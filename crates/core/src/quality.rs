//! Front-quality metrics for the MOO solver (§3.2.3).
//!
//! The paper uses **generational distance** (GD) to choose `G` and `P`:
//!
//! > `GD(S) = avg_{u in S}( min_{v in S*}( dist(u, v) ) )`
//!
//! where `S` is the solver's front and `S*` the true Pareto set from the
//! exhaustive solver. We also provide inverted GD (coverage of the true
//! front) and 2-D hypervolume, which the ablation benches use.

use crate::pareto::ParetoFront;

/// Euclidean distance between two objective vectors, optionally scaled
/// per-dimension by `scale` (pass `None` for raw distances as in the paper).
fn dist(a: &[f64], b: &[f64], scale: Option<&[f64]>) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .enumerate()
        .map(|(k, (&x, &y))| {
            let d = match scale {
                Some(s) => (x - y) / s[k].max(f64::MIN_POSITIVE),
                None => x - y,
            };
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

fn avg_min_dist(from: &ParetoFront, to: &ParetoFront, scale: Option<&[f64]>) -> f64 {
    if from.is_empty() {
        return f64::INFINITY;
    }
    if to.is_empty() {
        return f64::INFINITY;
    }
    let mut total = 0.0;
    for u in from.objective_vectors() {
        let min = to.objective_vectors().map(|v| dist(u, v, scale)).fold(f64::INFINITY, f64::min);
        total += min;
    }
    total / from.len() as f64
}

/// Generational distance of `approx` to the `truth` front: average distance
/// from each approximate point to its nearest true Pareto point. Smaller is
/// better; 0 means every approximate point lies on the true front.
///
/// Returns `f64::INFINITY` when either front is empty.
pub fn generational_distance(approx: &ParetoFront, truth: &ParetoFront) -> f64 {
    avg_min_dist(approx, truth, None)
}

/// GD with each dimension divided by `scale` first, so resources measured in
/// different units (nodes vs. GB) contribute comparably.
pub fn generational_distance_scaled(
    approx: &ParetoFront,
    truth: &ParetoFront,
    scale: &[f64],
) -> f64 {
    avg_min_dist(approx, truth, Some(scale))
}

/// Inverted generational distance: average distance from each *true* Pareto
/// point to the nearest approximate point; penalizes missing regions of the
/// front, which plain GD does not.
pub fn inverted_generational_distance(approx: &ParetoFront, truth: &ParetoFront) -> f64 {
    avg_min_dist(truth, approx, None)
}

/// 2-D hypervolume dominated by `front` with respect to a reference point
/// `(rx, ry)` (typically the origin for maximization problems). Larger is
/// better.
///
/// # Panics
/// Panics if the front's objective vectors are not 2-dimensional.
pub fn hypervolume_2d(front: &ParetoFront, rx: f64, ry: f64) -> f64 {
    let mut pts: Vec<(f64, f64)> = front
        .objective_vectors()
        .map(|v| {
            assert_eq!(v.len(), 2, "hypervolume_2d requires 2 objectives");
            (v[0], v[1])
        })
        .filter(|&(x, y)| x > rx && y > ry)
        .collect();
    // Sweep in descending x; each point contributes a rectangle strip above
    // the best y seen so far.
    pts.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut hv = 0.0;
    let mut prev_x = f64::INFINITY;
    let mut best_y = ry;
    for (x, y) in pts {
        if y > best_y {
            if prev_x.is_finite() {
                // Strip between this point's x and the previous x at height
                // best_y is already counted; add the taller strip from x.
            }
            hv += (x - rx) * (y - best_y);
            best_y = y;
        }
        prev_x = x;
    }
    hv
}

/// Additive epsilon indicator `I_eps+(A, B)`: the smallest `eps` such that
/// every point of `B` is weakly dominated by some point of `A` shifted down
/// by `eps` in every objective. 0 when `A` covers `B`; larger means `A`
/// falls short somewhere. A standard complement to GD that, unlike GD,
/// cannot be gamed by clustering points in one region.
pub fn epsilon_indicator(a: &ParetoFront, b: &ParetoFront) -> f64 {
    if b.is_empty() {
        return 0.0;
    }
    if a.is_empty() {
        return f64::INFINITY;
    }
    let mut worst = f64::NEG_INFINITY;
    for bv in b.objective_vectors() {
        // eps needed for the best a-point to cover bv.
        let mut best = f64::INFINITY;
        for av in a.objective_vectors() {
            let mut need = f64::NEG_INFINITY;
            for (&x, &y) in av.iter().zip(bv) {
                need = need.max(y - x);
            }
            best = best.min(need);
        }
        worst = worst.max(best);
    }
    worst.max(0.0)
}

/// Hypervolume dominated by `front` with respect to the origin-like
/// reference point `reference` (component-wise lower bounds), for any
/// number of objectives, via recursive objective slicing (HSO). Intended
/// for the small fronts (tens of points) the GA produces; cost grows
/// quickly with dimensions and points.
///
/// # Panics
/// Panics if dimensions are inconsistent.
pub fn hypervolume(front: &ParetoFront, reference: &[f64]) -> f64 {
    let points: Vec<Vec<f64>> = front
        .objective_vectors()
        .map(|v| {
            assert_eq!(v.len(), reference.len(), "reference dimension mismatch");
            v.to_vec()
        })
        .filter(|v| v.iter().zip(reference).all(|(x, r)| x > r))
        .collect();
    hso(&points, reference)
}

/// Recursive "hypervolume by slicing objectives".
fn hso(points: &[Vec<f64>], reference: &[f64]) -> f64 {
    let dim = reference.len();
    if points.is_empty() {
        return 0.0;
    }
    if dim == 1 {
        return points.iter().map(|p| p[0] - reference[0]).fold(0.0f64, f64::max);
    }
    // Slice along the last objective: sort descending by it.
    let mut sorted: Vec<&Vec<f64>> = points.iter().collect();
    sorted.sort_by(|a, b| b[dim - 1].partial_cmp(&a[dim - 1]).unwrap_or(std::cmp::Ordering::Equal));
    let mut volume = 0.0;
    let mut active: Vec<Vec<f64>> = Vec::new();
    for (i, p) in sorted.iter().enumerate() {
        active.push(p[..dim - 1].to_vec());
        let upper = p[dim - 1];
        let lower = sorted.get(i + 1).map(|q| q[dim - 1]).unwrap_or(reference[dim - 1]);
        let thickness = upper - lower;
        if thickness > 0.0 {
            volume += thickness * hso(&active, &reference[..dim - 1]);
        }
    }
    volume
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chromosome::Chromosome;
    use crate::pareto::Solution;
    use crate::Objectives;

    fn front(points: &[&[f64]]) -> ParetoFront {
        let mut f = ParetoFront::new();
        for (i, p) in points.iter().enumerate() {
            let mut c = Chromosome::zeros(points.len());
            c.set(i, true);
            f.insert(Solution { chromosome: c, objectives: Objectives::from_slice(p) });
        }
        f
    }

    #[test]
    fn gd_zero_when_identical() {
        let t = front(&[&[100.0, 20.0], &[80.0, 90.0]]);
        let a = front(&[&[100.0, 20.0], &[80.0, 90.0]]);
        assert_eq!(generational_distance(&a, &t), 0.0);
        assert_eq!(inverted_generational_distance(&a, &t), 0.0);
    }

    #[test]
    fn gd_measures_offset() {
        let t = front(&[&[10.0, 0.0], &[0.0, 10.0]]);
        let a = front(&[&[7.0, 0.0]]); // 3 away from (10, 0)
        assert!((generational_distance(&a, &t) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn igd_penalizes_missing_regions() {
        let t = front(&[&[10.0, 0.0], &[0.0, 10.0]]);
        let a = front(&[&[10.0, 0.0]]); // covers one end only
        assert_eq!(generational_distance(&a, &t), 0.0);
        assert!(inverted_generational_distance(&a, &t) > 0.0);
    }

    #[test]
    fn scaled_gd_normalizes_units() {
        let t = front(&[&[100.0, 100_000.0]]);
        let a = front(&[&[90.0, 90_000.0]]);
        let gd = generational_distance_scaled(&a, &t, &[100.0, 100_000.0]);
        // Both dimensions off by 10% -> sqrt(0.01 + 0.01).
        assert!((gd - (0.02f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_fronts_are_infinite() {
        let t = front(&[&[1.0, 1.0]]);
        let e = ParetoFront::new();
        assert!(generational_distance(&e, &t).is_infinite());
        assert!(generational_distance(&t, &e).is_infinite());
    }

    #[test]
    fn hypervolume_rectangle() {
        let f = front(&[&[4.0, 5.0]]);
        assert_eq!(hypervolume_2d(&f, 0.0, 0.0), 20.0);
    }

    #[test]
    fn hypervolume_staircase() {
        // (4,2) and (2,4) from origin: 4*2 + 2*(4-2) = 12.
        let f = front(&[&[4.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(hypervolume_2d(&f, 0.0, 0.0), 12.0);
    }

    #[test]
    fn hypervolume_ignores_points_below_reference() {
        let f = front(&[&[4.0, 2.0]]);
        assert_eq!(hypervolume_2d(&f, 5.0, 5.0), 0.0);
    }

    #[test]
    fn nd_hypervolume_matches_2d_sweep() {
        let f = front(&[&[4.0, 2.0], &[2.0, 4.0], &[3.0, 3.0]]);
        let hv2 = hypervolume_2d(&f, 0.0, 0.0);
        let hvn = hypervolume(&f, &[0.0, 0.0]);
        assert!((hv2 - hvn).abs() < 1e-12, "{hv2} vs {hvn}");
    }

    #[test]
    fn nd_hypervolume_box_3d() {
        // Single point (2,3,4) from origin: volume 24.
        let mut f = ParetoFront::new();
        let mut c = Chromosome::zeros(1);
        c.set(0, true);
        f.insert(Solution { chromosome: c, objectives: Objectives::from_slice(&[2.0, 3.0, 4.0]) });
        assert!((hypervolume(&f, &[0.0, 0.0, 0.0]) - 24.0).abs() < 1e-12);
    }

    #[test]
    fn nd_hypervolume_union_3d() {
        // Two overlapping boxes: (2,2,2) and (1,1,3).
        // Union = 8 + volume of (1,1,3) outside (2,2,2) = 8 + 1*1*1 = 9.
        let f = front(&[&[2.0, 2.0, 2.0], &[1.0, 1.0, 3.0]]);
        assert!((hypervolume(&f, &[0.0, 0.0, 0.0]) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn epsilon_indicator_basics() {
        let truth = front(&[&[10.0, 0.0], &[0.0, 10.0]]);
        // Perfect coverage: eps = 0.
        assert_eq!(epsilon_indicator(&truth, &truth), 0.0);
        // Approximation uniformly 2 worse: eps = 2.
        let approx = front(&[&[8.0, 0.0], &[0.0, 8.0]]);
        assert!((epsilon_indicator(&approx, &truth) - 2.0).abs() < 1e-12);
        // The truth covers the approximation for free.
        assert_eq!(epsilon_indicator(&truth, &approx), 0.0);
        // Missing one end of the front costs the full gap.
        let partial = front(&[&[10.0, 0.0]]);
        assert!((epsilon_indicator(&partial, &truth) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn epsilon_indicator_empty_fronts() {
        let t = front(&[&[1.0, 1.0]]);
        let e = ParetoFront::new();
        assert_eq!(epsilon_indicator(&t, &e), 0.0);
        assert!(epsilon_indicator(&e, &t).is_infinite());
    }
}
