//! The decision maker (§3.2.4 and §5).
//!
//! The GA returns a Pareto *set*; a production scheduler must start exactly
//! one job combination. The paper's rule:
//!
//! 1. Start from the solution with maximum node utilization; among ties,
//!    prefer the one selecting jobs at the front of the window (preserving
//!    the base scheduler's order).
//! 2. Replace it with another Pareto solution if that solution's summed
//!    improvement on the non-node objectives exceeds `factor ×` the loss of
//!    node utilization — `factor = 2` for the CPU+BB problem, `factor = 4`
//!    for the §5 four-objective problem. Among several qualifying
//!    solutions, pick the one with the maximum improvement.
//!
//! All comparisons happen on *normalized* utilizations (each objective
//! divided by its [`crate::problem::MooProblem::normalizers`] entry) so that
//! nodes, GB of burst buffer, and GB of SSD are commensurable.

use crate::pareto::{ParetoFront, Solution};
use crate::MAX_OBJECTIVES;

/// Parameters of the trade-off rule, generalized to N resources.
///
/// The improvement test weighs each non-node objective's normalized gain by
/// a per-resource weight before summing: `Σ w_k·Δf_k > factor × Δf_1`. The
/// paper's two rules are the unit-weight presets [`DecisionRule::cpu_bb`]
/// (`factor = 2`) and [`DecisionRule::multi_resource`] (`factor = 4`);
/// non-unit weights let a site value, say, SSD waste reduction differently
/// from burst-buffer gains without touching the solver.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DecisionRule {
    /// How much summed non-node improvement is required per unit of node
    /// utilization given up.
    tradeoff_factor: f64,
    /// Per-objective gain weights (index 0 — node utilization — is unused).
    gain_weights: [f64; MAX_OBJECTIVES],
}

impl DecisionRule {
    /// A rule with the given trade-off factor and unit gain weights.
    pub fn with_factor(tradeoff_factor: f64) -> Self {
        Self { tradeoff_factor, gain_weights: [1.0; MAX_OBJECTIVES] }
    }

    /// Overrides the per-objective gain weights (builder style). `weights`
    /// is indexed by objective; entry 0 is ignored (node loss is scaled by
    /// the factor, not a weight). Missing trailing entries stay 1.
    ///
    /// # Panics
    /// Panics if more than [`MAX_OBJECTIVES`] weights are given.
    pub fn with_gain_weights(mut self, weights: &[f64]) -> Self {
        assert!(weights.len() <= MAX_OBJECTIVES, "at most {MAX_OBJECTIVES} weights");
        self.gain_weights[..weights.len()].copy_from_slice(weights);
        self
    }

    /// §3.2.4 rule for the CPU + burst-buffer problem: "the improvement on
    /// the burst buffer utilization is more than 2x of the loss of the node
    /// utilization".
    pub fn cpu_bb() -> Self {
        Self::with_factor(2.0)
    }

    /// §5 rule for the four-objective problem: "the sum of the improvement
    /// in burst buffer utilization, local SSD utilization, and percentage of
    /// reduction in wasted local SSD ... is more than 4x of the loss of the
    /// node utilization".
    pub fn multi_resource() -> Self {
        Self::with_factor(4.0)
    }

    /// The configured trade-off factor.
    pub fn tradeoff_factor(&self) -> f64 {
        self.tradeoff_factor
    }

    /// The gain weight applied to objective `k`.
    pub fn gain_weight(&self, k: usize) -> f64 {
        self.gain_weights[k]
    }
}

impl Default for DecisionRule {
    fn default() -> Self {
        Self::cpu_bb()
    }
}

/// Selects the preferred solution from a Pareto front.
///
/// `normalizers` must match the front's objective dimensionality; the first
/// objective is node utilization, the remaining objectives are summed for
/// the improvement test. Returns `None` only for an empty front.
pub fn choose_preferred<'a>(
    front: &'a ParetoFront,
    normalizers: &[f64],
    rule: DecisionRule,
) -> Option<&'a Solution> {
    let solutions = front.solutions();
    let first = solutions.first()?;
    let dim = first.objectives.len();
    assert_eq!(normalizers.len(), dim, "normalizer dimension must match objective dimension");

    // Step 1: max node utilization, front-of-window tie-break.
    let mut preferred = first;
    for s in &solutions[1..] {
        let cmp = s.objectives[0]
            .partial_cmp(&preferred.objectives[0])
            .unwrap_or(std::cmp::Ordering::Equal);
        match cmp {
            std::cmp::Ordering::Greater => preferred = s,
            std::cmp::Ordering::Equal => {
                if s.chromosome.front_preference(&preferred.chromosome) == std::cmp::Ordering::Less
                {
                    preferred = s;
                }
            }
            std::cmp::Ordering::Less => {}
        }
    }

    // Step 2: trade node utilization for larger gains elsewhere.
    let norm = |v: f64, k: usize| v / normalizers[k].max(f64::MIN_POSITIVE);
    let mut best_improvement = 0.0f64;
    let mut replacement: Option<&Solution> = None;
    for s in solutions {
        if std::ptr::eq(s, preferred) {
            continue;
        }
        let loss = norm(preferred.objectives[0], 0) - norm(s.objectives[0], 0);
        if loss < 0.0 {
            continue; // cannot happen: preferred has max f1; defensive.
        }
        let improvement: f64 = (1..dim)
            .map(|k| {
                rule.gain_weights[k] * (norm(s.objectives[k], k) - norm(preferred.objectives[k], k))
            })
            .sum();
        if improvement > rule.tradeoff_factor * loss && improvement > best_improvement {
            best_improvement = improvement;
            replacement = Some(s);
        }
    }

    Some(replacement.unwrap_or(preferred))
}

/// Alternative decision maker (beyond the paper): the **knee point** of
/// the normalized front — the solution farthest (perpendicular) from the
/// line between the per-objective extreme points. Knees are where giving
/// up a little of one objective buys a lot of the other; site managers who
/// do not want to tune a trade-off factor can use this parameter-free
/// rule. Two-objective fronts only.
///
/// Returns `None` for an empty front. For fronts of one or two points the
/// max-node solution is returned (no interior to have a knee in).
pub fn choose_knee<'a>(front: &'a ParetoFront, normalizers: &[f64]) -> Option<&'a Solution> {
    let solutions = front.solutions();
    let first = solutions.first()?;
    assert_eq!(first.objectives.len(), 2, "choose_knee supports 2 objectives");
    assert_eq!(normalizers.len(), 2);
    let norm = |s: &Solution| {
        [
            s.objectives[0] / normalizers[0].max(f64::MIN_POSITIVE),
            s.objectives[1] / normalizers[1].max(f64::MIN_POSITIVE),
        ]
    };
    // Extremes: max f1 and max f2.
    let hi_node = solutions.iter().max_by(|a, b| {
        a.objectives[0].partial_cmp(&b.objectives[0]).unwrap_or(std::cmp::Ordering::Equal)
    })?;
    let hi_bb = solutions.iter().max_by(|a, b| {
        a.objectives[1].partial_cmp(&b.objectives[1]).unwrap_or(std::cmp::Ordering::Equal)
    })?;
    let (a, b) = (norm(hi_node), norm(hi_bb));
    let line = [b[0] - a[0], b[1] - a[1]];
    let len = (line[0] * line[0] + line[1] * line[1]).sqrt();
    if len < 1e-12 {
        return Some(hi_node);
    }
    solutions
        .iter()
        .max_by(|x, y| {
            let dist = |s: &Solution| {
                let p = norm(s);
                // Perpendicular distance from p to the line through a, b.
                ((p[0] - a[0]) * line[1] - (p[1] - a[1]) * line[0]).abs() / len
            };
            dist(x)
                .partial_cmp(&dist(y))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| y.chromosome.front_preference(&x.chromosome))
        })
        .or(Some(hi_node))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chromosome::Chromosome;
    use crate::pareto::Solution;
    use crate::Objectives;

    fn sol(bits: &[bool], objs: &[f64]) -> Solution {
        Solution {
            chromosome: Chromosome::from_bits(bits),
            objectives: Objectives::from_slice(objs),
        }
    }

    /// Table 1 scenario: (100 nodes, 20 TB) vs (80 nodes, 90 TB) on a
    /// 100-node / 100-TB system. Loss = 0.2 of nodes; gain = 0.7 of BB;
    /// 0.7 > 2 x 0.2, so the decision maker must pick Solution 3.
    #[test]
    fn table1_picks_high_bb_tradeoff() {
        let mut front = ParetoFront::new();
        front.insert(sol(&[true, false, false, false, true], &[100.0, 20_000.0]));
        front.insert(sol(&[false, true, true, true, true], &[80.0, 90_000.0]));
        let chosen = choose_preferred(&front, &[100.0, 100_000.0], DecisionRule::cpu_bb()).unwrap();
        assert_eq!(chosen.objectives.as_slice(), &[80.0, 90_000.0]);
    }

    #[test]
    fn keeps_max_node_solution_when_gain_too_small() {
        let mut front = ParetoFront::new();
        front.insert(sol(&[true, false], &[100.0, 20_000.0]));
        // Gain 0.3 of BB for 0.2 of nodes: 0.3 < 2 x 0.2 -> keep preferred.
        front.insert(sol(&[false, true], &[80.0, 50_000.0]));
        let chosen = choose_preferred(&front, &[100.0, 100_000.0], DecisionRule::cpu_bb()).unwrap();
        assert_eq!(chosen.objectives.as_slice(), &[100.0, 20_000.0]);
    }

    #[test]
    fn picks_max_improvement_among_qualifiers() {
        let mut front = ParetoFront::new();
        front.insert(sol(&[true, false, false], &[100.0, 0.0]));
        front.insert(sol(&[false, true, false], &[90.0, 60_000.0]));
        front.insert(sol(&[false, false, true], &[80.0, 95_000.0]));
        let chosen = choose_preferred(&front, &[100.0, 100_000.0], DecisionRule::cpu_bb()).unwrap();
        // Improvements: 0.6 vs 0.95; both qualify; max wins.
        assert_eq!(chosen.objectives.as_slice(), &[80.0, 95_000.0]);
    }

    #[test]
    fn tie_break_prefers_front_of_window() {
        let mut front = ParetoFront::new();
        // Insert the rear-heavy solution first: same objectives would dedup,
        // so give them distinct BB values with equal nodes.
        front.insert(sol(&[false, false, true], &[50.0, 10.0]));
        front.insert(sol(&[true, false, false], &[50.0, 9.0]));
        let chosen = choose_preferred(&front, &[100.0, 100.0], DecisionRule::cpu_bb()).unwrap();
        // Max node util ties at 50; front-of-window selection preferred.
        // Then the rule may still replace it: gain (10-9)/100 = 0.01 > 2*0 loss!
        // Loss is zero and improvement positive, so the higher-BB solution
        // wins the trade-off step — which is correct: same nodes, more BB.
        assert_eq!(chosen.objectives.as_slice(), &[50.0, 10.0]);
    }

    #[test]
    fn four_objective_rule_sums_non_node_axes() {
        let mut front = ParetoFront::new();
        // preferred: max nodes.
        front.insert(sol(&[true, false], &[100.0, 0.0, 0.0, -50.0]));
        // alternative: loses 0.1 nodes, gains 0.2 bb + 0.15 ssd + 0.1 waste
        // = 0.45 > 4 x 0.1 = 0.4 -> replace.
        front.insert(sol(&[false, true], &[90.0, 20.0, 15.0, -40.0]));
        let norm = [100.0, 100.0, 100.0, 100.0];
        let chosen = choose_preferred(&front, &norm, DecisionRule::multi_resource()).unwrap();
        assert_eq!(chosen.objectives[0], 90.0);
    }

    #[test]
    fn four_objective_rule_rejects_insufficient_sum() {
        let mut front = ParetoFront::new();
        front.insert(sol(&[true, false], &[100.0, 0.0, 0.0, -50.0]));
        // Sum of gains 0.35 < 4 x 0.1.
        front.insert(sol(&[false, true], &[90.0, 10.0, 15.0, -40.0]));
        let norm = [100.0, 100.0, 100.0, 100.0];
        let chosen = choose_preferred(&front, &norm, DecisionRule::multi_resource()).unwrap();
        assert_eq!(chosen.objectives[0], 100.0);
    }

    #[test]
    fn gain_weights_scale_the_improvement_test() {
        let mut front = ParetoFront::new();
        front.insert(sol(&[true, false, false, false, true], &[100.0, 20_000.0]));
        front.insert(sol(&[false, true, true, true, true], &[80.0, 90_000.0]));
        let norm = [100.0, 100_000.0];
        // Unit weights: gain 0.7 > 2 x 0.2 -> replace (Table 1 behaviour).
        let rule = DecisionRule::cpu_bb();
        assert_eq!(rule.tradeoff_factor(), 2.0);
        assert_eq!(rule.gain_weight(1), 1.0);
        let chosen = choose_preferred(&front, &norm, rule).unwrap();
        assert_eq!(chosen.objectives[0], 80.0);
        // Halving the BB gain weight: 0.35 < 2 x 0.2 -> keep max nodes.
        let rule = DecisionRule::cpu_bb().with_gain_weights(&[1.0, 0.5]);
        let chosen = choose_preferred(&front, &norm, rule).unwrap();
        assert_eq!(chosen.objectives[0], 100.0);
    }

    #[test]
    fn empty_front_returns_none() {
        let front = ParetoFront::new();
        assert!(choose_preferred(&front, &[1.0, 1.0], DecisionRule::cpu_bb()).is_none());
        assert!(choose_knee(&front, &[1.0, 1.0]).is_none());
    }

    #[test]
    fn knee_finds_the_bulge() {
        let mut front = ParetoFront::new();
        // A convex front: (100, 0), (90, 80), (0, 100). The middle point
        // bulges far beyond the extreme-to-extreme line.
        front.insert(sol(&[true, false, false], &[100.0, 0.0]));
        front.insert(sol(&[false, true, false], &[90.0, 80.0]));
        front.insert(sol(&[false, false, true], &[0.0, 100.0]));
        let knee = choose_knee(&front, &[100.0, 100.0]).unwrap();
        assert_eq!(knee.objectives.as_slice(), &[90.0, 80.0]);
    }

    #[test]
    fn knee_degenerate_fronts() {
        let mut front = ParetoFront::new();
        front.insert(sol(&[true], &[10.0, 5.0]));
        let knee = choose_knee(&front, &[10.0, 10.0]).unwrap();
        assert_eq!(knee.objectives.as_slice(), &[10.0, 5.0]);
    }

    #[test]
    fn singleton_front_returns_it() {
        let mut front = ParetoFront::new();
        front.insert(sol(&[true], &[10.0, 10.0]));
        let chosen = choose_preferred(&front, &[10.0, 10.0], DecisionRule::cpu_bb()).unwrap();
        assert_eq!(chosen.objectives.as_slice(), &[10.0, 10.0]);
    }
}
