//! Exhaustive MOO solver: the ground truth the GA approximates.
//!
//! §3.2.2: "To find all solutions, one has to exhaustively examine `2^w`
//! possible solutions and compare them to determine a Pareto set." This is
//! exactly what this module does. Its exponential running time is the red
//! curve of Fig. 2; its output is the "true Pareto set `S*`" used by the
//! generational-distance metric of §3.2.3 / Fig. 4.

use crate::chromosome::Chromosome;
use crate::pareto::{ParetoFront, Solution};
use crate::problem::MooProblem;

/// Hard cap on window size: `2^30` evaluations is already ~minutes; beyond
/// that the exhaustive solver is useless even as ground truth.
pub const MAX_EXHAUSTIVE_WINDOW: usize = 30;

/// Error returned when a window is too large to enumerate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowTooLarge {
    /// The offending window size.
    pub len: usize,
}

impl std::fmt::Display for WindowTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "window of {} jobs exceeds the exhaustive-solver cap of {MAX_EXHAUSTIVE_WINDOW}",
            self.len
        )
    }
}

impl std::error::Error for WindowTooLarge {}

/// Enumerates all `2^w` selections and returns the exact Pareto front.
///
/// Infeasible selections are skipped; feasible ones are folded into a
/// [`ParetoFront`]. Insertion order is ascending bitmask, so among equal
/// objective vectors the front retains the selection whose jobs sit closest
/// to the window rear — callers that care about the §3.2.4 tie-break should
/// use [`crate::decision::choose_preferred`], which re-applies it.
pub fn solve<P: MooProblem + ?Sized>(problem: &P) -> Result<ParetoFront, WindowTooLarge> {
    let w = problem.len();
    if w > MAX_EXHAUSTIVE_WINDOW {
        return Err(WindowTooLarge { len: w });
    }
    let mut front = ParetoFront::new();
    // Enumerate in Gray-code-free plain order; masks fit in u64 for w <= 30.
    for mask in 0..(1u64 << w) {
        let c = Chromosome::from_mask(mask, w);
        if !problem.is_feasible(&c) {
            continue;
        }
        let objectives = problem.evaluate(&c);
        front.insert(Solution { chromosome: c, objectives });
    }
    Ok(front)
}

/// Counts feasible selections (diagnostic; used by tests and the Fig. 2
/// harness to report search-space sizes).
pub fn count_feasible<P: MooProblem + ?Sized>(problem: &P) -> Result<u64, WindowTooLarge> {
    let w = problem.len();
    if w > MAX_EXHAUSTIVE_WINDOW {
        return Err(WindowTooLarge { len: w });
    }
    let mut n = 0;
    for mask in 0..(1u64 << w) {
        if problem.is_feasible(&Chromosome::from_mask(mask, w)) {
            n += 1;
        }
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{JobDemand, KnapsackMooProblem};
    use crate::resource::ResourceModel;

    fn table1_problem() -> KnapsackMooProblem {
        KnapsackMooProblem::new(
            vec![
                JobDemand::cpu_bb(80, 20_000.0),
                JobDemand::cpu_bb(10, 85_000.0),
                JobDemand::cpu_bb(40, 5_000.0),
                JobDemand::cpu_bb(10, 0.0),
                JobDemand::cpu_bb(20, 0.0),
            ],
            ResourceModel::cpu_bb(100, 100_000.0),
        )
    }

    #[test]
    fn table1_true_front() {
        let mut front = solve(&table1_problem()).unwrap();
        front.sort_by_first_objective();
        let pts: Vec<Vec<f64>> = front.objective_vectors().map(|v| v.to_vec()).collect();
        // Footnote 1: "the Pareto set contains Solution 2 and 3".
        assert!(pts.contains(&vec![100.0, 20_000.0]));
        assert!(pts.contains(&vec![80.0, 90_000.0]));
        assert!(front.is_mutually_nondominated());
        // No front point may be dominated by any feasible selection.
        for mask in 0u64..(1 << 5) {
            let c = crate::Chromosome::from_mask(mask, 5);
            let p = table1_problem();
            use crate::problem::MooProblem;
            if p.is_feasible(&c) {
                let o = p.evaluate(&c);
                for fp in front.objective_vectors() {
                    assert!(!crate::pareto::dominates(o.as_slice(), fp));
                }
            }
        }
    }

    #[test]
    fn empty_window() {
        let p = KnapsackMooProblem::new(vec![], ResourceModel::cpu_bb(10, 10.0));
        let front = solve(&p).unwrap();
        // The empty selection (0, 0) is the only point.
        assert_eq!(front.len(), 1);
        assert_eq!(front.solutions()[0].objectives.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn rejects_oversized_window() {
        let window = vec![JobDemand::cpu_bb(1, 0.0); MAX_EXHAUSTIVE_WINDOW + 1];
        let p = KnapsackMooProblem::new(window, ResourceModel::cpu_bb(1000, 1000.0));
        assert!(solve(&p).is_err());
        assert!(count_feasible(&p).is_err());
    }

    #[test]
    fn feasible_count_matches_enumeration() {
        let p = table1_problem();
        let n = count_feasible(&p).unwrap();
        // At minimum the empty selection is feasible, and not all 32 are.
        assert!((1..32).contains(&n));
    }
}
