//! Resource pool bookkeeping shared by policies and the simulator.
//!
//! Tracks the free amount of every registered resource — compute nodes,
//! shared burst buffer, and the per-node flavour pools of §5 (or anything
//! else a [`ResourceModel`] registers) — and performs the paper's greedy
//! node→flavour assignment: jobs classify to the smallest sufficient
//! flavour and fill flavours smallest-first, "in order to mitigate wastage
//! in local SSD".
//!
//! [`PoolState`] is `Copy` (fixed-capacity vectors, no heap) so the
//! simulator can snapshot it freely into availability profiles and shadow
//! states.

use crate::problem::{Available, JobDemand};
use crate::resource::{
    DemandSlot, FlavorSet, ResourceModel, ResourceSpec, ResourceVector, MAX_FLAVORS, MAX_RESOURCES,
};
use serde::{Deserialize, Serialize};

/// Absolute slack granted to pooled-resource fit checks
/// ([`PoolState::free_fits`]): a demand fits when it exceeds the free
/// amount by at most this much, absorbing accumulated float error from
/// repeated alloc/free round trips. Public so alternative fit evaluators
/// (e.g. the scheduler's vectorized profile scan) can reproduce the
/// comparison bit-for-bit.
pub const FIT_EPS: f64 = 1e-9;

/// Node counts a started job drew from each flavour of the per-node
/// resource (index = flavour, ascending capacity). On systems without a
/// per-node resource all nodes are recorded under the last flavour slot,
/// mirroring the historical "everything counts as a 256 GB node" encoding.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeAssignment {
    /// Nodes taken per flavour.
    pub per_flavor: [u32; MAX_FLAVORS],
}

impl NodeAssignment {
    /// A two-tier assignment (the paper's 128 GB / 256 GB split).
    pub fn two_tier(n128: u32, n256: u32) -> Self {
        let mut per_flavor = [0u32; MAX_FLAVORS];
        per_flavor[0] = n128;
        per_flavor[1] = n256;
        Self { per_flavor }
    }

    /// Nodes taken from the 128 GB pool (flavour 0) on two-tier systems.
    pub fn n128(&self) -> u32 {
        self.per_flavor[0]
    }

    /// Nodes taken from the 256 GB pool (flavour 1) on two-tier systems.
    pub fn n256(&self) -> u32 {
        self.per_flavor[1]
    }

    /// Total nodes assigned.
    pub fn total(&self) -> u32 {
        self.per_flavor.iter().sum()
    }

    /// Wasted capacity (GB) of the per-node resource for a job requesting
    /// `per_node_demand` on each node, given the flavour table the
    /// assignment was made against.
    pub fn wasted_capacity(&self, per_node_demand: f64, flavors: &FlavorSet) -> f64 {
        let cap: f64 = (0..flavors.len())
            .map(|k| f64::from(self.per_flavor[k]) * flavors.get(k).capacity)
            .sum();
        (cap - per_node_demand * f64::from(self.total())).max(0.0)
    }

    /// Wasted local SSD (GB) for a job requesting `ssd_gb_per_node`, on the
    /// paper's two-tier 128/256 GB flavour table.
    pub fn wasted_ssd_gb(&self, ssd_gb_per_node: f64) -> f64 {
        use crate::problem::{SSD_LARGE_GB, SSD_SMALL_GB};
        let cap = f64::from(self.n128()) * SSD_SMALL_GB + f64::from(self.n256()) * SSD_LARGE_GB;
        (cap - ssd_gb_per_node * f64::from(self.total())).max(0.0)
    }
}

/// The `Copy` numeric topology of a pool: which demand slot feeds each
/// resource and where the per-node flavour table sits. Names and waste
/// flags live in [`ResourceModel`]; the pool only needs the arithmetic.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
struct PoolTopology {
    len: usize,
    slots: [DemandSlot; MAX_RESOURCES],
    /// Resource index of the per-node resource, if any.
    per_node: Option<u8>,
    /// Whether that resource tracks a waste objective.
    track_waste: bool,
    flavors: FlavorSet,
}

/// The mutable slice of a [`PoolState`]: per-resource free amounts and
/// per-flavour free node counts, without the topology and capacity tables
/// that are identical for every state describing the same machine.
///
/// Availability profiles hold thousands of states of one machine; packing
/// only the ~64 mutable bytes per segment (instead of the full ~240-byte
/// [`PoolState`]) keeps their scan/splice working set in L1. All fit and
/// allocation arithmetic is interpreted against an owning state via
/// [`PoolState::free_fits`] / [`PoolState::free_alloc`], which share their
/// implementation with [`PoolState::fits`] / [`PoolState::alloc`] — the two
/// representations cannot drift.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FreeState {
    free: ResourceVector,
    flavor_free: [u32; MAX_FLAVORS],
}

/// Mutable free-resource state at one scheduling invocation.
///
/// Construct with [`PoolState::cpu_bb`] / [`PoolState::with_ssd`] for the
/// paper's two systems, or [`PoolState::from_model`] for any resource
/// table. Constructors record the initial amounts as the system capacities;
/// `alloc`/`free` never change them.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PoolState {
    topo: PoolTopology,
    /// Free amount per resource (index 0 = nodes).
    free: ResourceVector,
    /// Free node count per flavour of the per-node resource.
    flavor_free: [u32; MAX_FLAVORS],
    /// System capacities (constant through alloc/free).
    cap: ResourceVector,
    flavor_cap: [u32; MAX_FLAVORS],
}

impl PoolState {
    /// State for a system described by `model` (availability = machine
    /// capacity), initially all free.
    ///
    /// # Panics
    /// Panics if a registered per-node resource's flavour counts do not sum
    /// to the node count.
    pub fn from_model(model: &ResourceModel) -> Self {
        let len = model.len();
        let mut slots = [DemandSlot::Nodes; MAX_RESOURCES];
        for (r, s) in model.specs().iter().enumerate() {
            slots[r] = s.slot;
        }
        let (per_node, track_waste, flavors) = match model.per_node_resource() {
            Some((r, f, w)) => {
                assert_eq!(
                    f.total_count(),
                    model.avail_nodes(),
                    "per-node flavour counts must sum to the node count"
                );
                (Some(r as u8), w, *f)
            }
            None => (None, false, FlavorSet::homogeneous(0.0, 0)),
        };
        let mut flavor_cap = [0u32; MAX_FLAVORS];
        for (k, cap) in flavor_cap.iter_mut().enumerate().take(flavors.len()) {
            *cap = flavors.get(k).count;
        }
        let free = model.available();
        Self {
            topo: PoolTopology { len, slots, per_node, track_waste, flavors },
            free,
            flavor_free: flavor_cap,
            cap: free,
            flavor_cap,
        }
    }

    /// State for a CPU + burst-buffer system, initially all free.
    pub fn cpu_bb(nodes: u32, bb_gb: f64) -> Self {
        Self::from_model(&ResourceModel::cpu_bb(nodes, bb_gb))
    }

    /// State for a system with heterogeneous local SSDs, initially all
    /// free.
    pub fn with_ssd(nodes_128: u32, nodes_256: u32, bb_gb: f64) -> Self {
        Self::from_model(&ResourceModel::cpu_bb_ssd(nodes_128, nodes_256, bb_gb))
    }

    /// Number of registered resources.
    pub fn num_resources(&self) -> usize {
        self.topo.len
    }

    /// Free amount of resource `r`.
    pub fn free_of(&self, r: usize) -> f64 {
        self.free.get(r)
    }

    /// System capacity of resource `r`.
    pub fn capacity_of(&self, r: usize) -> f64 {
        self.cap.get(r)
    }

    /// Free compute nodes.
    pub fn nodes(&self) -> u32 {
        self.free.get(0) as u32
    }

    /// Free shared burst buffer (GB); 0 if no burst buffer is registered.
    pub fn bb_gb(&self) -> f64 {
        self.pooled_by_slot(DemandSlot::BbGb).map_or(0.0, |r| self.free.get(r))
    }

    /// Free nodes of flavour `k` of the per-node resource.
    pub fn flavor_free(&self, k: usize) -> u32 {
        self.flavor_free[k]
    }

    /// Free 128 GB-SSD nodes (flavour 0; 0 when SSDs are not modelled).
    pub fn nodes_128(&self) -> u32 {
        if self.ssd_aware() {
            self.flavor_free[0]
        } else {
            0
        }
    }

    /// Free 256 GB-SSD nodes (flavour 1; 0 when SSDs are not modelled).
    pub fn nodes_256(&self) -> u32 {
        if self.ssd_aware() {
            self.flavor_free[1]
        } else {
            0
        }
    }

    /// Whether a per-node resource (local SSDs in the paper) is modelled;
    /// changes fit semantics.
    pub fn ssd_aware(&self) -> bool {
        self.topo.per_node.is_some()
    }

    /// Total compute nodes.
    pub fn total_nodes(&self) -> u32 {
        self.cap.get(0) as u32
    }

    /// Total usable shared burst buffer (GB).
    pub fn total_bb_gb(&self) -> f64 {
        self.pooled_by_slot(DemandSlot::BbGb).map_or(0.0, |r| self.cap.get(r))
    }

    /// Total capacity of the per-node resource (`Σ count × capacity`); 0
    /// when none is modelled.
    pub fn total_ssd_capacity_gb(&self) -> f64 {
        if self.ssd_aware() {
            (0..self.topo.flavors.len())
                .map(|k| f64::from(self.flavor_cap[k]) * self.topo.flavors.get(k).capacity)
                .sum()
        } else {
            0.0
        }
    }

    /// The flavour table of the per-node resource, if one is modelled.
    pub fn flavors(&self) -> Option<&FlavorSet> {
        self.topo.per_node.map(|_| &self.topo.flavors)
    }

    /// Overrides the free node count (testing/what-if; capacities are
    /// untouched). Not meaningful on flavoured systems, where node
    /// availability follows the flavour pools.
    pub fn set_free_nodes(&mut self, nodes: u32) {
        self.free.set(0, f64::from(nodes));
    }

    /// Overrides the free burst buffer (testing/what-if).
    ///
    /// # Panics
    /// Panics if no burst-buffer resource is registered.
    pub fn set_free_bb_gb(&mut self, bb_gb: f64) {
        let r = self.pooled_by_slot(DemandSlot::BbGb).expect("no burst-buffer resource");
        self.free.set(r, bb_gb);
    }

    fn pooled_by_slot(&self, slot: DemandSlot) -> Option<usize> {
        (0..self.topo.len).find(|&r| self.topo.slots[r] == slot)
    }

    /// Index of the per-node resource, if one is modelled.
    pub fn per_node_index(&self) -> Option<usize> {
        self.topo.per_node.map(usize::from)
    }

    /// Remaining free capacity of resource `r` in its natural unit: the
    /// free pool for pooled resources, `Σ free nodes × flavour capacity`
    /// for the per-node resource.
    pub fn remaining_capacity_of(&self, r: usize) -> f64 {
        if self.topo.per_node == Some(r as u8) {
            (0..self.topo.flavors.len())
                .map(|k| f64::from(self.flavor_free[k]) * self.topo.flavors.get(k).capacity)
                .sum()
        } else {
            self.free.get(r)
        }
    }

    /// A job's demand on resource `r` (per-node amount for the per-node
    /// resource, total for pooled ones).
    pub fn demand_of(&self, d: &JobDemand, r: usize) -> f64 {
        match self.topo.slots[r] {
            DemandSlot::Nodes => f64::from(d.nodes),
            DemandSlot::BbGb => d.bb_gb,
            DemandSlot::SsdPerNode => d.ssd_gb_per_node,
            DemandSlot::Extra(i) => d.extra[usize::from(i)],
        }
    }

    /// Rebuilds the free-capacity [`ResourceModel`] for problem
    /// construction (canonical slot-derived names; reporting names live in
    /// the workload layer).
    pub fn resource_model(&self) -> ResourceModel {
        let specs: Vec<ResourceSpec> = (0..self.topo.len)
            .map(|r| {
                let name = match self.topo.slots[r] {
                    DemandSlot::Nodes => "nodes".to_string(),
                    DemandSlot::BbGb => "bb_gb".to_string(),
                    DemandSlot::SsdPerNode => "ssd".to_string(),
                    DemandSlot::Extra(i) => format!("extra{i}"),
                };
                if self.topo.per_node == Some(r as u8) {
                    let mut flavors = Vec::with_capacity(self.topo.flavors.len());
                    for k in 0..self.topo.flavors.len() {
                        flavors.push(crate::resource::Flavor {
                            capacity: self.topo.flavors.get(k).capacity,
                            count: self.flavor_free[k],
                        });
                    }
                    let spec =
                        ResourceSpec::per_node(name, FlavorSet::new(&flavors), self.topo.slots[r]);
                    if self.topo.track_waste {
                        spec.with_waste_objective()
                    } else {
                        spec
                    }
                } else {
                    ResourceSpec::pooled(name, self.free.get(r), self.topo.slots[r])
                }
            })
            .collect();
        ResourceModel::new(specs).expect("pool topology is always a valid model")
    }

    /// Objective normalizers against *machine* capacity (the paper's
    /// utilizations are system-relative): one entry per resource, plus the
    /// per-node capacity again for a waste objective.
    pub fn machine_normalizers(&self) -> Vec<f64> {
        let mut norms: Vec<f64> = (0..self.topo.len)
            .map(|r| {
                if self.topo.per_node == Some(r as u8) {
                    self.total_ssd_capacity_gb()
                } else {
                    self.cap.get(r)
                }
            })
            .collect();
        if self.ssd_aware() && self.topo.track_waste {
            norms.push(self.total_ssd_capacity_gb());
        }
        norms
    }

    /// Snapshot as an [`Available`] for legacy problem construction.
    pub fn as_available(&self) -> Available {
        Available {
            nodes: self.nodes(),
            bb_gb: self.bb_gb(),
            nodes_128: self.nodes_128(),
            nodes_256: self.nodes_256(),
        }
    }

    /// Whether `d` fits in the current free state.
    pub fn fits(&self, d: &JobDemand) -> bool {
        let f = FreeState { free: self.free, flavor_free: self.flavor_free };
        self.free_fits(&f, d)
    }

    /// This state's mutable slice (free amounts and flavour pools).
    pub fn free_state(&self) -> FreeState {
        FreeState { free: self.free, flavor_free: self.flavor_free }
    }

    /// Number of modelled resources (the demand components
    /// [`PoolState::fits`] checks).
    pub fn resource_len(&self) -> usize {
        self.topo.len
    }

    /// Free amount of pooled resource `r` in the free slice `f` (the
    /// value [`PoolState::free_fits`] compares a demand against; for the
    /// per-node resource the fit check goes through the flavour pools
    /// instead, see [`PoolState::ssd_aware`]).
    pub fn free_component(&self, f: &FreeState, r: usize) -> f64 {
        f.free.get(r)
    }

    /// A full state with this state's topology and capacities but `f`'s
    /// free amounts (the inverse of [`PoolState::free_state`]).
    pub fn with_free(&self, f: &FreeState) -> PoolState {
        let mut out = *self;
        out.free = f.free;
        out.flavor_free = f.flavor_free;
        out
    }

    /// Whether this state and `other` describe the same machine: equal
    /// topologies and capacity tables (free amounts may differ).
    pub fn same_machine(&self, other: &PoolState) -> bool {
        self.topo == other.topo && self.cap == other.cap && self.flavor_cap == other.flavor_cap
    }

    /// Whether `d` fits in the free slice `f`, interpreted against this
    /// state's topology. `self.fits(d)` delegates here, so the answer for
    /// `self.free_state()` is exactly `self.fits(d)`.
    pub fn free_fits(&self, f: &FreeState, d: &JobDemand) -> bool {
        if f64::from(d.nodes) > f.free.get(0) {
            return false;
        }
        for r in 1..self.topo.len {
            let demand = self.demand_of(d, r);
            if self.topo.per_node == Some(r as u8) {
                // Enough nodes of a sufficient flavour: suffix-count check.
                let class = self.topo.flavors.class_of(demand);
                let suffix: u64 =
                    (class..self.topo.flavors.len()).map(|k| u64::from(f.flavor_free[k])).sum();
                if u64::from(d.nodes) > suffix {
                    return false;
                }
            } else if demand > f.free.get(r) + FIT_EPS {
                return false;
            }
        }
        true
    }

    /// Allocates `d`, returning the per-flavour node split.
    ///
    /// # Panics
    /// Panics if the demand does not fit (call [`PoolState::fits`] first).
    pub fn alloc(&mut self, d: &JobDemand) -> NodeAssignment {
        assert!(self.fits(d), "alloc called with non-fitting demand {d:?} on {self:?}");
        let mut f = FreeState { free: self.free, flavor_free: self.flavor_free };
        let asn = self.free_alloc_unchecked(&mut f, d);
        self.free = f.free;
        self.flavor_free = f.flavor_free;
        asn
    }

    /// Allocates `d` from the free slice `f` (interpreted against this
    /// state's topology), returning the per-flavour node split.
    /// `self.alloc(d)` delegates here, so the mutation applied to
    /// `self.free_state()` is exactly the one `alloc` applies to `self`.
    ///
    /// # Panics
    /// Panics if the demand does not fit `f` (call
    /// [`PoolState::free_fits`] first).
    pub fn free_alloc(&self, f: &mut FreeState, d: &JobDemand) -> NodeAssignment {
        assert!(self.free_fits(f, d), "alloc called with non-fitting demand {d:?} on {f:?}");
        self.free_alloc_unchecked(f, d)
    }

    /// [`PoolState::free_alloc`] without the fit assertion, for callers
    /// that have already verified the demand fits — e.g. an availability
    /// profile carving a reservation across an interval it has just
    /// fit-checked as a whole. Applies the exact same mutation as
    /// `free_alloc` (same subtractions, in the same order), so results
    /// are bit-identical; fitting is debug-asserted only.
    pub fn free_carve(&self, f: &mut FreeState, d: &JobDemand) -> NodeAssignment {
        debug_assert!(
            self.free_fits(f, d),
            "free_carve called with non-fitting demand {d:?} on {f:?}"
        );
        self.free_alloc_unchecked(f, d)
    }

    fn free_alloc_unchecked(&self, f: &mut FreeState, d: &JobDemand) -> NodeAssignment {
        for r in 1..self.topo.len {
            if self.topo.per_node != Some(r as u8) {
                let v = f.free.get(r) - self.demand_of(d, r);
                f.free.set(r, v);
            }
        }
        f.free.set(0, f.free.get(0) - f64::from(d.nodes));
        let Some(pr) = self.topo.per_node else {
            // No per-node resource: record everything in the last flavour
            // slot of a two-tier table (the historical n256 encoding).
            return NodeAssignment::two_tier(0, d.nodes);
        };
        // Greedy: smallest sufficient flavour first, overflow upward.
        let class = self.topo.flavors.class_of(self.demand_of(d, usize::from(pr)));
        let mut asn = NodeAssignment::default();
        let mut need = d.nodes;
        for k in class..self.topo.flavors.len() {
            let take = need.min(f.flavor_free[k]);
            asn.per_flavor[k] = take;
            f.flavor_free[k] -= take;
            need -= take;
            if need == 0 {
                break;
            }
        }
        debug_assert_eq!(need, 0, "fits() guaranteed a flavour assignment");
        asn
    }

    /// Component-wise minimum of two states of the same topology: the
    /// largest availability that is guaranteed under *both* (used to
    /// constrain selection so it cannot delay a reservation).
    ///
    /// # Panics
    /// Panics if the topologies differ (both states must describe the same
    /// machine).
    pub fn component_min(&self, other: &PoolState) -> PoolState {
        assert_eq!(self.topo, other.topo, "component_min requires matching pool topologies");
        let a = FreeState { free: self.free, flavor_free: self.flavor_free };
        let b = FreeState { free: other.free, flavor_free: other.flavor_free };
        self.with_free(&self.free_component_min(&a, &b))
    }

    /// Component-wise minimum of two free slices of this machine:
    /// [`PoolState::component_min`] on the packed representation (and the
    /// implementation the full-state version delegates to).
    pub fn free_component_min(&self, a: &FreeState, b: &FreeState) -> FreeState {
        let mut out = *a;
        out.free = a.free.component_min(&b.free);
        if self.topo.per_node.is_some() {
            let mut sum = 0u32;
            for k in 0..self.topo.flavors.len() {
                out.flavor_free[k] = a.flavor_free[k].min(b.flavor_free[k]);
                sum += out.flavor_free[k];
            }
            // Flavoured states maintain nodes == Σ flavour pools; taking
            // per-pool minima independently can only tighten that sum, so
            // the node count must follow it.
            out.free.set(0, f64::from(sum));
        }
        out
    }

    /// Component-wise maximum of two free slices of this machine: the
    /// *upper envelope* of availability. Because [`PoolState::free_fits`]
    /// is monotone in every free component (more free nodes, pooled
    /// resource, or flavour nodes never makes a demand stop fitting), a
    /// demand that fails against the maximum fails against **both**
    /// inputs — the pruning dual of [`PoolState::free_component_min`],
    /// used by the profile tree to skip whole all-blocking runs.
    pub fn free_component_max(&self, a: &FreeState, b: &FreeState) -> FreeState {
        let mut out = *a;
        out.free = a.free.component_max(&b.free);
        if self.topo.per_node.is_some() {
            let mut sum = 0u32;
            for k in 0..self.topo.flavors.len() {
                out.flavor_free[k] = a.flavor_free[k].max(b.flavor_free[k]);
                sum += out.flavor_free[k];
            }
            // Per-pool maxima can only widen the nodes == Σ flavour pools
            // sum, keeping the node count an upper bound of both inputs.
            out.free.set(0, f64::from(sum));
        }
        out
    }

    /// Releases an allocation made by [`PoolState::alloc`].
    pub fn free(&mut self, d: &JobDemand, asn: NodeAssignment) {
        for r in 1..self.topo.len {
            if self.topo.per_node != Some(r as u8) {
                let v = self.free.get(r) + self.demand_of(d, r);
                self.free.set(r, v);
            }
        }
        self.free.set(0, self.free.get(0) + f64::from(d.nodes));
        if self.topo.per_node.is_some() {
            for k in 0..self.topo.flavors.len() {
                self.flavor_free[k] += asn.per_flavor[k];
            }
        }
        debug_assert_eq!(asn.total(), d.nodes);
    }

    /// Wasted per-node capacity (GB) of an assignment for demand `d`; 0 on
    /// systems without a per-node resource.
    pub fn wasted_capacity_gb(&self, d: &JobDemand, asn: &NodeAssignment) -> f64 {
        match self.topo.per_node {
            Some(pr) => asn.wasted_capacity(self.demand_of(d, usize::from(pr)), &self.topo.flavors),
            None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::Flavor;

    #[test]
    fn cpu_bb_fit_and_alloc() {
        let mut p = PoolState::cpu_bb(100, 1_000.0);
        let d = JobDemand::cpu_bb(40, 400.0);
        assert!(p.fits(&d));
        let a = p.alloc(&d);
        assert_eq!(p.nodes(), 60);
        assert_eq!(p.bb_gb(), 600.0);
        p.free(&d, a);
        assert_eq!(p.nodes(), 100);
        assert_eq!(p.bb_gb(), 1_000.0);
    }

    #[test]
    fn rejects_oversized() {
        let p = PoolState::cpu_bb(10, 10.0);
        assert!(!p.fits(&JobDemand::cpu_bb(11, 0.0)));
        assert!(!p.fits(&JobDemand::cpu_bb(1, 20.0)));
        assert!(p.fits(&JobDemand::cpu_bb(10, 10.0)));
    }

    #[test]
    fn ssd_large_requests_need_256_pool() {
        let p = PoolState::with_ssd(8, 2, 100.0);
        assert!(!p.fits(&JobDemand::cpu_bb_ssd(3, 0.0, 200.0)));
        assert!(p.fits(&JobDemand::cpu_bb_ssd(2, 0.0, 200.0)));
    }

    #[test]
    fn ssd_small_requests_prefer_128_pool() {
        let mut p = PoolState::with_ssd(2, 4, 100.0);
        let d = JobDemand::cpu_bb_ssd(3, 0.0, 64.0);
        let a = p.alloc(&d);
        assert_eq!(a, NodeAssignment::two_tier(2, 1));
        assert_eq!(p.nodes_128(), 0);
        assert_eq!(p.nodes_256(), 3);
        // Waste: 2 x (128-64) + 1 x (256-64) = 320.
        assert_eq!(a.wasted_ssd_gb(64.0), 320.0);
        assert_eq!(p.wasted_capacity_gb(&d, &a), 320.0);
        p.free(&d, a);
        assert_eq!(p.nodes_128(), 2);
        assert_eq!(p.nodes_256(), 4);
    }

    #[test]
    fn non_ssd_alloc_has_no_waste_tracking() {
        let mut p = PoolState::cpu_bb(10, 0.0);
        let d = JobDemand::cpu_bb(4, 0.0);
        let a = p.alloc(&d);
        assert_eq!(a.total(), 4);
        assert_eq!(p.wasted_capacity_gb(&d, &a), 0.0);
    }

    #[test]
    #[should_panic]
    fn alloc_panics_when_not_fitting() {
        let mut p = PoolState::cpu_bb(1, 0.0);
        let _ = p.alloc(&JobDemand::cpu_bb(2, 0.0));
    }

    #[test]
    fn component_min_is_conservative() {
        let mut a = PoolState::with_ssd(4, 5, 100.0);
        let mut b = PoolState::with_ssd(4, 5, 100.0);
        // Drain the two states differently.
        let da = JobDemand::cpu_bb_ssd(1, 0.0, 64.0); // takes a 128 node from a
        let db = JobDemand::cpu_bb_ssd(3, 60.0, 200.0); // takes 256 nodes from b
        let _ = a.alloc(&da);
        let _ = b.alloc(&db);
        let m = a.component_min(&b);
        // Flavoured min keeps nodes == sum of flavour pools.
        assert_eq!(m.nodes_128(), 3);
        assert_eq!(m.nodes_256(), 2);
        assert_eq!(m.nodes(), 5);
        assert_eq!(m.bb_gb(), 40.0);
        assert!(m.ssd_aware());
        // Anything fitting the min fits both.
        let d = JobDemand::cpu_bb_ssd(2, 30.0, 200.0);
        assert!(m.fits(&d) && a.fits(&d) && b.fits(&d));
    }

    #[test]
    fn component_min_plain_states() {
        let mut a = PoolState::cpu_bb(10, 80.0);
        let mut b = PoolState::cpu_bb(10, 80.0);
        let _ = a.alloc(&JobDemand::cpu_bb(0, 30.0));
        let _ = b.alloc(&JobDemand::cpu_bb(3, 0.0));
        let m = a.component_min(&b);
        assert_eq!(m.nodes(), 7);
        assert_eq!(m.bb_gb(), 50.0);
        assert!(!m.ssd_aware());
    }

    #[test]
    fn as_available_roundtrip() {
        let p = PoolState::with_ssd(3, 5, 42.0);
        let a = p.as_available();
        assert_eq!(a.nodes, 8);
        assert_eq!(a.nodes_128, 3);
        assert_eq!(a.nodes_256, 5);
        assert_eq!(a.bb_gb, 42.0);
    }

    #[test]
    fn totals_survive_alloc() {
        let mut p = PoolState::with_ssd(3, 5, 42.0);
        let _ = p.alloc(&JobDemand::cpu_bb_ssd(2, 10.0, 64.0));
        assert_eq!(p.total_nodes(), 8);
        assert_eq!(p.total_bb_gb(), 42.0);
        assert_eq!(p.total_ssd_capacity_gb(), 3.0 * 128.0 + 5.0 * 256.0);
        assert_eq!(p.machine_normalizers(), vec![8.0, 42.0, 1664.0, 1664.0]);
    }

    #[test]
    fn generic_three_flavor_pool() {
        // 64 / 128 / 256 GB tiers.
        let flavors = FlavorSet::new(&[
            Flavor { capacity: 64.0, count: 2 },
            Flavor { capacity: 128.0, count: 2 },
            Flavor { capacity: 256.0, count: 2 },
        ]);
        let model = ResourceModel::new(vec![
            ResourceSpec::pooled("nodes", 6.0, DemandSlot::Nodes),
            ResourceSpec::pooled("bb_gb", 100.0, DemandSlot::BbGb),
            ResourceSpec::per_node("ssd", flavors, DemandSlot::SsdPerNode).with_waste_objective(),
        ])
        .unwrap();
        let mut p = PoolState::from_model(&model);
        // A 100 GB/node job classifies to the 128 tier, overflows to 256.
        let d = JobDemand::cpu_bb_ssd(3, 0.0, 100.0);
        assert!(p.fits(&d));
        let a = p.alloc(&d);
        assert_eq!(a.per_flavor[..3], [0, 2, 1]);
        // 2x(128-100) + 1x(256-100) = 212 GB wasted.
        assert_eq!(p.wasted_capacity_gb(&d, &a), 212.0);
        // The 64-tier nodes are untouched.
        assert_eq!(p.flavor_free(0), 2);
        p.free(&d, a);
        assert_eq!(p.nodes(), 6);
    }

    #[test]
    fn mutators_for_what_if_states() {
        let mut p = PoolState::cpu_bb(100, 1_000.0);
        p.set_free_nodes(10);
        p.set_free_bb_gb(5.0);
        assert_eq!(p.nodes(), 10);
        assert_eq!(p.bb_gb(), 5.0);
        assert_eq!(p.total_nodes(), 100);
        assert_eq!(p.total_bb_gb(), 1_000.0);
    }

    #[test]
    fn resource_model_snapshot_reflects_free_state() {
        let mut p = PoolState::with_ssd(2, 4, 100.0);
        let _ = p.alloc(&JobDemand::cpu_bb_ssd(1, 30.0, 200.0));
        let m = p.resource_model();
        assert_eq!(m.avail_nodes(), 5);
        assert_eq!(m.available().get(1), 70.0);
        let (_, flavors, waste) = m.per_node_resource().unwrap();
        assert!(waste);
        assert_eq!(flavors.get(0).count, 2);
        assert_eq!(flavors.get(1).count, 3);
    }
}
