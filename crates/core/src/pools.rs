//! Resource pool bookkeeping shared by policies and the simulator.
//!
//! Tracks free nodes, shared burst buffer, and the heterogeneous local-SSD
//! node pools of §5, and performs the paper's greedy node→SSD assignment:
//! jobs requesting more than 128 GB/node must use 256 GB nodes; jobs
//! requesting at most 128 GB/node "are preferred over 256 GB SSD \[nodes\]
//! in order to mitigate wastage in local SSD".

use crate::problem::{Available, JobDemand, SSD_LARGE_GB, SSD_SMALL_GB};
use serde::{Deserialize, Serialize};

/// Node counts a started job drew from each SSD pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeAssignment {
    /// Nodes taken from the 128 GB-SSD pool.
    pub n128: u32,
    /// Nodes taken from the 256 GB-SSD pool.
    pub n256: u32,
}

impl NodeAssignment {
    /// Total nodes assigned.
    pub fn total(&self) -> u32 {
        self.n128 + self.n256
    }

    /// Wasted local SSD (GB) for a job requesting `ssd_gb_per_node`.
    pub fn wasted_ssd_gb(&self, ssd_gb_per_node: f64) -> f64 {
        let cap = f64::from(self.n128) * SSD_SMALL_GB + f64::from(self.n256) * SSD_LARGE_GB;
        (cap - ssd_gb_per_node * f64::from(self.total())).max(0.0)
    }
}

/// Immutable system capacities carried alongside the free state, so that
/// policies can normalize objectives against the *machine* (the paper's
/// utilizations are system-relative) rather than against whatever happens
/// to be free at one invocation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Totals {
    /// Total compute nodes.
    pub nodes: u32,
    /// Total usable shared burst buffer (GB).
    pub bb_gb: f64,
    /// Total 128 GB-SSD nodes.
    pub nodes_128: u32,
    /// Total 256 GB-SSD nodes.
    pub nodes_256: u32,
}

impl Totals {
    /// Total local-SSD capacity in GB.
    pub fn ssd_capacity_gb(&self) -> f64 {
        f64::from(self.nodes_128) * SSD_SMALL_GB + f64::from(self.nodes_256) * SSD_LARGE_GB
    }
}

/// Mutable free-resource state at one scheduling invocation.
///
/// For systems without local SSDs, construct with [`PoolState::cpu_bb`];
/// `n128`/`n256` then stay zero and only the node/burst-buffer constraints
/// apply. Constructors record the initial amounts as the system
/// [`Totals`]; `alloc`/`free` never change them.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PoolState {
    /// Free compute nodes.
    pub nodes: u32,
    /// Free shared burst buffer (GB).
    pub bb_gb: f64,
    /// Free 128 GB-SSD nodes (0 when SSDs are not modelled).
    pub nodes_128: u32,
    /// Free 256 GB-SSD nodes (0 when SSDs are not modelled).
    pub nodes_256: u32,
    /// Whether local SSDs are modelled (changes fit semantics).
    pub ssd_aware: bool,
    /// System capacities (constant through alloc/free).
    pub total: Totals,
}

impl PoolState {
    /// State for a CPU + burst-buffer system, initially all free.
    pub fn cpu_bb(nodes: u32, bb_gb: f64) -> Self {
        Self {
            nodes,
            bb_gb,
            nodes_128: 0,
            nodes_256: 0,
            ssd_aware: false,
            total: Totals { nodes, bb_gb, nodes_128: 0, nodes_256: 0 },
        }
    }

    /// State for a system with heterogeneous local SSDs, initially all
    /// free.
    pub fn with_ssd(nodes_128: u32, nodes_256: u32, bb_gb: f64) -> Self {
        Self {
            nodes: nodes_128 + nodes_256,
            bb_gb,
            nodes_128,
            nodes_256,
            ssd_aware: true,
            total: Totals { nodes: nodes_128 + nodes_256, bb_gb, nodes_128, nodes_256 },
        }
    }

    /// Snapshot as an [`Available`] for problem construction.
    pub fn as_available(&self) -> Available {
        Available {
            nodes: self.nodes,
            bb_gb: self.bb_gb,
            nodes_128: self.nodes_128,
            nodes_256: self.nodes_256,
        }
    }

    /// Whether `d` fits in the current free state.
    pub fn fits(&self, d: &JobDemand) -> bool {
        if d.nodes > self.nodes || d.bb_gb > self.bb_gb + 1e-9 {
            return false;
        }
        if self.ssd_aware && d.ssd_gb_per_node > SSD_SMALL_GB && d.nodes > self.nodes_256 {
            return false;
        }
        true
    }

    /// Allocates `d`, returning the per-pool node split.
    ///
    /// # Panics
    /// Panics if the demand does not fit (call [`PoolState::fits`] first).
    pub fn alloc(&mut self, d: &JobDemand) -> NodeAssignment {
        assert!(self.fits(d), "alloc called with non-fitting demand {d:?} on {self:?}");
        self.bb_gb -= d.bb_gb;
        self.nodes -= d.nodes;
        if !self.ssd_aware {
            return NodeAssignment { n128: 0, n256: d.nodes };
        }
        let asn = if d.ssd_gb_per_node > SSD_SMALL_GB {
            NodeAssignment { n128: 0, n256: d.nodes }
        } else {
            // Prefer 128 GB nodes for small requests.
            let n128 = d.nodes.min(self.nodes_128);
            NodeAssignment { n128, n256: d.nodes - n128 }
        };
        debug_assert!(asn.n128 <= self.nodes_128 && asn.n256 <= self.nodes_256);
        self.nodes_128 -= asn.n128;
        self.nodes_256 -= asn.n256;
        asn
    }

    /// Component-wise minimum of two states: the largest availability that
    /// is guaranteed under *both* (used to constrain selection so it cannot
    /// delay a reservation). `ssd_aware` is or-ed: the conservative
    /// interpretation of mixing an SSD-aware and a plain state.
    pub fn component_min(&self, other: &PoolState) -> PoolState {
        let ssd_aware = self.ssd_aware || other.ssd_aware;
        let nodes_128 = self.nodes_128.min(other.nodes_128);
        let nodes_256 = self.nodes_256.min(other.nodes_256);
        // SSD-aware states maintain nodes == nodes_128 + nodes_256; taking
        // per-pool minima independently can only tighten that sum, so the
        // node count must follow it (a plain min(nodes) could exceed the
        // pool sum and violate the invariant).
        let nodes = if ssd_aware {
            nodes_128 + nodes_256
        } else {
            self.nodes.min(other.nodes)
        };
        PoolState {
            nodes,
            bb_gb: self.bb_gb.min(other.bb_gb),
            nodes_128,
            nodes_256,
            ssd_aware,
            // Both states describe the same machine; keep self's totals.
            total: self.total,
        }
    }

    /// Releases an allocation made by [`PoolState::alloc`].
    pub fn free(&mut self, d: &JobDemand, asn: NodeAssignment) {
        self.bb_gb += d.bb_gb;
        self.nodes += d.nodes;
        if self.ssd_aware {
            self.nodes_128 += asn.n128;
            self.nodes_256 += asn.n256;
        }
        debug_assert_eq!(asn.total(), d.nodes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_bb_fit_and_alloc() {
        let mut p = PoolState::cpu_bb(100, 1_000.0);
        let d = JobDemand::cpu_bb(40, 400.0);
        assert!(p.fits(&d));
        let a = p.alloc(&d);
        assert_eq!(p.nodes, 60);
        assert_eq!(p.bb_gb, 600.0);
        p.free(&d, a);
        assert_eq!(p.nodes, 100);
        assert_eq!(p.bb_gb, 1_000.0);
    }

    #[test]
    fn rejects_oversized() {
        let p = PoolState::cpu_bb(10, 10.0);
        assert!(!p.fits(&JobDemand::cpu_bb(11, 0.0)));
        assert!(!p.fits(&JobDemand::cpu_bb(1, 20.0)));
        assert!(p.fits(&JobDemand::cpu_bb(10, 10.0)));
    }

    #[test]
    fn ssd_large_requests_need_256_pool() {
        let p = PoolState::with_ssd(8, 2, 100.0);
        assert!(!p.fits(&JobDemand::cpu_bb_ssd(3, 0.0, 200.0)));
        assert!(p.fits(&JobDemand::cpu_bb_ssd(2, 0.0, 200.0)));
    }

    #[test]
    fn ssd_small_requests_prefer_128_pool() {
        let mut p = PoolState::with_ssd(2, 4, 100.0);
        let d = JobDemand::cpu_bb_ssd(3, 0.0, 64.0);
        let a = p.alloc(&d);
        assert_eq!(a, NodeAssignment { n128: 2, n256: 1 });
        assert_eq!(p.nodes_128, 0);
        assert_eq!(p.nodes_256, 3);
        // Waste: 2 x (128-64) + 1 x (256-64) = 320.
        assert_eq!(a.wasted_ssd_gb(64.0), 320.0);
        p.free(&d, a);
        assert_eq!(p.nodes_128, 2);
        assert_eq!(p.nodes_256, 4);
    }

    #[test]
    fn non_ssd_alloc_has_no_waste_tracking() {
        let mut p = PoolState::cpu_bb(10, 0.0);
        let d = JobDemand::cpu_bb(4, 0.0);
        let a = p.alloc(&d);
        assert_eq!(a.total(), 4);
    }

    #[test]
    #[should_panic]
    fn alloc_panics_when_not_fitting() {
        let mut p = PoolState::cpu_bb(1, 0.0);
        let _ = p.alloc(&JobDemand::cpu_bb(2, 0.0));
    }

    #[test]
    fn component_min_is_conservative() {
        let a = PoolState::with_ssd(3, 5, 100.0);
        let b = PoolState::with_ssd(4, 2, 40.0);
        let m = a.component_min(&b);
        // SSD-aware min keeps nodes == nodes_128 + nodes_256.
        assert_eq!(m.nodes_128, 3);
        assert_eq!(m.nodes_256, 2);
        assert_eq!(m.nodes, 5);
        assert_eq!(m.bb_gb, 40.0);
        assert!(m.ssd_aware);
        // Anything fitting the min fits both.
        let d = JobDemand::cpu_bb_ssd(2, 30.0, 200.0);
        assert!(m.fits(&d) && a.fits(&d) && b.fits(&d));
    }

    #[test]
    fn component_min_plain_states() {
        let a = PoolState::cpu_bb(10, 50.0);
        let b = PoolState::cpu_bb(7, 80.0);
        let m = a.component_min(&b);
        assert_eq!(m.nodes, 7);
        assert_eq!(m.bb_gb, 50.0);
        assert!(!m.ssd_aware);
    }

    #[test]
    fn as_available_roundtrip() {
        let p = PoolState::with_ssd(3, 5, 42.0);
        let a = p.as_available();
        assert_eq!(a.nodes, 8);
        assert_eq!(a.nodes_128, 3);
        assert_eq!(a.nodes_256, 5);
        assert_eq!(a.bb_gb, 42.0);
    }
}
