//! Property-based tests of the optimization core's algebraic invariants.

use bbsched_core::chromosome::Chromosome;
use bbsched_core::decision::{choose_preferred, DecisionRule};
use bbsched_core::pareto::{crowding_distance, dominates, ParetoFront, Solution};
use bbsched_core::problem::{CpuBbProblem, JobDemand, MooProblem};
use bbsched_core::quality::{generational_distance, hypervolume_2d};
use bbsched_core::Objectives;
use proptest::prelude::*;

fn vec2() -> impl Strategy<Value = [f64; 2]> {
    [0.0f64..1000.0, 0.0f64..1000.0]
}

proptest! {
    /// Dominance is irreflexive and antisymmetric.
    #[test]
    fn dominance_axioms(a in vec2(), b in vec2()) {
        prop_assert!(!dominates(&a, &a));
        if dominates(&a, &b) {
            prop_assert!(!dominates(&b, &a));
        }
    }

    /// Dominance is transitive.
    #[test]
    fn dominance_transitive(a in vec2(), b in vec2(), c in vec2()) {
        if dominates(&a, &b) && dominates(&b, &c) {
            prop_assert!(dominates(&a, &c));
        }
    }

    /// Front extraction is idempotent: re-inserting a front into a new
    /// front changes nothing.
    #[test]
    fn front_extraction_idempotent(points in proptest::collection::vec(vec2(), 1..40)) {
        let sols = points.iter().enumerate().map(|(i, p)| {
            let mut c = Chromosome::zeros(40);
            c.set(i, true);
            Solution { chromosome: c, objectives: Objectives::from_slice(p) }
        });
        let front = ParetoFront::from_pool(sols);
        prop_assert!(front.is_mutually_nondominated());
        let again = ParetoFront::from_pool(front.solutions().iter().cloned());
        prop_assert_eq!(front.len(), again.len());
    }

    /// Chromosome from_bits/bits round-trips and count matches.
    #[test]
    fn chromosome_roundtrip(bits in proptest::collection::vec(any::<bool>(), 1..200)) {
        let c = Chromosome::from_bits(&bits);
        let back: Vec<bool> = c.bits().collect();
        prop_assert_eq!(&back, &bits);
        prop_assert_eq!(c.count_ones(), bits.iter().filter(|&&b| b).count());
        let selected: Vec<usize> = c.selected().collect();
        let expected: Vec<usize> =
            bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
        prop_assert_eq!(selected, expected);
    }

    /// Each child gene comes from one of the parents at the same locus,
    /// and the two children are complementary.
    #[test]
    fn crossover_gene_provenance(
        a in proptest::collection::vec(any::<bool>(), 2..100),
        point_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let n = a.len();
        // Derive a second parent deterministically from the seed.
        let b: Vec<bool> = (0..n).map(|i| (seed >> (i % 64)) & 1 == 1).collect();
        let ca = Chromosome::from_bits(&a);
        let cb = Chromosome::from_bits(&b);
        let point = ((n as f64) * point_frac) as usize;
        let (x, y) = ca.crossover(&cb, point);
        for i in 0..n {
            let (xi, yi) = (x.get(i), y.get(i));
            prop_assert!(xi == a[i] || xi == b[i]);
            // Complementarity: {x[i], y[i]} == {a[i], b[i]} as multisets.
            prop_assert_eq!(xi as u8 + yi as u8, a[i] as u8 + b[i] as u8);
        }
    }

    /// Hypervolume never decreases when a point is added to the front
    /// input pool (dominated points contribute nothing, dominating ones
    /// only grow it).
    #[test]
    fn hypervolume_monotone(points in proptest::collection::vec(vec2(), 1..20), extra in vec2()) {
        let build = |pts: &[[f64; 2]]| {
            let sols = pts.iter().enumerate().map(|(i, p)| {
                let mut c = Chromosome::zeros(24);
                c.set(i % 24, true);
                Solution { chromosome: c, objectives: Objectives::from_slice(p) }
            });
            ParetoFront::from_pool(sols)
        };
        let hv1 = hypervolume_2d(&build(&points), 0.0, 0.0);
        let mut bigger = points.clone();
        bigger.push(extra);
        let hv2 = hypervolume_2d(&build(&bigger), 0.0, 0.0);
        prop_assert!(hv2 >= hv1 - 1e-9, "hv shrank: {hv1} -> {hv2}");
    }

    /// GD of a front against itself is zero.
    #[test]
    fn gd_self_is_zero(points in proptest::collection::vec(vec2(), 1..20)) {
        let sols = points.iter().enumerate().map(|(i, p)| {
            let mut c = Chromosome::zeros(24);
            c.set(i % 24, true);
            Solution { chromosome: c, objectives: Objectives::from_slice(p) }
        });
        let front = ParetoFront::from_pool(sols);
        prop_assert!(generational_distance(&front, &front).abs() < 1e-12);
    }

    /// The decision maker always returns a member of the front, and with
    /// an enormous trade-off factor it returns the max-node solution.
    #[test]
    fn decision_maker_selects_from_front(points in proptest::collection::vec(vec2(), 1..20)) {
        let sols = points.iter().enumerate().map(|(i, p)| {
            let mut c = Chromosome::zeros(24);
            c.set(i % 24, true);
            Solution { chromosome: c, objectives: Objectives::from_slice(p) }
        });
        let front = ParetoFront::from_pool(sols);
        let norm = [1000.0, 1000.0];
        let chosen = choose_preferred(&front, &norm, DecisionRule::cpu_bb()).unwrap();
        prop_assert!(front
            .solutions()
            .iter()
            .any(|s| s.objectives.as_slice() == chosen.objectives.as_slice()));

        let never = choose_preferred(
            &front,
            &norm,
            DecisionRule { tradeoff_factor: 1e12 },
        )
        .unwrap();
        let max_nodes = front
            .objective_vectors()
            .map(|v| v[0])
            .fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(never.objectives[0], max_nodes);
    }

    /// Crowding distances are nonnegative and the count matches.
    #[test]
    fn crowding_shape(points in proptest::collection::vec(vec2(), 0..30)) {
        let refs: Vec<&[f64]> = points.iter().map(|p| p.as_slice()).collect();
        let d = crowding_distance(&refs);
        prop_assert_eq!(d.len(), points.len());
        for v in d {
            prop_assert!(v >= 0.0);
        }
    }

    /// Evaluate is additive: the objectives of a selection equal the sum
    /// of the selected jobs' demands.
    #[test]
    fn evaluation_is_additive(
        demands in proptest::collection::vec((1u32..50, 0.0f64..500.0), 1..30),
        mask in any::<u64>(),
    ) {
        let window: Vec<JobDemand> =
            demands.iter().map(|&(n, b)| JobDemand::cpu_bb(n, b)).collect();
        let w = window.len();
        let problem = CpuBbProblem::new(window.clone(), u32::MAX, f64::INFINITY);
        let c = Chromosome::from_mask(mask, w.min(64));
        let c = if w <= 64 { c } else { Chromosome::from_mask(mask, 64) };
        let obj = problem.evaluate(&c);
        let nodes: f64 = c.selected().map(|i| f64::from(window[i].nodes)).sum();
        let bb: f64 = c.selected().map(|i| window[i].bb_gb).sum();
        prop_assert!((obj[0] - nodes).abs() < 1e-9);
        prop_assert!((obj[1] - bb).abs() < 1e-9);
    }
}
