//! Property-based tests of the optimization core's algebraic invariants.

use bbsched_core::chromosome::Chromosome;
use bbsched_core::decision::{choose_preferred, DecisionRule};
use bbsched_core::pareto::{crowding_distance, dominates, ParetoFront, Solution};
use bbsched_core::problem::{JobDemand, KnapsackMooProblem, MooProblem, RepairStyle};
use bbsched_core::quality::{generational_distance, hypervolume_2d};
use bbsched_core::resource::{DemandSlot, ResourceModel, ResourceSpec};
use bbsched_core::{GaConfig, MooGa, Objectives};
use proptest::prelude::*;

fn vec2() -> impl Strategy<Value = [f64; 2]> {
    [0.0f64..1000.0, 0.0f64..1000.0]
}

proptest! {
    /// Dominance is irreflexive and antisymmetric.
    #[test]
    fn dominance_axioms(a in vec2(), b in vec2()) {
        prop_assert!(!dominates(&a, &a));
        if dominates(&a, &b) {
            prop_assert!(!dominates(&b, &a));
        }
    }

    /// Dominance is transitive.
    #[test]
    fn dominance_transitive(a in vec2(), b in vec2(), c in vec2()) {
        if dominates(&a, &b) && dominates(&b, &c) {
            prop_assert!(dominates(&a, &c));
        }
    }

    /// Front extraction is idempotent: re-inserting a front into a new
    /// front changes nothing.
    #[test]
    fn front_extraction_idempotent(points in proptest::collection::vec(vec2(), 1..40)) {
        let sols = points.iter().enumerate().map(|(i, p)| {
            let mut c = Chromosome::zeros(40);
            c.set(i, true);
            Solution { chromosome: c, objectives: Objectives::from_slice(p) }
        });
        let front = ParetoFront::from_pool(sols);
        prop_assert!(front.is_mutually_nondominated());
        let again = ParetoFront::from_pool(front.solutions().iter().cloned());
        prop_assert_eq!(front.len(), again.len());
    }

    /// Chromosome from_bits/bits round-trips and count matches.
    #[test]
    fn chromosome_roundtrip(bits in proptest::collection::vec(any::<bool>(), 1..200)) {
        let c = Chromosome::from_bits(&bits);
        let back: Vec<bool> = c.bits().collect();
        prop_assert_eq!(&back, &bits);
        prop_assert_eq!(c.count_ones(), bits.iter().filter(|&&b| b).count());
        let selected: Vec<usize> = c.selected().collect();
        let expected: Vec<usize> =
            bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
        prop_assert_eq!(selected, expected);
    }

    /// Each child gene comes from one of the parents at the same locus,
    /// and the two children are complementary.
    #[test]
    fn crossover_gene_provenance(
        a in proptest::collection::vec(any::<bool>(), 2..100),
        point_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let n = a.len();
        // Derive a second parent deterministically from the seed.
        let b: Vec<bool> = (0..n).map(|i| (seed >> (i % 64)) & 1 == 1).collect();
        let ca = Chromosome::from_bits(&a);
        let cb = Chromosome::from_bits(&b);
        let point = ((n as f64) * point_frac) as usize;
        let (x, y) = ca.crossover(&cb, point);
        for i in 0..n {
            let (xi, yi) = (x.get(i), y.get(i));
            prop_assert!(xi == a[i] || xi == b[i]);
            // Complementarity: {x[i], y[i]} == {a[i], b[i]} as multisets.
            prop_assert_eq!(xi as u8 + yi as u8, a[i] as u8 + b[i] as u8);
        }
    }

    /// Hypervolume never decreases when a point is added to the front
    /// input pool (dominated points contribute nothing, dominating ones
    /// only grow it).
    #[test]
    fn hypervolume_monotone(points in proptest::collection::vec(vec2(), 1..20), extra in vec2()) {
        let build = |pts: &[[f64; 2]]| {
            let sols = pts.iter().enumerate().map(|(i, p)| {
                let mut c = Chromosome::zeros(24);
                c.set(i % 24, true);
                Solution { chromosome: c, objectives: Objectives::from_slice(p) }
            });
            ParetoFront::from_pool(sols)
        };
        let hv1 = hypervolume_2d(&build(&points), 0.0, 0.0);
        let mut bigger = points.clone();
        bigger.push(extra);
        let hv2 = hypervolume_2d(&build(&bigger), 0.0, 0.0);
        prop_assert!(hv2 >= hv1 - 1e-9, "hv shrank: {hv1} -> {hv2}");
    }

    /// GD of a front against itself is zero.
    #[test]
    fn gd_self_is_zero(points in proptest::collection::vec(vec2(), 1..20)) {
        let sols = points.iter().enumerate().map(|(i, p)| {
            let mut c = Chromosome::zeros(24);
            c.set(i % 24, true);
            Solution { chromosome: c, objectives: Objectives::from_slice(p) }
        });
        let front = ParetoFront::from_pool(sols);
        prop_assert!(generational_distance(&front, &front).abs() < 1e-12);
    }

    /// The decision maker always returns a member of the front, and with
    /// an enormous trade-off factor it returns the max-node solution.
    #[test]
    fn decision_maker_selects_from_front(points in proptest::collection::vec(vec2(), 1..20)) {
        let sols = points.iter().enumerate().map(|(i, p)| {
            let mut c = Chromosome::zeros(24);
            c.set(i % 24, true);
            Solution { chromosome: c, objectives: Objectives::from_slice(p) }
        });
        let front = ParetoFront::from_pool(sols);
        let norm = [1000.0, 1000.0];
        let chosen = choose_preferred(&front, &norm, DecisionRule::cpu_bb()).unwrap();
        prop_assert!(front
            .solutions()
            .iter()
            .any(|s| s.objectives.as_slice() == chosen.objectives.as_slice()));

        let never = choose_preferred(
            &front,
            &norm,
            DecisionRule::with_factor(1e12),
        )
        .unwrap();
        let max_nodes = front
            .objective_vectors()
            .map(|v| v[0])
            .fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(never.objectives[0], max_nodes);
    }

    /// Crowding distances are nonnegative and the count matches.
    #[test]
    fn crowding_shape(points in proptest::collection::vec(vec2(), 0..30)) {
        let refs: Vec<&[f64]> = points.iter().map(|p| p.as_slice()).collect();
        let d = crowding_distance(&refs);
        prop_assert_eq!(d.len(), points.len());
        for v in d {
            prop_assert!(v >= 0.0);
        }
    }

    /// Evaluate is additive: the objectives of a selection equal the sum
    /// of the selected jobs' demands.
    #[test]
    fn evaluation_is_additive(
        demands in proptest::collection::vec((1u32..50, 0.0f64..500.0), 1..30),
        mask in any::<u64>(),
    ) {
        let window: Vec<JobDemand> =
            demands.iter().map(|&(n, b)| JobDemand::cpu_bb(n, b)).collect();
        let w = window.len();
        let problem = KnapsackMooProblem::new(window.clone(), ResourceModel::cpu_bb(u32::MAX, f64::INFINITY));
        let c = Chromosome::from_mask(mask, w.min(64));
        let c = if w <= 64 { c } else { Chromosome::from_mask(mask, 64) };
        let obj = problem.evaluate(&c);
        let nodes: f64 = c.selected().map(|i| f64::from(window[i].nodes)).sum();
        let bb: f64 = c.selected().map(|i| window[i].bb_gb).sum();
        prop_assert!((obj[0] - nodes).abs() < 1e-9);
        prop_assert!((obj[1] - bb).abs() < 1e-9);
    }
}

// --- generic N-resource properties -----------------------------------------
//
// The demand slots available to non-node resources, in canonical order.
const POOLED_SLOTS: [DemandSlot; 3] =
    [DemandSlot::BbGb, DemandSlot::Extra(0), DemandSlot::Extra(1)];

/// A pooled model over nodes plus the non-node resources listed in `order`
/// (indices into [`POOLED_SLOTS`] / `amounts`). Resource 0 is always nodes;
/// permuting `order` permutes the model's resource order without touching
/// the job demands (slots route demands by identity, not position).
fn pooled_model(avail_nodes: u32, amounts: &[f64; 3], order: &[usize]) -> ResourceModel {
    let mut specs = vec![ResourceSpec::pooled("nodes", f64::from(avail_nodes), DemandSlot::Nodes)];
    for &k in order {
        specs.push(ResourceSpec::pooled(format!("r{k}"), amounts[k], POOLED_SLOTS[k]));
    }
    ResourceModel::new(specs).expect("pooled tables are always valid")
}

/// The `idx`-th permutation of `0..n` (factorial number system; any `idx`
/// maps to a valid permutation).
fn permutation(n: usize, mut idx: usize) -> Vec<usize> {
    let mut pool: Vec<usize> = (0..n).collect();
    let mut out = Vec::with_capacity(n);
    for k in (1..=n).rev() {
        out.push(pool.remove(idx % k));
        idx /= k;
    }
    out
}

/// A demand routing `amounts` through the three pooled non-node slots.
fn pooled_demand(nodes: u32, amounts: &[f64; 3]) -> JobDemand {
    JobDemand { nodes, bb_gb: amounts[0], ssd_gb_per_node: 0.0, extra: [amounts[1], amounts[2]] }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Repair always lands on a feasible selection — and only ever
    /// deselects — for R ∈ {2, 3, 4} pooled resources, under both repair
    /// rules.
    #[test]
    fn repair_feasible_for_r_2_3_4(
        r in 2usize..=4,
        avail_nodes in 1u32..60,
        amounts in [0.0f64..500.0, 0.0f64..500.0, 0.0f64..500.0],
        jobs in collection::vec((0u32..30, [0.0f64..200.0, 0.0f64..200.0, 0.0f64..200.0]), 1..16),
        mask in any::<u64>(),
        drop_all in any::<bool>(),
    ) {
        let order: Vec<usize> = (0..r - 1).collect();
        let window: Vec<JobDemand> =
            jobs.iter().map(|&(n, ref a)| pooled_demand(n, a)).collect();
        let style =
            if drop_all { RepairStyle::DropUnconditionally } else { RepairStyle::DropIfRelieves };
        let problem = KnapsackMooProblem::new(window, pooled_model(avail_nodes, &amounts, &order))
            .with_repair_style(style);
        let before = Chromosome::from_mask(mask, jobs.len());
        let mut after = before.clone();
        problem.repair(&mut after);
        prop_assert!(problem.is_feasible(&after), "repair left an infeasible selection");
        for i in 0..jobs.len() {
            prop_assert!(!after.get(i) || before.get(i), "repair selected gene {}", i);
        }
    }

    /// The incremental scratch state tracks a full recompute exactly:
    /// after any sequence of random gene writes, its feasibility verdict
    /// matches `is_feasible` on a separately maintained chromosome, and
    /// the fused `repair_evaluate` agrees with repair-then-evaluate bit
    /// for bit. Integer-valued demands keep the incremental sums exact,
    /// for R ∈ {2, 3, 4} and both repair rules.
    #[test]
    fn scratch_state_matches_full_recompute(
        r in 2usize..=4,
        avail_nodes in 1u32..60,
        amounts_i in [0u32..500, 0u32..500, 0u32..500],
        jobs in collection::vec((0u32..30, [0u32..200, 0u32..200, 0u32..200]), 1..16),
        mask in any::<u64>(),
        flips in collection::vec((0usize..64, any::<bool>()), 1..64),
    ) {
        // Derive the repair rule from the mask so both rules get coverage
        // without a seventh strategy parameter.
        let drop_all = mask.count_ones() % 2 == 1;
        let order: Vec<usize> = (0..r - 1).collect();
        let amounts = [f64::from(amounts_i[0]), f64::from(amounts_i[1]), f64::from(amounts_i[2])];
        let window: Vec<JobDemand> = jobs
            .iter()
            .map(|&(n, ref a)| {
                pooled_demand(n, &[f64::from(a[0]), f64::from(a[1]), f64::from(a[2])])
            })
            .collect();
        let style =
            if drop_all { RepairStyle::DropUnconditionally } else { RepairStyle::DropIfRelieves };
        let problem = KnapsackMooProblem::new(window, pooled_model(avail_nodes, &amounts, &order))
            .with_repair_style(style);
        let w = jobs.len();
        let mut mirror = Chromosome::from_mask(mask, w);
        let mut scratch = problem.scratch_from(&mirror);
        prop_assert_eq!(problem.scratch_is_feasible(&scratch), problem.is_feasible(&mirror));
        for &(i, v) in &flips {
            let i = i % w;
            mirror.set(i, v);
            problem.scratch_set(&mut scratch, i, v);
            prop_assert_eq!(
                scratch.selection().bits().collect::<Vec<_>>(),
                mirror.bits().collect::<Vec<_>>()
            );
            prop_assert_eq!(
                problem.scratch_is_feasible(&scratch),
                problem.is_feasible(&mirror),
                "incremental verdict diverged after setting gene {} to {}", i, v
            );
        }
        let mut fused_c = mirror.clone();
        let mut two_step_c = mirror.clone();
        let fused = problem.repair_evaluate(&mut fused_c);
        problem.repair(&mut two_step_c);
        let two_step = problem.evaluate(&two_step_c);
        prop_assert_eq!(
            fused_c.bits().collect::<Vec<_>>(),
            two_step_c.bits().collect::<Vec<_>>()
        );
        prop_assert_eq!(fused.as_slice(), two_step.as_slice());
    }

    /// Repair feasibility also holds with a flavoured per-node resource in
    /// the table (the §5 two-tier SSD shape), under both repair rules.
    #[test]
    fn repair_feasible_with_per_node_flavours(
        n128 in 0u32..20,
        n256 in 0u32..20,
        bb in 0.0f64..500.0,
        jobs in collection::vec((0u32..10, 0.0f64..200.0, 0.0f64..300.0), 1..16),
        mask in any::<u64>(),
    ) {
        let window: Vec<JobDemand> =
            jobs.iter().map(|&(n, b, s)| JobDemand::cpu_bb_ssd(n, b, s)).collect();
        let model = ResourceModel::cpu_bb_ssd(n128, n256, bb);
        for style in [RepairStyle::DropIfRelieves, RepairStyle::DropUnconditionally] {
            let p = KnapsackMooProblem::new(window.clone(), model.clone())
                .with_repair_style(style);
            let mut c = Chromosome::from_mask(mask, jobs.len());
            p.repair(&mut c);
            prop_assert!(p.is_feasible(&c), "repair ({:?}) left an infeasible selection", style);
        }
    }

    /// Reordering the non-node resources permutes the objective vector
    /// component-for-component and leaves Pareto dominance and feasibility
    /// invariant: the model order is presentation, not semantics.
    #[test]
    fn dominance_invariant_under_resource_permutation(
        r in 3usize..=4,
        avail_nodes in 1u32..60,
        amounts in [0.0f64..500.0, 0.0f64..500.0, 0.0f64..500.0],
        jobs in collection::vec((0u32..30, [0.0f64..200.0, 0.0f64..200.0, 0.0f64..200.0]), 1..16),
        masks in [any::<u64>(), any::<u64>()],
        perm_idx in 0usize..6,
    ) {
        let n = r - 1;
        let base: Vec<usize> = (0..n).collect();
        let perm = permutation(n, perm_idx);
        let window: Vec<JobDemand> =
            jobs.iter().map(|&(nd, ref a)| pooled_demand(nd, a)).collect();
        let p0 = KnapsackMooProblem::new(window.clone(), pooled_model(avail_nodes, &amounts, &base));
        let p1 = KnapsackMooProblem::new(window, pooled_model(avail_nodes, &amounts, &perm));
        let a = Chromosome::from_mask(masks[0], jobs.len());
        let b = Chromosome::from_mask(masks[1], jobs.len());
        // The permuted problem's objectives are exactly the original's,
        // reordered: permuted objective 1+j reads original resource 1+perm[j].
        for c in [&a, &b] {
            let o0 = p0.evaluate(c);
            let o1 = p1.evaluate(c);
            prop_assert_eq!(o0[0], o1[0]);
            for (j, &k) in perm.iter().enumerate() {
                prop_assert_eq!(o1[1 + j], o0[1 + k]);
            }
        }
        // Dominance between any two selections is order-independent.
        let (oa0, ob0) = (p0.evaluate(&a), p0.evaluate(&b));
        let (oa1, ob1) = (p1.evaluate(&a), p1.evaluate(&b));
        prop_assert_eq!(
            dominates(oa0.as_slice(), ob0.as_slice()),
            dominates(oa1.as_slice(), ob1.as_slice())
        );
        prop_assert_eq!(
            dominates(ob0.as_slice(), oa0.as_slice()),
            dominates(ob1.as_slice(), oa1.as_slice())
        );
        // So is feasibility.
        prop_assert_eq!(p0.is_feasible(&a), p1.is_feasible(&a));
        prop_assert_eq!(p0.is_feasible(&b), p1.is_feasible(&b));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The GA front stays feasible when the resource order is permuted, and
    /// each front is feasible under the *other* order's problem: feasibility
    /// of evolved solutions does not depend on how the table was written.
    #[test]
    fn ga_front_feasibility_invariant_under_permutation(
        avail_nodes in 1u32..40,
        amounts in [0.0f64..400.0, 0.0f64..400.0, 0.0f64..400.0],
        jobs in collection::vec((0u32..20, [0.0f64..150.0, 0.0f64..150.0, 0.0f64..150.0]), 1..11),
        perm_idx in 0usize..6,
        seed in any::<u64>(),
    ) {
        let base: Vec<usize> = vec![0, 1, 2];
        let perm = permutation(3, perm_idx);
        let window: Vec<JobDemand> =
            jobs.iter().map(|&(n, ref a)| pooled_demand(n, a)).collect();
        let p0 = KnapsackMooProblem::new(window.clone(), pooled_model(avail_nodes, &amounts, &base));
        let p1 = KnapsackMooProblem::new(window, pooled_model(avail_nodes, &amounts, &perm));
        let cfg = GaConfig { population: 10, generations: 25, seed, ..GaConfig::default() };
        let f0 = MooGa::new(cfg.clone()).solve(&p0);
        let f1 = MooGa::new(cfg).solve(&p1);
        prop_assert!(f0.is_mutually_nondominated());
        prop_assert!(f1.is_mutually_nondominated());
        for s in f0.solutions() {
            prop_assert!(p0.is_feasible(&s.chromosome));
            prop_assert!(p1.is_feasible(&s.chromosome));
        }
        for s in f1.solutions() {
            prop_assert!(p1.is_feasible(&s.chromosome));
            prop_assert!(p0.is_feasible(&s.chromosome));
        }
    }
}
