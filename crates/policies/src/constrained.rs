//! The constrained methods (§4.3, §5).
//!
//! "Constrained_CPU ... aims to maximize node utilization under the
//! constraints of burst buffers"; Constrained_BB and (§5) Constrained_SSD
//! swap the first-class objective. Since every resource capacity is already
//! a hard constraint of the MOO formulation, the constrained conversion is
//! the scalarization with a one-hot weight vector — solved with the same
//! GA machinery.

use crate::{GaParams, SelectionPolicy};
use bbsched_core::pools::PoolState;
use bbsched_core::problem::{JobDemand, MooProblem};
use bbsched_core::{MooGa, SolveMode};

/// Which resource the constrained method treats as its first-class
/// objective.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConstrainedResource {
    /// Maximize node utilization (Constrained_CPU).
    Cpu,
    /// Maximize burst-buffer utilization (Constrained_BB).
    BurstBuffer,
    /// Maximize local-SSD utilization (Constrained_SSD, §5 only).
    LocalSsd,
}

impl ConstrainedResource {
    /// The objective index this resource occupies in the paper's two
    /// resource tables (utilization objectives come first, in registration
    /// order: nodes, burst buffer, local SSD).
    fn objective_index(self) -> usize {
        match self {
            ConstrainedResource::Cpu => 0,
            ConstrainedResource::BurstBuffer => 1,
            ConstrainedResource::LocalSsd => 2,
        }
    }
}

/// Single-objective optimization of one resource, other resources acting
/// purely as constraints.
#[derive(Clone, Debug)]
pub struct ConstrainedPolicy {
    /// Index of the first-class objective (= resource registration index).
    objective: usize,
    name: String,
    ga: GaParams,
}

impl ConstrainedPolicy {
    /// Creates the policy optimizing the objective at resource index `r`
    /// (registration order in the system's resource table: 0 = nodes).
    /// Works for any registered resource — the paper's three variants are
    /// `for_resource(0..=2)` with their historical names.
    pub fn for_resource(r: usize, ga: GaParams) -> Self {
        let name = match r {
            0 => "Constrained_CPU".to_string(),
            1 => "Constrained_BB".to_string(),
            2 => "Constrained_SSD".to_string(),
            _ => format!("Constrained_R{r}"),
        };
        Self { objective: r, name, ga }
    }

    /// Creates the policy for one of the paper's named resources.
    pub fn new(resource: ConstrainedResource, ga: GaParams) -> Self {
        Self::for_resource(resource.objective_index(), ga)
    }

    /// Overrides the display name (useful for custom resources).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Index of the optimized objective.
    pub fn objective_index(&self) -> usize {
        self.objective
    }

    /// The optimized resource, when it is one of the paper's three.
    pub fn resource(&self) -> Option<ConstrainedResource> {
        match self.objective {
            0 => Some(ConstrainedResource::Cpu),
            1 => Some(ConstrainedResource::BurstBuffer),
            2 => Some(ConstrainedResource::LocalSsd),
            _ => None,
        }
    }
}

impl SelectionPolicy for ConstrainedPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn select(&mut self, window: &[JobDemand], avail: &PoolState, invocation: u64) -> Vec<usize> {
        if window.is_empty() {
            return Vec::new();
        }
        let problem = crate::build_problem(window, avail);
        let n_obj = problem.normalizers().len();
        assert!(
            self.objective < n_obj,
            "{} requires a system registering resource {} ({} objectives available)",
            self.name,
            self.objective,
            n_obj
        );
        let mut weights = vec![0.0; n_obj];
        weights[self.objective] = 1.0;
        let cfg = self.ga.config(SolveMode::Scalar(weights), invocation);
        MooGa::new(cfg)
            .solve(&problem)
            .into_solutions()
            .into_iter()
            .next()
            .map(|s| s.chromosome.selected().collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection_is_feasible;

    fn table1_window() -> Vec<JobDemand> {
        vec![
            JobDemand::cpu_bb(80, 20_000.0),
            JobDemand::cpu_bb(10, 85_000.0),
            JobDemand::cpu_bb(40, 5_000.0),
            JobDemand::cpu_bb(10, 0.0),
            JobDemand::cpu_bb(20, 0.0),
        ]
    }

    fn fast_ga() -> GaParams {
        GaParams { generations: 300, base_seed: 17, ..GaParams::default() }
    }

    /// Table 1(b): the constrained method "may optimize node utilization
    /// under the constraint of the burst buffers ... select J1 and J5",
    /// achieving 100 % node utilization.
    #[test]
    fn table1_constrained_cpu_reaches_full_nodes() {
        let mut p = ConstrainedPolicy::new(ConstrainedResource::Cpu, fast_ga());
        let avail = PoolState::cpu_bb(100, 100_000.0);
        let window = table1_window();
        let sel = p.select(&window, &avail, 0);
        let nodes: u32 = sel.iter().map(|&i| window[i].nodes).sum();
        assert_eq!(nodes, 100, "selection {sel:?}");
    }

    #[test]
    fn constrained_bb_maximizes_burst_buffer() {
        let mut p = ConstrainedPolicy::new(ConstrainedResource::BurstBuffer, fast_ga());
        let avail = PoolState::cpu_bb(100, 100_000.0);
        let window = table1_window();
        let sel = p.select(&window, &avail, 0);
        let bb: f64 = sel.iter().map(|&i| window[i].bb_gb).sum();
        assert_eq!(bb, 90_000.0, "selection {sel:?}");
        assert!(selection_is_feasible(&window, &avail, &sel));
    }

    #[test]
    #[should_panic]
    fn constrained_ssd_requires_ssd_system() {
        let mut p = ConstrainedPolicy::new(ConstrainedResource::LocalSsd, fast_ga());
        let avail = PoolState::cpu_bb(100, 100.0);
        let _ = p.select(&table1_window(), &avail, 0);
    }

    #[test]
    fn constrained_ssd_on_ssd_system() {
        let mut p = ConstrainedPolicy::new(ConstrainedResource::LocalSsd, fast_ga());
        let avail = PoolState::with_ssd(50, 50, 100_000.0);
        let window =
            vec![JobDemand::cpu_bb_ssd(10, 0.0, 200.0), JobDemand::cpu_bb_ssd(10, 0.0, 32.0)];
        let sel = p.select(&window, &avail, 0);
        // Everything fits; SSD maximization selects both.
        assert_eq!(sel, vec![0, 1]);
    }

    #[test]
    fn names_match_paper() {
        let ga = GaParams::default();
        assert_eq!(ConstrainedPolicy::new(ConstrainedResource::Cpu, ga).name(), "Constrained_CPU");
        assert_eq!(
            ConstrainedPolicy::new(ConstrainedResource::BurstBuffer, ga).name(),
            "Constrained_BB"
        );
        assert_eq!(
            ConstrainedPolicy::new(ConstrainedResource::LocalSsd, ga).name(),
            "Constrained_SSD"
        );
    }
}
