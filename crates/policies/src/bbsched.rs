//! BBSched: the paper's contribution as a selection policy.
//!
//! Per invocation: formulate the window as a MOO problem (§3.2.1 / §5),
//! solve it with the multi-objective GA (§3.2.2), and pick one solution
//! from the Pareto set with the trade-off decision rule (§3.2.4): 2× for
//! CPU + burst buffer, 4× for the four-objective SSD problem.

use crate::{build_problem, GaParams, SelectionPolicy};
use bbsched_core::decision::{choose_preferred, DecisionRule};
use bbsched_core::pools::PoolState;
use bbsched_core::problem::{JobDemand, MooProblem};
use bbsched_core::{MooGa, ParetoFront, SolveMode};

/// The BBSched multi-objective policy.
#[derive(Clone, Debug)]
pub struct BbschedPolicy {
    ga: GaParams,
    /// Optional override of the decision rule's trade-off factor
    /// (defaults: 2× bi-objective, 4× beyond).
    tradeoff_override: Option<f64>,
    /// Optional per-objective gain weights for the decision rule (entry 0,
    /// the node objective, is ignored by the rule).
    gain_weights: Option<Vec<f64>>,
}

impl BbschedPolicy {
    /// Creates BBSched with the given GA hyper-parameters.
    pub fn new(ga: GaParams) -> Self {
        Self { ga, tradeoff_override: None, gain_weights: None }
    }

    /// Overrides the decision rule's trade-off factor (ablation knob).
    pub fn with_tradeoff_factor(mut self, factor: f64) -> Self {
        self.tradeoff_override = Some(factor);
        self
    }

    /// Weights the non-node objectives in the decision rule's improvement
    /// sum (defaults to 1.0 each — the paper's unweighted gains).
    pub fn with_gain_weights(mut self, weights: Vec<f64>) -> Self {
        self.gain_weights = Some(weights);
        self
    }

    /// The decision rule for a problem with `n_obj` objectives: the
    /// paper's 2× rule for the bi-objective problem (§3.2.4), its 4× rule
    /// beyond (§5), with any configured overrides applied.
    fn rule_for(&self, n_obj: usize) -> DecisionRule {
        let mut rule = match self.tradeoff_override {
            Some(f) => DecisionRule::with_factor(f),
            None if n_obj > 2 => DecisionRule::multi_resource(),
            None => DecisionRule::cpu_bb(),
        };
        if let Some(w) = &self.gain_weights {
            rule = rule.with_gain_weights(w);
        }
        rule
    }

    /// Runs one invocation and returns the full Pareto front alongside the
    /// chosen selection — the "multiple solutions ... for decision making"
    /// that distinguish BBSched. Useful for tooling and the examples.
    pub fn solve_with_front(
        &self,
        window: &[JobDemand],
        avail: &PoolState,
        invocation: u64,
    ) -> (ParetoFront, Vec<usize>) {
        if window.is_empty() {
            return (ParetoFront::new(), Vec::new());
        }
        let cfg = self.ga.config(SolveMode::Pareto, invocation);
        // Trade-offs are judged on system-relative utilizations (the
        // paper's "improvement on the burst buffer utilization" is a
        // machine-level percentage); build_problem normalizes by totals.
        let problem = build_problem(window, avail);
        let rule = self.rule_for(problem.normalizers().len());
        self.decide(&problem, cfg, rule)
    }

    fn decide<P: MooProblem>(
        &self,
        problem: &P,
        cfg: bbsched_core::GaConfig,
        rule: DecisionRule,
    ) -> (ParetoFront, Vec<usize>) {
        let front = MooGa::new(cfg).solve(problem);
        let chosen = choose_preferred(&front, problem.normalizers().as_slice(), rule)
            .map(|s| s.chromosome.selected().collect())
            .unwrap_or_default();
        (front, chosen)
    }
}

impl SelectionPolicy for BbschedPolicy {
    fn name(&self) -> &str {
        "BBSched"
    }

    fn select(&mut self, window: &[JobDemand], avail: &PoolState, invocation: u64) -> Vec<usize> {
        self.solve_with_front(window, avail, invocation).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection_is_feasible;

    fn table1_window() -> Vec<JobDemand> {
        vec![
            JobDemand::cpu_bb(80, 20_000.0),
            JobDemand::cpu_bb(10, 85_000.0),
            JobDemand::cpu_bb(40, 5_000.0),
            JobDemand::cpu_bb(10, 0.0),
            JobDemand::cpu_bb(20, 0.0),
        ]
    }

    fn ga() -> GaParams {
        GaParams { generations: 500, base_seed: 4, ..GaParams::default() }
    }

    /// End-to-end Table 1: the Pareto set contains Solutions 2 and 3, and
    /// the decision rule (gain 0.7 BB > 2 x 0.2 node loss) selects
    /// Solution 3 = {J2, J3, J4, J5}.
    #[test]
    fn table1_bbsched_chooses_solution_3() {
        let mut p = BbschedPolicy::new(ga());
        let avail = PoolState::cpu_bb(100, 100_000.0);
        let sel = p.select(&table1_window(), &avail, 0);
        assert_eq!(sel, vec![1, 2, 3, 4], "expected J2..J5");
    }

    #[test]
    fn front_exposes_tradeoffs() {
        let p = BbschedPolicy::new(ga());
        let avail = PoolState::cpu_bb(100, 100_000.0);
        let (front, _) = p.solve_with_front(&table1_window(), &avail, 0);
        assert!(front.len() >= 2, "Pareto set should offer trade-offs");
        assert!(front.is_mutually_nondominated());
    }

    #[test]
    fn tradeoff_override_changes_decision() {
        // With an absurdly high factor, never trade nodes away: stay at
        // the max-node solution (J1 + J5).
        let mut p = BbschedPolicy::new(ga()).with_tradeoff_factor(1_000.0);
        let avail = PoolState::cpu_bb(100, 100_000.0);
        let sel = p.select(&table1_window(), &avail, 0);
        let window = table1_window();
        let nodes: u32 = sel.iter().map(|&i| window[i].nodes).sum();
        assert_eq!(nodes, 100, "selection {sel:?}");
    }

    #[test]
    fn feasible_on_ssd_systems() {
        let mut p = BbschedPolicy::new(ga());
        let avail = PoolState::with_ssd(10, 10, 5_000.0);
        let window = vec![
            JobDemand::cpu_bb_ssd(8, 1_000.0, 200.0),
            JobDemand::cpu_bb_ssd(6, 2_000.0, 64.0),
            JobDemand::cpu_bb_ssd(4, 0.0, 0.0),
            JobDemand::cpu_bb_ssd(12, 3_000.0, 250.0), // needs 12 x 256 > 10
        ];
        for inv in 0..3 {
            let sel = p.select(&window, &avail, inv);
            assert!(selection_is_feasible(&window, &avail, &sel), "{sel:?}");
            assert!(!sel.contains(&3), "job 3 can never fit");
        }
    }

    #[test]
    fn empty_window() {
        let mut p = BbschedPolicy::new(ga());
        let avail = PoolState::cpu_bb(10, 10.0);
        assert!(p.select(&[], &avail, 0).is_empty());
    }

    #[test]
    fn name_matches_paper() {
        assert_eq!(BbschedPolicy::new(ga()).name(), "BBSched");
    }
}
