//! # bbsched-policies
//!
//! The multi-resource job-selection methods compared in §4.3 and §5 of the
//! paper. Each policy answers one question per scheduling invocation:
//! *given the window of candidate jobs and the free resources, which jobs
//! start right now?*
//!
//! | Paper name | Type | Implementation |
//! |---|---|---|
//! | Baseline | naive sequential (Slurm-style) | [`NaivePolicy`] |
//! | Weighted (50/50) | scalarized GA | [`WeightedPolicy`] |
//! | Weighted_CPU (80/20) | scalarized GA | [`WeightedPolicy`] |
//! | Weighted_BB (20/80) | scalarized GA | [`WeightedPolicy`] |
//! | Constrained_CPU | single-objective GA | [`ConstrainedPolicy`] |
//! | Constrained_BB | single-objective GA | [`ConstrainedPolicy`] |
//! | Constrained_SSD (§5) | single-objective GA | [`ConstrainedPolicy`] |
//! | Bin_Packing | Tetris-style greedy | [`BinPackingPolicy`] |
//! | BBSched | Pareto GA + decision rule | [`BbschedPolicy`] |
//!
//! All policies see the same window (built by the base scheduler) and the
//! same [`bbsched_core::PoolState`]; EASY backfilling runs *after* the
//! policy in the simulator, exactly as §4.3 prescribes ("all the methods
//! use EASY backfilling to mitigate resource fragmentation").
//!
//! ## Where a policy sits in the engine
//!
//! The simulator's `Engine` (`bbsched-sim`) runs six fixed phases per
//! scheduling invocation; a [`SelectionPolicy`] is phase 4. It receives
//! the window built in phase 2 (base order + dependency gating) and an
//! availability that phase 3 may have *narrowed*: when a starved head job
//! cannot fit, the engine hands the policy the component-wise minimum of
//! the free pool and the head's shadow-leftover, so no selection can delay
//! the protected reservation. The backfill strategy (phase 5) then fills
//! any holes the policy left. `select` is called once per invocation with
//! a monotone `invocation` counter even when it returns nothing; the
//! engine asserts the returned set fits before starting it (those starts
//! carry `StartReason::Policy` in observer callbacks and job records).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adaptive;
pub mod bbsched;
pub mod bin_packing;
pub mod constrained;
pub mod kind;
pub mod naive;
pub mod weighted;

pub use adaptive::AdaptiveBbschedPolicy;
pub use bbsched::BbschedPolicy;
pub use bin_packing::BinPackingPolicy;
pub use constrained::{ConstrainedPolicy, ConstrainedResource};
pub use kind::PolicyKind;
pub use naive::NaivePolicy;
pub use weighted::{WeightProfile, WeightedPolicy};

use bbsched_core::pools::PoolState;
use bbsched_core::problem::JobDemand;
use serde::{Deserialize, Serialize, Value};

/// A multi-resource window-selection policy.
///
/// Implementations must return indices into `window` whose combined demand
/// fits in `avail` (the simulator asserts this). `invocation` is a
/// monotonically increasing scheduling-event counter that stochastic
/// policies fold into their seed so runs stay reproducible yet invocations
/// stay decorrelated.
pub trait SelectionPolicy: Send {
    /// Display name (matches the paper's figures).
    fn name(&self) -> &str;

    /// Chooses which window jobs start now. Returns ascending window
    /// indices.
    fn select(&mut self, window: &[JobDemand], avail: &PoolState, invocation: u64) -> Vec<usize>;

    /// State this policy carries *across* invocations, as a serde value
    /// tree, or `None` when there is none. The roster policies are
    /// stateless between calls (their per-call seed is derived from
    /// `base_seed` and the invocation counter), so the default is `None`;
    /// policies with persistent state (e.g. an EWMA) override both this
    /// and [`SelectionPolicy::restore_state`].
    fn snapshot_state(&self) -> Option<Value> {
        None
    }

    /// Injects state previously exported by
    /// [`SelectionPolicy::snapshot_state`]. Returns a message when the
    /// value is not state this policy understands. The default accepts
    /// nothing — a stateless policy restored with leftover state from a
    /// stateful one is a caller bug worth diagnosing.
    fn restore_state(&mut self, state: &Value) -> Result<(), String> {
        let _ = state;
        Err(format!("policy `{}` carries no cross-invocation state", self.name()))
    }
}

/// Shared hyper-parameters for the GA-backed policies (weighted,
/// constrained, BBSched). Defaults match §4.3: `G = 500`, `P = 20`,
/// `p_m = 0.05 %`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GaParams {
    /// Population size `P`.
    pub population: usize,
    /// Generations `G`.
    pub generations: usize,
    /// Bit-flip probability `p_m`.
    pub mutation_rate: f64,
    /// Base seed, mixed with the invocation counter per call.
    pub base_seed: u64,
    /// Worker threads for population evaluation.
    pub threads: usize,
    /// Enable the GA's saturation polish (see
    /// [`bbsched_core::ga::GaConfig::saturate`]). Off by default for
    /// fidelity to the paper's operator set.
    pub saturate: bool,
}

impl Default for GaParams {
    fn default() -> Self {
        Self {
            population: 20,
            generations: 500,
            mutation_rate: 0.0005,
            base_seed: 0xbb5c_11ed,
            threads: 1,
            saturate: false,
        }
    }
}

impl GaParams {
    /// Builds a [`bbsched_core::GaConfig`] for one invocation.
    pub fn config(&self, mode: bbsched_core::SolveMode, invocation: u64) -> bbsched_core::GaConfig {
        bbsched_core::GaConfig {
            population: self.population,
            generations: self.generations,
            mutation_rate: self.mutation_rate,
            seed: invocation_seed(self.base_seed, invocation),
            mode,
            threads: self.threads,
            saturate: self.saturate,
            archive: false,
        }
    }
}

/// Builds the MOO problem for the availability at hand: one knapsack over
/// however many resources the pool registers — the §3.2.1 bi-objective
/// problem and the §5 four-objective problem are just the 2- and
/// 3-resource instances.
///
/// Objectives are normalized against the machine's capacities (the paper's
/// utilizations are system-relative): weights like "80% nodes / 20% BB"
/// keep their meaning regardless of what happens to be free right now.
/// Systems with a per-node resource keep the §5 repair semantics
/// (unconditional drops) so historical selection streams are preserved.
pub(crate) fn build_problem(
    window: &[JobDemand],
    avail: &PoolState,
) -> bbsched_core::KnapsackMooProblem {
    use bbsched_core::RepairStyle;
    let style = if avail.ssd_aware() {
        RepairStyle::DropUnconditionally
    } else {
        RepairStyle::DropIfRelieves
    };
    bbsched_core::KnapsackMooProblem::new(window.to_vec(), avail.resource_model())
        .with_normalizers(&avail.machine_normalizers())
        .with_repair_style(style)
}

/// Mixes a base seed with an invocation counter (splitmix64 finalizer).
pub(crate) fn invocation_seed(base: u64, invocation: u64) -> u64 {
    let mut z = base ^ invocation.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Checks that a selection fits `avail`; shared by tests and the simulator.
pub fn selection_is_feasible(window: &[JobDemand], avail: &PoolState, selection: &[usize]) -> bool {
    let mut state = *avail;
    for &i in selection {
        if i >= window.len() || !state.fits(&window[i]) {
            return false;
        }
        let _ = state.alloc(&window[i]);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invocation_seed_varies() {
        let a = invocation_seed(1, 0);
        let b = invocation_seed(1, 1);
        let c = invocation_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, invocation_seed(1, 0));
    }

    #[test]
    fn feasibility_checker() {
        let window = vec![JobDemand::cpu_bb(5, 10.0), JobDemand::cpu_bb(6, 0.0)];
        let avail = PoolState::cpu_bb(10, 10.0);
        assert!(selection_is_feasible(&window, &avail, &[0]));
        assert!(selection_is_feasible(&window, &avail, &[1]));
        assert!(!selection_is_feasible(&window, &avail, &[0, 1]));
        assert!(!selection_is_feasible(&window, &avail, &[7]));
    }
}
