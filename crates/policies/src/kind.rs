//! Policy enumeration and factory.
//!
//! The experiment harness iterates over the eight methods of §4.3 (plus the
//! §5 SSD roster); [`PolicyKind`] names them and [`PolicyKind::build`]
//! instantiates them with shared GA hyper-parameters.

use crate::{
    BbschedPolicy, BinPackingPolicy, ConstrainedPolicy, ConstrainedResource, GaParams, NaivePolicy,
    SelectionPolicy, WeightedPolicy,
};
use serde::{Deserialize, Serialize};

/// The scheduling methods compared in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Naive Slurm-style sequential allocation.
    Baseline,
    /// Weighted sum, 50 % nodes / 50 % burst buffer.
    Weighted,
    /// Weighted sum, 80 % nodes / 20 % burst buffer.
    WeightedCpu,
    /// Weighted sum, 20 % nodes / 80 % burst buffer.
    WeightedBb,
    /// Maximize node utilization under resource constraints.
    ConstrainedCpu,
    /// Maximize burst-buffer utilization under resource constraints.
    ConstrainedBb,
    /// Maximize local-SSD utilization under resource constraints (§5).
    ConstrainedSsd,
    /// Tetris-style multi-dimensional bin packing.
    BinPacking,
    /// BBSched (Pareto GA + decision rule).
    BbSched,
}

impl PolicyKind {
    /// The eight methods of the main evaluation (§4.3), in the paper's
    /// presentation order.
    pub fn main_roster() -> [PolicyKind; 8] {
        [
            PolicyKind::Baseline,
            PolicyKind::Weighted,
            PolicyKind::WeightedCpu,
            PolicyKind::WeightedBb,
            PolicyKind::ConstrainedCpu,
            PolicyKind::ConstrainedBb,
            PolicyKind::BinPacking,
            PolicyKind::BbSched,
        ]
    }

    /// The seven methods of the §5 SSD case study.
    pub fn ssd_roster() -> [PolicyKind; 7] {
        [
            PolicyKind::Baseline,
            PolicyKind::Weighted,
            PolicyKind::ConstrainedCpu,
            PolicyKind::ConstrainedBb,
            PolicyKind::ConstrainedSsd,
            PolicyKind::BinPacking,
            PolicyKind::BbSched,
        ]
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Baseline => "Baseline",
            PolicyKind::Weighted => "Weighted",
            PolicyKind::WeightedCpu => "Weighted_CPU",
            PolicyKind::WeightedBb => "Weighted_BB",
            PolicyKind::ConstrainedCpu => "Constrained_CPU",
            PolicyKind::ConstrainedBb => "Constrained_BB",
            PolicyKind::ConstrainedSsd => "Constrained_SSD",
            PolicyKind::BinPacking => "Bin_Packing",
            PolicyKind::BbSched => "BBSched",
        }
    }

    /// Instantiates the policy with the given GA hyper-parameters (ignored
    /// by the Baseline and Bin_Packing methods, which are not GA-based).
    pub fn build(&self, ga: GaParams) -> Box<dyn SelectionPolicy> {
        match self {
            PolicyKind::Baseline => Box::new(NaivePolicy::new()),
            PolicyKind::Weighted => Box::new(WeightedPolicy::balanced(ga)),
            PolicyKind::WeightedCpu => Box::new(WeightedPolicy::cpu_heavy(ga)),
            PolicyKind::WeightedBb => Box::new(WeightedPolicy::bb_heavy(ga)),
            PolicyKind::ConstrainedCpu => {
                Box::new(ConstrainedPolicy::new(ConstrainedResource::Cpu, ga))
            }
            PolicyKind::ConstrainedBb => {
                Box::new(ConstrainedPolicy::new(ConstrainedResource::BurstBuffer, ga))
            }
            PolicyKind::ConstrainedSsd => {
                Box::new(ConstrainedPolicy::new(ConstrainedResource::LocalSsd, ga))
            }
            PolicyKind::BinPacking => Box::new(BinPackingPolicy::new()),
            PolicyKind::BbSched => Box::new(BbschedPolicy::new(ga)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbsched_core::pools::PoolState;
    use bbsched_core::problem::JobDemand;

    #[test]
    fn rosters_have_paper_sizes() {
        assert_eq!(PolicyKind::main_roster().len(), 8);
        assert_eq!(PolicyKind::ssd_roster().len(), 7);
    }

    #[test]
    fn build_names_match_enum_names() {
        let ga = GaParams { generations: 10, ..GaParams::default() };
        for k in PolicyKind::main_roster() {
            assert_eq!(k.build(ga).name(), k.name());
        }
    }

    #[test]
    fn every_main_policy_produces_feasible_selection() {
        let ga = GaParams { generations: 50, ..GaParams::default() };
        let window = vec![
            JobDemand::cpu_bb(80, 20_000.0),
            JobDemand::cpu_bb(10, 85_000.0),
            JobDemand::cpu_bb(40, 5_000.0),
            JobDemand::cpu_bb(10, 0.0),
            JobDemand::cpu_bb(20, 0.0),
        ];
        let avail = PoolState::cpu_bb(100, 100_000.0);
        for k in PolicyKind::main_roster() {
            let mut p = k.build(ga);
            let sel = p.select(&window, &avail, 0);
            assert!(crate::selection_is_feasible(&window, &avail, &sel), "{}: {sel:?}", k.name());
        }
    }

    #[test]
    fn every_ssd_policy_produces_feasible_selection() {
        let ga = GaParams { generations: 50, ..GaParams::default() };
        let window = vec![
            JobDemand::cpu_bb_ssd(8, 1_000.0, 200.0),
            JobDemand::cpu_bb_ssd(6, 2_000.0, 64.0),
            JobDemand::cpu_bb_ssd(4, 500.0, 128.0),
        ];
        let avail = PoolState::with_ssd(10, 10, 5_000.0);
        for k in PolicyKind::ssd_roster() {
            let mut p = k.build(ga);
            let sel = p.select(&window, &avail, 0);
            assert!(crate::selection_is_feasible(&window, &avail, &sel), "{}: {sel:?}", k.name());
        }
    }

    #[test]
    fn serde_roundtrip() {
        let k = PolicyKind::BbSched;
        let s = serde_json::to_string(&k).unwrap();
        assert_eq!(serde_json::from_str::<PolicyKind>(&s).unwrap(), k);
    }
}
