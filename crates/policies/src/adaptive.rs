//! Adaptive decision making — the paper's stated future work, implemented.
//!
//! §3.2.4: "The decision making may be *adaptive*, such that system
//! managers dynamically adjust their selection policy according to
//! scheduling performance and user response. This adaptive decision making
//! is out of the scope of this work and is a topic of our future work."
//!
//! This policy instantiates that sketch: the trade-off factor of the
//! decision rule tracks the *relative scarcity* of the resources. When
//! free burst buffer is scarce relative to free nodes, a percentage point
//! of burst-buffer utilization is worth more, so the factor drops (the
//! scheduler trades nodes for burst buffer more willingly); when burst
//! buffer is plentiful, the factor rises toward CPU-protective behaviour.
//! An EWMA smooths the signal so one odd invocation cannot whipsaw the
//! policy.

use crate::{BbschedPolicy, GaParams, SelectionPolicy};
use bbsched_core::pools::PoolState;
use bbsched_core::problem::JobDemand;

/// BBSched with a scarcity-adaptive trade-off factor.
#[derive(Clone, Debug)]
pub struct AdaptiveBbschedPolicy {
    ga: GaParams,
    /// Factor used when both resources are equally scarce (§3.2.4's 2×).
    pub base_factor: f64,
    /// Clamp range for the adapted factor.
    pub factor_bounds: (f64, f64),
    /// EWMA weight of the newest observation in `(0, 1]`.
    pub smoothing: f64,
    ewma: Option<f64>,
}

impl AdaptiveBbschedPolicy {
    /// Creates the policy with sensible defaults (base 2×, factor clamped
    /// to `[0.5, 8]`, EWMA weight 0.3).
    pub fn new(ga: GaParams) -> Self {
        Self { ga, base_factor: 2.0, factor_bounds: (0.5, 8.0), smoothing: 0.3, ewma: None }
    }

    /// The factor the policy would use for the given availability, after
    /// smoothing is applied to the raw scarcity signal.
    pub fn current_factor(&self) -> Option<f64> {
        self.ewma
    }

    /// Raw scarcity-driven factor before smoothing: `base × free_bb% /
    /// free_node%`, clamped. Equal scarcity gives exactly `base`.
    pub fn raw_factor(&self, avail: &PoolState) -> f64 {
        let free_node_frac = f64::from(avail.nodes()) / f64::from(avail.total_nodes()).max(1.0);
        let free_bb_frac = avail.bb_gb() / avail.total_bb_gb().max(1.0);
        let ratio = (free_bb_frac + 1e-6) / (free_node_frac + 1e-6);
        (self.base_factor * ratio).clamp(self.factor_bounds.0, self.factor_bounds.1)
    }

    fn adapt(&mut self, avail: &PoolState) -> f64 {
        let raw = self.raw_factor(avail);
        let next = match self.ewma {
            Some(prev) => prev + self.smoothing * (raw - prev),
            None => raw,
        };
        self.ewma = Some(next);
        next
    }
}

impl SelectionPolicy for AdaptiveBbschedPolicy {
    fn name(&self) -> &str {
        "BBSched_Adaptive"
    }

    fn select(&mut self, window: &[JobDemand], avail: &PoolState, invocation: u64) -> Vec<usize> {
        let factor = self.adapt(avail);
        let mut inner = BbschedPolicy::new(self.ga).with_tradeoff_factor(factor);
        inner.select(window, avail, invocation)
    }

    fn snapshot_state(&self) -> Option<serde::Value> {
        self.ewma.map(|e| serde::Value::Map(vec![(String::from("ewma"), serde::Value::F64(e))]))
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), String> {
        let entries = state.as_map().ok_or("adaptive policy state must be a map")?;
        match entries.iter().find(|(k, _)| k == "ewma").map(|(_, v)| v) {
            Some(serde::Value::F64(e)) if e.is_finite() => {
                self.ewma = Some(*e);
                Ok(())
            }
            other => Err(format!("adaptive policy state needs a finite `ewma`, got {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection_is_feasible;

    fn ga() -> GaParams {
        GaParams { generations: 300, base_seed: 4, ..GaParams::default() }
    }

    fn table1_window() -> Vec<JobDemand> {
        vec![
            JobDemand::cpu_bb(80, 20_000.0),
            JobDemand::cpu_bb(10, 85_000.0),
            JobDemand::cpu_bb(40, 5_000.0),
            JobDemand::cpu_bb(10, 0.0),
            JobDemand::cpu_bb(20, 0.0),
        ]
    }

    #[test]
    fn factor_tracks_scarcity() {
        let p = AdaptiveBbschedPolicy::new(ga());
        // Everything free: factor = base.
        let balanced = PoolState::cpu_bb(100, 100_000.0);
        assert!((p.raw_factor(&balanced) - 2.0).abs() < 1e-3);
        // BB scarce (10% free) vs nodes plentiful: factor drops.
        let mut bb_scarce = balanced;
        bb_scarce.set_free_bb_gb(10_000.0);
        assert!(p.raw_factor(&bb_scarce) < 1.0);
        // Nodes scarce, BB free: factor rises (clamped).
        let mut node_scarce = balanced;
        node_scarce.set_free_nodes(10);
        assert!(p.raw_factor(&node_scarce) > 4.0);
    }

    #[test]
    fn factor_is_clamped() {
        let p = AdaptiveBbschedPolicy::new(ga());
        let mut extreme = PoolState::cpu_bb(100, 100_000.0);
        extreme.set_free_nodes(0);
        assert!(p.raw_factor(&extreme) <= 8.0);
        extreme.set_free_nodes(100);
        extreme.set_free_bb_gb(0.0);
        assert!(p.raw_factor(&extreme) >= 0.5);
    }

    #[test]
    fn ewma_smooths_changes() {
        let mut p = AdaptiveBbschedPolicy::new(ga());
        let balanced = PoolState::cpu_bb(100, 100_000.0);
        let _ = p.adapt(&balanced);
        assert!((p.current_factor().unwrap() - 2.0).abs() < 1e-3);
        // A sudden BB crunch moves the factor only 30% of the way.
        let mut crunch = balanced;
        crunch.set_free_bb_gb(1_000.0);
        let f = p.adapt(&crunch);
        assert!(f < 2.0, "factor must fall under BB scarcity");
        assert!(f > p.raw_factor(&crunch), "but not all the way at once");
    }

    #[test]
    fn selections_remain_feasible() {
        let mut p = AdaptiveBbschedPolicy::new(ga());
        let window = table1_window();
        let avail = PoolState::cpu_bb(100, 100_000.0);
        for inv in 0..4 {
            let sel = p.select(&window, &avail, inv);
            assert!(selection_is_feasible(&window, &avail, &sel), "{sel:?}");
        }
    }

    #[test]
    fn ewma_state_roundtrips_through_snapshot() {
        let mut p = AdaptiveBbschedPolicy::new(ga());
        assert!(p.snapshot_state().is_none(), "fresh policy has no state");
        assert!(p.restore_state(&serde::Value::Null).is_err());
        let _ = p.adapt(&PoolState::cpu_bb(100, 100_000.0));
        let state = p.snapshot_state().expect("adapted policy exports its EWMA");
        let mut q = AdaptiveBbschedPolicy::new(ga());
        q.restore_state(&state).unwrap();
        assert_eq!(q.current_factor(), p.current_factor());
    }

    #[test]
    fn behaves_like_bbsched_when_balanced() {
        // With everything free the adapted factor equals the paper's 2x,
        // so Table 1 resolves to Solution 3 just like plain BBSched.
        let mut p = AdaptiveBbschedPolicy::new(ga());
        let avail = PoolState::cpu_bb(100, 100_000.0);
        let sel = p.select(&table1_window(), &avail, 0);
        assert_eq!(sel, vec![1, 2, 3, 4]);
    }
}
