//! The bin-packing method (§4.3).
//!
//! "This method is analogous to the bin packing method used in [Grandl et
//! al., Tetris]. We compute alignment score (a dot product between the
//! vector of machine's available resources and the job's requested
//! resources) for jobs in the window and then allocate jobs with highest
//! alignment score recursively until the machine cannot accommodate any
//! further jobs."
//!
//! Both vectors are normalized by the capacities at invocation start so
//! nodes and gigabytes contribute commensurably (Tetris normalizes demands
//! to machine capacity for the same reason).

use crate::SelectionPolicy;
use bbsched_core::pools::PoolState;
use bbsched_core::problem::JobDemand;

/// Tetris-style greedy multi-dimensional packing.
#[derive(Clone, Debug, Default)]
pub struct BinPackingPolicy;

impl BinPackingPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

/// A job's total footprint on resource `r`: per-node demands multiply by
/// the node count, pooled demands are already totals.
fn total_demand(s: &PoolState, d: &JobDemand, r: usize) -> f64 {
    if s.per_node_index() == Some(r) {
        s.demand_of(d, r) * f64::from(d.nodes)
    } else {
        s.demand_of(d, r)
    }
}

impl SelectionPolicy for BinPackingPolicy {
    fn name(&self) -> &str {
        "Bin_Packing"
    }

    fn select(&mut self, window: &[JobDemand], avail: &PoolState, _invocation: u64) -> Vec<usize> {
        let mut state = *avail;
        let n_res = avail.num_resources();
        // Tetris normalizes both vectors by machine capacity so nodes and
        // gigabytes are commensurable. machine_normalizers is one entry per
        // resource (plus waste entries beyond n_res, not used here).
        let norm: Vec<f64> =
            avail.machine_normalizers()[..n_res].iter().map(|&c| c.max(1.0)).collect();
        let mut selected: Vec<usize> = Vec::new();
        let mut taken = vec![false; window.len()];

        loop {
            let remaining: Vec<f64> = (0..n_res).map(|r| state.remaining_capacity_of(r)).collect();
            let mut best: Option<(usize, f64)> = None;
            for (i, d) in window.iter().enumerate() {
                if taken[i] || !state.fits(d) {
                    continue;
                }
                let score: f64 = (0..n_res)
                    .map(|r| (total_demand(&state, d, r) / norm[r]) * (remaining[r] / norm[r]))
                    .sum();
                // Ties break toward the front of the window (strict >).
                if best.map(|(_, s)| score > s).unwrap_or(true) {
                    best = Some((i, score));
                }
            }
            match best {
                Some((i, _)) => {
                    let _ = state.alloc(&window[i]);
                    taken[i] = true;
                    selected.push(i);
                }
                None => break,
            }
        }
        selected.sort_unstable();
        selected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection_is_feasible;

    fn table1_window() -> Vec<JobDemand> {
        vec![
            JobDemand::cpu_bb(80, 20_000.0),
            JobDemand::cpu_bb(10, 85_000.0),
            JobDemand::cpu_bb(40, 5_000.0),
            JobDemand::cpu_bb(10, 0.0),
            JobDemand::cpu_bb(20, 0.0),
        ]
    }

    /// Table 1(b): "A bin packing method may pick jobs with the maximum dot
    /// product ... The ... bin packing methods select J1 and J5" (100 %
    /// nodes, 20 % burst buffer).
    #[test]
    fn table1_bin_packing_selects_j1_j5() {
        let window = table1_window();
        let avail = PoolState::cpu_bb(100, 100_000.0);
        let sel = BinPackingPolicy::new().select(&window, &avail, 0);
        let nodes: u32 = sel.iter().map(|&i| window[i].nodes).sum();
        assert_eq!(nodes, 100, "selection {sel:?}");
        assert!(sel.contains(&0) && sel.contains(&4), "selection {sel:?}");
    }

    #[test]
    fn packs_until_nothing_fits() {
        let window = vec![JobDemand::cpu_bb(30, 0.0); 5];
        let avail = PoolState::cpu_bb(100, 100.0);
        let sel = BinPackingPolicy::new().select(&window, &avail, 0);
        assert_eq!(sel.len(), 3); // 3 x 30 = 90 <= 100, a 4th would not fit
        assert!(selection_is_feasible(&window, &avail, &sel));
    }

    #[test]
    fn skips_blockers_unlike_naive() {
        let window = vec![
            JobDemand::cpu_bb(1_000, 0.0), // cannot fit
            JobDemand::cpu_bb(10, 0.0),
        ];
        let avail = PoolState::cpu_bb(100, 100.0);
        let sel = BinPackingPolicy::new().select(&window, &avail, 0);
        assert_eq!(sel, vec![1]);
    }

    #[test]
    fn empty_window() {
        let avail = PoolState::cpu_bb(100, 100.0);
        assert!(BinPackingPolicy::new().select(&[], &avail, 0).is_empty());
    }

    #[test]
    fn ssd_dimension_contributes_to_alignment() {
        let avail = PoolState::with_ssd(2, 2, 1_000.0);
        let window = vec![JobDemand::cpu_bb_ssd(2, 0.0, 256.0), JobDemand::cpu_bb_ssd(2, 0.0, 1.0)];
        let sel = BinPackingPolicy::new().select(&window, &avail, 0);
        // Both fit; the SSD-heavy job has the higher alignment and is
        // picked first, but both end up selected.
        assert_eq!(sel, vec![0, 1]);
        assert!(selection_is_feasible(&window, &avail, &sel));
    }

    #[test]
    fn deterministic() {
        let window = table1_window();
        let avail = PoolState::cpu_bb(100, 100_000.0);
        let a = BinPackingPolicy::new().select(&window, &avail, 0);
        let b = BinPackingPolicy::new().select(&window, &avail, 99);
        assert_eq!(a, b);
    }
}
