//! The naive (Baseline) method.
//!
//! §1: "Slurm allocates the jobs from the waiting queue in sequence until
//! either CPU or burst buffer is exhausted. We denote it as naive method."
//! Concretely: walk the window in base-scheduler priority order, starting
//! every job until the first one that does not fit; stop there, preserving
//! strict priority order (jobs behind a blocked head do not jump it —
//! that is EASY backfilling's role, handled later by the simulator).

use crate::SelectionPolicy;
use bbsched_core::pools::PoolState;
use bbsched_core::problem::JobDemand;

/// Slurm-style sequential allocation (the paper's Baseline).
#[derive(Clone, Debug, Default)]
pub struct NaivePolicy;

impl NaivePolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl SelectionPolicy for NaivePolicy {
    fn name(&self) -> &str {
        "Baseline"
    }

    fn select(&mut self, window: &[JobDemand], avail: &PoolState, _invocation: u64) -> Vec<usize> {
        let mut state = *avail;
        let mut selected = Vec::new();
        for (i, d) in window.iter().enumerate() {
            if state.fits(d) {
                let _ = state.alloc(d);
                selected.push(i);
            } else {
                break; // head-of-line blocking: the naive method stops here
            }
        }
        selected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection_is_feasible;

    /// Table 1: the naive method selects J1 and stops at J2 (insufficient
    /// burst buffer); J4 only starts later via backfilling.
    #[test]
    fn table1_naive_selects_j1_only() {
        let window = vec![
            JobDemand::cpu_bb(80, 20_000.0),
            JobDemand::cpu_bb(10, 85_000.0),
            JobDemand::cpu_bb(40, 5_000.0),
            JobDemand::cpu_bb(10, 0.0),
            JobDemand::cpu_bb(20, 0.0),
        ];
        let avail = PoolState::cpu_bb(100, 100_000.0);
        let sel = NaivePolicy::new().select(&window, &avail, 0);
        assert_eq!(sel, vec![0]);
    }

    #[test]
    fn takes_all_when_everything_fits() {
        let window = vec![JobDemand::cpu_bb(10, 0.0); 5];
        let avail = PoolState::cpu_bb(100, 100.0);
        let sel = NaivePolicy::new().select(&window, &avail, 0);
        assert_eq!(sel, vec![0, 1, 2, 3, 4]);
        assert!(selection_is_feasible(&window, &avail, &sel));
    }

    #[test]
    fn stops_at_first_blocker_even_if_later_fit() {
        let window = vec![
            JobDemand::cpu_bb(10, 0.0),
            JobDemand::cpu_bb(1_000, 0.0), // blocker
            JobDemand::cpu_bb(10, 0.0),    // would fit, but must wait
        ];
        let avail = PoolState::cpu_bb(100, 100.0);
        let sel = NaivePolicy::new().select(&window, &avail, 0);
        assert_eq!(sel, vec![0]);
    }

    #[test]
    fn empty_window() {
        let avail = PoolState::cpu_bb(100, 100.0);
        assert!(NaivePolicy::new().select(&[], &avail, 0).is_empty());
    }

    #[test]
    fn ssd_aware_blocking() {
        let window = vec![
            JobDemand::cpu_bb_ssd(2, 0.0, 200.0), // needs 2 x 256-GB nodes
            JobDemand::cpu_bb_ssd(1, 0.0, 64.0),
        ];
        // Only one 256-GB node free: the head job blocks everything.
        let avail = PoolState::with_ssd(4, 1, 100.0);
        let sel = NaivePolicy::new().select(&window, &avail, 0);
        assert!(sel.is_empty());
    }
}
