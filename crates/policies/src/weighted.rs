//! The weighted-sum methods (§4.3).
//!
//! "This method aims to maximize a weighted combination of multiple
//! objectives. The weights are site tunable parameters." Three presets are
//! evaluated: Weighted (50/50), Weighted_CPU (80/20), Weighted_BB (20/80);
//! §5 adds an equally-weighted four-objective variant. Weights apply to
//! *normalized* utilizations (objective / available capacity), so "80 %
//! node weight" means what the paper's example in §1 means.

use crate::{GaParams, SelectionPolicy};
use bbsched_core::pools::PoolState;
use bbsched_core::problem::{JobDemand, MooProblem};
use bbsched_core::{MooGa, SolveMode};

/// A set of weight vectors keyed by objective count.
///
/// Sites tune weights per system, and a weight vector only means something
/// for a specific objective dimensionality — the paper's Weighted_CPU is
/// 80/20 on Cori's bi-objective problem but 80/10/5/5 on the
/// four-objective SSD problem. A profile carries one R-length vector per
/// dimensionality the policy may encounter.
#[derive(Clone, Debug)]
pub struct WeightProfile {
    vectors: Vec<Vec<f64>>,
}

impl WeightProfile {
    /// A profile with a single R-length weight vector (the policy then
    /// only accepts systems whose problems have exactly R objectives).
    pub fn uniform(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "weight vector must be non-empty");
        Self { vectors: vec![weights] }
    }

    /// A profile from several weight vectors of distinct lengths.
    pub fn from_vectors(vectors: Vec<Vec<f64>>) -> Self {
        assert!(!vectors.is_empty(), "profile needs at least one weight vector");
        for (i, v) in vectors.iter().enumerate() {
            assert!(!v.is_empty(), "weight vector {i} is empty");
            assert!(
                !vectors[..i].iter().any(|u| u.len() == v.len()),
                "two weight vectors of length {}",
                v.len()
            );
        }
        Self { vectors }
    }

    /// The weight vector for an `n_obj`-objective problem.
    ///
    /// # Panics
    /// Panics if the profile has no vector of that length.
    pub fn weights_for(&self, n_obj: usize) -> &[f64] {
        self.vectors
            .iter()
            .find(|v| v.len() == n_obj)
            .unwrap_or_else(|| {
                panic!(
                    "weight profile has no vector for {n_obj} objectives (available: {:?})",
                    self.vectors.iter().map(Vec::len).collect::<Vec<_>>()
                )
            })
            .as_slice()
    }
}

/// Weighted-sum scalarization solved with the same GA machinery as
/// BBSched (the paper's weighted methods are "converted" single-objective
/// versions of the identical problem).
#[derive(Clone, Debug)]
pub struct WeightedPolicy {
    name: String,
    profile: WeightProfile,
    ga: GaParams,
}

impl WeightedPolicy {
    /// Fully custom weights for the paper's two problem shapes
    /// (bi-objective and four-objective).
    pub fn new(
        name: impl Into<String>,
        weights2: [f64; 2],
        weights4: [f64; 4],
        ga: GaParams,
    ) -> Self {
        Self::with_profile(
            name,
            WeightProfile::from_vectors(vec![weights2.to_vec(), weights4.to_vec()]),
            ga,
        )
    }

    /// A policy scoring with one R-length weight vector (for systems with
    /// custom resource tables).
    pub fn with_weights(name: impl Into<String>, weights: Vec<f64>, ga: GaParams) -> Self {
        Self::with_profile(name, WeightProfile::uniform(weights), ga)
    }

    /// A policy with a full weight profile.
    pub fn with_profile(name: impl Into<String>, profile: WeightProfile, ga: GaParams) -> Self {
        Self { name: name.into(), profile, ga }
    }

    /// "Weighted": CPU and burst buffer equally important (50/50);
    /// §5 variant weights all four objectives equally.
    pub fn balanced(ga: GaParams) -> Self {
        Self::new("Weighted", [0.5, 0.5], [0.25, 0.25, 0.25, 0.25], ga)
    }

    /// "Weighted_CPU": CPU considered more important (80/20).
    pub fn cpu_heavy(ga: GaParams) -> Self {
        Self::new("Weighted_CPU", [0.8, 0.2], [0.8, 0.1, 0.05, 0.05], ga)
    }

    /// "Weighted_BB": burst buffer considered more important (20/80).
    pub fn bb_heavy(ga: GaParams) -> Self {
        Self::new("Weighted_BB", [0.2, 0.8], [0.2, 0.6, 0.1, 0.1], ga)
    }
}

impl SelectionPolicy for WeightedPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn select(&mut self, window: &[JobDemand], avail: &PoolState, invocation: u64) -> Vec<usize> {
        if window.is_empty() {
            return Vec::new();
        }
        let problem = crate::build_problem(window, avail);
        let weights = self.profile.weights_for(problem.normalizers().len()).to_vec();
        let cfg = self.ga.config(SolveMode::Scalar(weights), invocation);
        MooGa::new(cfg)
            .solve(&problem)
            .into_solutions()
            .into_iter()
            .next()
            .map(|s| s.chromosome.selected().collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection_is_feasible;

    fn table1_window() -> Vec<JobDemand> {
        vec![
            JobDemand::cpu_bb(80, 20_000.0),
            JobDemand::cpu_bb(10, 85_000.0),
            JobDemand::cpu_bb(40, 5_000.0),
            JobDemand::cpu_bb(10, 0.0),
            JobDemand::cpu_bb(20, 0.0),
        ]
    }

    fn fast_ga() -> GaParams {
        GaParams { generations: 300, base_seed: 11, ..GaParams::default() }
    }

    /// Table 1(b): "A weighted method may use a linear combination of node
    /// utilization with 80% weight and burst buffer utilization with 20%
    /// weight ... select J1 and J5 for execution" (Solution 2).
    #[test]
    fn table1_weighted_cpu_picks_solution_2() {
        let mut p = WeightedPolicy::cpu_heavy(fast_ga());
        let avail = PoolState::cpu_bb(100, 100_000.0);
        let sel = p.select(&table1_window(), &avail, 0);
        assert_eq!(sel, vec![0, 4], "expected J1 + J5");
    }

    #[test]
    fn bb_heavy_prefers_burst_buffer() {
        let mut p = WeightedPolicy::bb_heavy(fast_ga());
        let avail = PoolState::cpu_bb(100, 100_000.0);
        let window = table1_window();
        let sel = p.select(&window, &avail, 0);
        // Solution 3 (J2..J5): bb 0.9, nodes 0.8 -> 0.2*0.8 + 0.8*0.9 = 0.88;
        // Solution 2 scores 0.2*1.0 + 0.8*0.2 = 0.36. Must pick J2.
        assert!(sel.contains(&1), "selection {sel:?} should contain J2");
        assert!(selection_is_feasible(&window, &avail, &sel));
    }

    #[test]
    fn selections_always_feasible() {
        let mut p = WeightedPolicy::balanced(fast_ga());
        let avail = PoolState::cpu_bb(50, 10_000.0);
        let window = table1_window();
        for inv in 0..5 {
            let sel = p.select(&window, &avail, inv);
            assert!(selection_is_feasible(&window, &avail, &sel));
        }
    }

    #[test]
    fn empty_window_returns_nothing() {
        let mut p = WeightedPolicy::balanced(fast_ga());
        let avail = PoolState::cpu_bb(10, 10.0);
        assert!(p.select(&[], &avail, 0).is_empty());
    }

    #[test]
    fn names_match_paper() {
        let ga = GaParams::default();
        assert_eq!(WeightedPolicy::balanced(ga).name(), "Weighted");
        assert_eq!(WeightedPolicy::cpu_heavy(ga).name(), "Weighted_CPU");
        assert_eq!(WeightedPolicy::bb_heavy(ga).name(), "Weighted_BB");
    }
}
