//! The weighted-sum methods (§4.3).
//!
//! "This method aims to maximize a weighted combination of multiple
//! objectives. The weights are site tunable parameters." Three presets are
//! evaluated: Weighted (50/50), Weighted_CPU (80/20), Weighted_BB (20/80);
//! §5 adds an equally-weighted four-objective variant. Weights apply to
//! *normalized* utilizations (objective / available capacity), so "80 %
//! node weight" means what the paper's example in §1 means.

use crate::{solve_window, GaParams, SelectionPolicy};
use bbsched_core::pools::PoolState;
use bbsched_core::problem::JobDemand;
use bbsched_core::{MooGa, SolveMode};

/// Weighted-sum scalarization solved with the same GA machinery as
/// BBSched (the paper's weighted methods are "converted" single-objective
/// versions of the identical problem).
#[derive(Clone, Debug)]
pub struct WeightedPolicy {
    name: String,
    /// Weights for the bi-objective (node, burst buffer) problem.
    weights2: [f64; 2],
    /// Weights for the §5 four-objective problem.
    weights4: [f64; 4],
    ga: GaParams,
}

impl WeightedPolicy {
    /// Fully custom weights.
    pub fn new(name: impl Into<String>, weights2: [f64; 2], weights4: [f64; 4], ga: GaParams) -> Self {
        Self { name: name.into(), weights2, weights4, ga }
    }

    /// "Weighted": CPU and burst buffer equally important (50/50);
    /// §5 variant weights all four objectives equally.
    pub fn balanced(ga: GaParams) -> Self {
        Self::new("Weighted", [0.5, 0.5], [0.25, 0.25, 0.25, 0.25], ga)
    }

    /// "Weighted_CPU": CPU considered more important (80/20).
    pub fn cpu_heavy(ga: GaParams) -> Self {
        Self::new("Weighted_CPU", [0.8, 0.2], [0.8, 0.1, 0.05, 0.05], ga)
    }

    /// "Weighted_BB": burst buffer considered more important (20/80).
    pub fn bb_heavy(ga: GaParams) -> Self {
        Self::new("Weighted_BB", [0.2, 0.8], [0.2, 0.6, 0.1, 0.1], ga)
    }
}

impl SelectionPolicy for WeightedPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn select(&mut self, window: &[JobDemand], avail: &PoolState, invocation: u64) -> Vec<usize> {
        if window.is_empty() {
            return Vec::new();
        }
        let weights: Vec<f64> = if avail.ssd_aware {
            self.weights4.to_vec()
        } else {
            self.weights2.to_vec()
        };
        let cfg = self.ga.config(SolveMode::Scalar(weights), invocation);
        solve_window(window, avail, |p| {
            let solver = MooGa::new(cfg);
            solver
                .solve(p)
                .into_solutions()
                .into_iter()
                .next()
                .map(|s| s.chromosome)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection_is_feasible;

    fn table1_window() -> Vec<JobDemand> {
        vec![
            JobDemand::cpu_bb(80, 20_000.0),
            JobDemand::cpu_bb(10, 85_000.0),
            JobDemand::cpu_bb(40, 5_000.0),
            JobDemand::cpu_bb(10, 0.0),
            JobDemand::cpu_bb(20, 0.0),
        ]
    }

    fn fast_ga() -> GaParams {
        GaParams { generations: 300, base_seed: 11, ..GaParams::default() }
    }

    /// Table 1(b): "A weighted method may use a linear combination of node
    /// utilization with 80% weight and burst buffer utilization with 20%
    /// weight ... select J1 and J5 for execution" (Solution 2).
    #[test]
    fn table1_weighted_cpu_picks_solution_2() {
        let mut p = WeightedPolicy::cpu_heavy(fast_ga());
        let avail = PoolState::cpu_bb(100, 100_000.0);
        let sel = p.select(&table1_window(), &avail, 0);
        assert_eq!(sel, vec![0, 4], "expected J1 + J5");
    }

    #[test]
    fn bb_heavy_prefers_burst_buffer() {
        let mut p = WeightedPolicy::bb_heavy(fast_ga());
        let avail = PoolState::cpu_bb(100, 100_000.0);
        let window = table1_window();
        let sel = p.select(&window, &avail, 0);
        // Solution 3 (J2..J5): bb 0.9, nodes 0.8 -> 0.2*0.8 + 0.8*0.9 = 0.88;
        // Solution 2 scores 0.2*1.0 + 0.8*0.2 = 0.36. Must pick J2.
        assert!(sel.contains(&1), "selection {sel:?} should contain J2");
        assert!(selection_is_feasible(&window, &avail, &sel));
    }

    #[test]
    fn selections_always_feasible() {
        let mut p = WeightedPolicy::balanced(fast_ga());
        let avail = PoolState::cpu_bb(50, 10_000.0);
        let window = table1_window();
        for inv in 0..5 {
            let sel = p.select(&window, &avail, inv);
            assert!(selection_is_feasible(&window, &avail, &sel));
        }
    }

    #[test]
    fn empty_window_returns_nothing() {
        let mut p = WeightedPolicy::balanced(fast_ga());
        let avail = PoolState::cpu_bb(10, 10.0);
        assert!(p.select(&[], &avail, 0).is_empty());
    }

    #[test]
    fn names_match_paper() {
        let ga = GaParams::default();
        assert_eq!(WeightedPolicy::balanced(ga).name(), "Weighted");
        assert_eq!(WeightedPolicy::cpu_heavy(ga).name(), "Weighted_CPU");
        assert_eq!(WeightedPolicy::bb_heavy(ga).name(), "Weighted_BB");
    }
}
