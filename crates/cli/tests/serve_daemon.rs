//! Process-level tests for the `serve` daemon (DESIGN.md §13): the
//! journaled decision stream matches the golden replay fixture, a
//! SIGTERM'd daemon recovers with `--recover` to a byte-identical
//! concatenated stream, live policy hot-swap is journaled and
//! deterministic, and `snapshot inspect` reports snapshot facts with
//! typed exit codes.

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Stdio};

fn ci_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../ci")
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bbsched_serve_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn bbsched() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bbsched"))
}

/// The fixture scenario flags shared with `ci/replay_expected.jsonl`.
const SCENARIO: [&str; 6] = ["--machine", "cori", "--scale", "0.05", "--policy", "Baseline"];

fn fixture_events() -> String {
    std::fs::read_to_string(ci_dir().join("replay_events.jsonl")).unwrap()
}

fn fixture_expected() -> String {
    std::fs::read_to_string(ci_dir().join("replay_expected.jsonl")).unwrap()
}

/// Snapshot files in a journal directory, oldest first.
fn snapshots(dir: &std::path::Path) -> Vec<PathBuf> {
    let mut snaps: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("snap-") && n.ends_with(".ckpt"))
        })
        .collect();
    snaps.sort();
    snaps
}

/// A journaling daemon fed the fixture file emits exactly the golden
/// replay stream, periodic stats lines on stderr, and inspectable
/// snapshots.
#[test]
fn serve_over_file_matches_the_golden_stream() {
    let dir = tempdir("golden");
    let events = ci_dir().join("replay_events.jsonl");
    let out = bbsched()
        .args(["serve", "--events", events.to_str().unwrap()])
        .args(SCENARIO)
        .args(["--journal", dir.to_str().unwrap(), "--snapshot-every", "40", "--stats-every", "25"])
        .output()
        .expect("binary must spawn");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "serve failed: {stderr}");
    assert_eq!(String::from_utf8_lossy(&out.stdout), fixture_expected(), "decision stream");
    assert!(stderr.contains("served 200 lines (200 job events)"), "{stderr}");
    assert!(stderr.contains("{\"type\":\"stats\","), "periodic stats lines: {stderr}");

    let snaps = snapshots(&dir);
    assert!(!snaps.is_empty(), "rolling snapshots were written");
    assert!(snaps.len() <= 3, "default retention keeps at most 3, got {}", snaps.len());
    assert!(dir.join("events.wal").exists(), "journal was written");

    let inspect = bbsched()
        .args(["snapshot", "inspect", snaps.last().unwrap().to_str().unwrap()])
        .output()
        .expect("binary must spawn");
    assert_eq!(inspect.status.code(), Some(0));
    let report = String::from_utf8_lossy(&inspect.stdout);
    for needle in ["daemon checkpoint", "binary", "schema version: 1", "Baseline"] {
        assert!(report.contains(needle), "inspect output missing '{needle}':\n{report}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Kill-and-recover is lossless: a daemon reading stdin is SIGTERM'd
/// mid-stream (graceful drain: final snapshot, no flush), then a second
/// process recovers the journal directory and resumes from the fixture
/// file. head-stdout + tail-stdout must equal the golden stream byte
/// for byte, wherever the signal lands.
#[test]
fn sigterm_drain_then_recover_is_byte_identical() {
    let dir = tempdir("term");
    let events = fixture_events();
    let head_lines: Vec<&str> = events.lines().take(150).collect();

    let mut child = bbsched()
        .args(["serve", "--events", "-"])
        .args(SCENARIO)
        .args(["--journal", dir.to_str().unwrap(), "--snapshot-every", "20"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary must spawn");
    let mut stdin = child.stdin.take().unwrap();
    for line in &head_lines {
        writeln!(stdin, "{line}").unwrap();
    }
    stdin.flush().unwrap();
    // Let the daemon drain the pipe, then signal it; only then close
    // stdin so a daemon parked in read(2) reaches its EOF term check.
    std::thread::sleep(std::time::Duration::from_millis(300));
    let kill = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill must run");
    assert!(kill.success());
    std::thread::sleep(std::time::Duration::from_millis(200));
    drop(stdin);
    let head = child.wait_with_output().unwrap();
    let head_err = String::from_utf8_lossy(&head.stderr);
    assert!(head.status.success(), "head exited with {:?}: {head_err}", head.status.code());
    assert!(
        head_err.contains("sigterm: drained at line") && head_err.contains("final snapshot"),
        "{head_err}"
    );

    let events_path = ci_dir().join("replay_events.jsonl");
    let tail = bbsched()
        .args(["serve", "--events", events_path.to_str().unwrap()])
        .args(SCENARIO)
        .args(["--recover", dir.to_str().unwrap(), "--snapshot-every", "20"])
        .output()
        .expect("binary must spawn");
    let tail_err = String::from_utf8_lossy(&tail.stderr);
    assert!(tail.status.success(), "recovery failed: {tail_err}");
    assert!(tail_err.contains("recovered: snapshot at line"), "{tail_err}");

    let mut combined = String::from_utf8(head.stdout).unwrap();
    combined.push_str(&String::from_utf8(tail.stdout).unwrap());
    assert_eq!(combined, fixture_expected(), "head + recovered tail diverge from golden stream");
    std::fs::remove_dir_all(&dir).ok();
}

/// A live `set-policy` control event swaps the policy deterministically
/// (two independent runs agree byte for byte), is journaled, announced
/// on stderr, and recorded in subsequent snapshots.
#[test]
fn policy_hot_swap_is_journaled_and_deterministic() {
    let events = fixture_events();
    let mut stream = String::new();
    for (i, line) in events.lines().enumerate() {
        if i == 100 {
            stream.push_str("{\"type\":\"set-policy\",\"name\":\"Weighted\"}\n");
        }
        stream.push_str(line);
        stream.push('\n');
    }
    let dir_a = tempdir("swap_a");
    let dir_b = tempdir("swap_b");
    let input = dir_a.join("input.jsonl");
    std::fs::write(&input, &stream).unwrap();

    let run = |journal: &std::path::Path| {
        let out = bbsched()
            .args(["serve", "--events", input.to_str().unwrap()])
            .args(SCENARIO)
            .args(["--journal", journal.to_str().unwrap(), "--snapshot-every", "25"])
            .output()
            .expect("binary must spawn");
        let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
        assert!(out.status.success(), "{stderr}");
        assert!(stderr.contains("policy hot-swap at line 101: Baseline -> Weighted"), "{stderr}");
        assert!(stderr.contains("served 201 lines (200 job events)"), "{stderr}");
        String::from_utf8(out.stdout).unwrap()
    };
    let out_a = run(&dir_a);
    let out_b = run(&dir_b);
    assert_eq!(out_a, out_b, "hot-swap runs must be deterministic");

    // The newest snapshot (the EOF pre-flush checkpoint) carries the
    // swapped policy.
    let snaps = snapshots(&dir_a);
    let inspect = bbsched()
        .args(["snapshot", "inspect", snaps.last().unwrap().to_str().unwrap()])
        .output()
        .expect("binary must spawn");
    assert_eq!(inspect.status.code(), Some(0));
    let report = String::from_utf8_lossy(&inspect.stdout);
    assert!(report.contains("Weighted"), "snapshot records the swapped policy:\n{report}");
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

/// Flag misuse is a usage error (2); unrecoverable state is an input
/// error (3); a non-recovery start refuses a dirty journal directory.
#[test]
fn serve_errors_have_the_right_exit_codes() {
    let out = bbsched()
        .args(["serve", "--events", "-"])
        .args(SCENARIO)
        .args(["--snapshot-every", "5"])
        .output()
        .expect("binary must spawn");
    assert_eq!(out.status.code(), Some(2), "--snapshot-every without --journal is usage");

    let empty = tempdir("empty");
    let out = bbsched()
        .args(["serve", "--events", "-"])
        .args(SCENARIO)
        .args(["--recover", empty.to_str().unwrap()])
        .output()
        .expect("binary must spawn");
    assert_eq!(out.status.code(), Some(3), "--recover with no snapshot is an input error");

    // A completed run's directory cannot be silently reused without
    // --recover.
    let dirty = tempdir("dirty");
    let events = ci_dir().join("replay_events.jsonl");
    let out = bbsched()
        .args(["serve", "--events", events.to_str().unwrap()])
        .args(SCENARIO)
        .args(["--journal", dirty.to_str().unwrap()])
        .output()
        .expect("binary must spawn");
    assert!(out.status.success());
    let out = bbsched()
        .args(["serve", "--events", events.to_str().unwrap()])
        .args(SCENARIO)
        .args(["--journal", dirty.to_str().unwrap()])
        .output()
        .expect("binary must spawn");
    assert_eq!(out.status.code(), Some(2), "dirty journal dir without --recover is usage");
    std::fs::remove_dir_all(&empty).ok();
    std::fs::remove_dir_all(&dirty).ok();
}

/// `snapshot inspect` exit codes: 0 on a readable snapshot (either
/// encoding), 3 on garbage, 2 on usage mistakes.
#[test]
fn snapshot_inspect_exit_codes() {
    let dir = tempdir("inspect");
    let garbage = dir.join("garbage.ckpt");
    std::fs::write(&garbage, b"BBSNAP\x01this is not a snapshot").unwrap();
    let out = bbsched()
        .args(["snapshot", "inspect", garbage.to_str().unwrap()])
        .output()
        .expect("binary must spawn");
    assert_eq!(out.status.code(), Some(3), "corrupt snapshot is an input error");

    let out = bbsched().args(["snapshot"]).output().expect("binary must spawn");
    assert_eq!(out.status.code(), Some(2), "missing verb is usage");
    let out = bbsched().args(["snapshot", "frobnicate", "x"]).output().expect("binary must spawn");
    assert_eq!(out.status.code(), Some(2), "unknown verb is usage");
    let out = bbsched()
        .args(["snapshot", "inspect", dir.join("nope.ckpt").to_str().unwrap()])
        .output()
        .expect("binary must spawn");
    assert_eq!(out.status.code(), Some(3), "missing file is an input error");
    std::fs::remove_dir_all(&dir).ok();
}
