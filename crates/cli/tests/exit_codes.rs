//! Process-level exit-code regression tests: scripts depend on the
//! `CliError` exit-code map (1 = run failure, 2 = usage, 3 = bad input,
//! 4 = cannot write output), so it is pinned here against the real
//! binary.

use std::process::Command;

fn bbsched(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_bbsched")).args(args).output().expect("binary must spawn")
}

#[test]
fn unknown_command_exits_2() {
    let out = bbsched(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn unknown_option_exits_2() {
    let out = bbsched(&["stats", "--trase", "x"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn missing_trace_file_exits_3() {
    let out = bbsched(&["stats", "--trace", "/nonexistent/trace.jsonl"]);
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot load trace"));
}

#[test]
fn malformed_trace_exits_3() {
    let dir = std::env::temp_dir().join(format!("bbsched_exit_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("garbage.jsonl");
    std::fs::write(&path, "this is not a job record\n{nor is this}\n").unwrap();
    let out = bbsched(&["simulate", "--trace", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(3), "malformed trace must be an input error");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_event_stream_exits_3() {
    let dir = std::env::temp_dir().join(format!("bbsched_exit_ev_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad_events.jsonl");
    std::fs::write(&path, "{\"type\":\"launch\"}\n").unwrap();
    let out = bbsched(&["replay", "--events", path.to_str().unwrap(), "--machine", "cori"]);
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("line 1"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn time_regressing_event_stream_exits_1() {
    let dir = std::env::temp_dir().join(format!("bbsched_exit_tr_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("regress.jsonl");
    // A finish for a job that was never submitted is a replay (run)
    // failure, not a parse failure.
    std::fs::write(&path, "{\"type\":\"finish\",\"id\":7,\"time\":10.0}\n").unwrap();
    let out = bbsched(&["replay", "--events", path.to_str().unwrap(), "--machine", "cori"]);
    assert_eq!(out.status.code(), Some(1));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unwritable_output_exits_4() {
    let out = bbsched(&[
        "generate",
        "--machine",
        "cori",
        "--jobs",
        "5",
        "--scale",
        "0.02",
        "--out",
        "/nonexistent_dir/t.jsonl",
    ]);
    assert_eq!(out.status.code(), Some(4));
}

#[test]
fn replay_streams_decisions_for_a_tiny_feed() {
    // End-to-end smoke: submit two small jobs, finish one, check the
    // decision stream on stdout and the summary on stderr.
    let events = "\
{\"type\":\"submit\",\"job\":{\"id\":0,\"submit\":0.0,\"nodes\":1,\"runtime\":50.0,\"walltime\":100.0,\"bb_gb\":0.0,\"ssd_gb_per_node\":0.0,\"deps\":[],\"extra\":[]}}
{\"type\":\"submit\",\"job\":{\"id\":1,\"submit\":1.0,\"nodes\":1,\"runtime\":50.0,\"walltime\":100.0,\"bb_gb\":0.0,\"ssd_gb_per_node\":0.0,\"deps\":[],\"extra\":[]}}
{\"type\":\"finish\",\"id\":0,\"time\":50.0}
{\"type\":\"finish\",\"id\":1,\"time\":51.0}
";
    let dir = std::env::temp_dir().join(format!("bbsched_exit_ok_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("events.jsonl");
    std::fs::write(&path, events).unwrap();
    let out = bbsched(&[
        "replay",
        "--events",
        path.to_str().unwrap(),
        "--machine",
        "cori",
        "--policy",
        "Baseline",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let starts: Vec<&str> = stdout.lines().filter(|l| l.contains("\"start\"")).collect();
    assert_eq!(starts.len(), 2, "both jobs must start: {stdout}");
    assert!(stdout.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("replayed 4 events"), "summary on stderr: {stderr}");
    assert!(stderr.contains("2 jobs"), "summary counts jobs: {stderr}");
    std::fs::remove_dir_all(&dir).ok();
}
