//! Checked-in replay smoke fixtures (`ci/replay_events.jsonl` and
//! `ci/replay_expected.jsonl`).
//!
//! CI pipes the event file through `bbsched replay --machine cori
//! --scale 0.05 --policy Baseline` and diffs stdout against the expected
//! stream, pinning the whole path binary → event parser → service core →
//! decision wire format. The non-ignored test here keeps the fixtures
//! honest under plain `cargo test`; the `#[ignore]`d one regenerates them
//! after an intentional behavior change:
//!
//! ```text
//! cargo test -p bbsched-cli --test replay_fixtures -- --ignored
//! ```

use bbsched_policies::{GaParams, PolicyKind};
use bbsched_sched::{DecisionLog, JobEvent, Replayer, SchedObserver};
use bbsched_sim::{SimConfig, Simulator};
use bbsched_workloads::{generate, GeneratorConfig, MachineProfile};
use std::path::PathBuf;

const N_JOBS: usize = 100;
const SEED: u64 = 4242;

fn ci_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../ci")
}

/// The fixture scenario — must match the CI invocation exactly:
/// Cori at 5% scale, FCFS + EASY window backfill (the `--machine cori`
/// defaults), Baseline policy.
fn profile_and_cfg() -> (MachineProfile, SimConfig) {
    (MachineProfile::cori().scaled(0.05), SimConfig::default())
}

/// Synthesizes the event file content and the expected decision stream by
/// running the simulator driver once (finish times come from its records).
fn synthesize() -> (String, String) {
    let (profile, cfg) = profile_and_cfg();
    let trace = generate(
        &profile,
        &GeneratorConfig {
            n_jobs: N_JOBS,
            seed: SEED,
            load_factor: 2.0,
            ..GeneratorConfig::default()
        },
    );
    let mut log = DecisionLog::new();
    let result = Simulator::new(&profile.system, &trace, cfg)
        .expect("fixture config is valid")
        .run_observed(PolicyKind::Baseline.build(GaParams::default()), &mut [&mut log]);
    assert_eq!(result.records.len(), N_JOBS);

    let mut events: Vec<JobEvent> = trace.jobs().iter().cloned().map(JobEvent::Submit).collect();
    events.extend(result.records.iter().map(|r| JobEvent::Finish { id: r.id, time: r.end }));
    events.sort_by(|a, b| a.time().total_cmp(&b.time()));

    let mut event_lines = String::new();
    for e in &events {
        event_lines.push_str(&e.to_json_line());
        event_lines.push('\n');
    }
    let mut expected = String::new();
    for l in log.lines() {
        expected.push_str(l);
        expected.push('\n');
    }
    (event_lines, expected)
}

#[test]
fn replay_fixtures_match_the_simulator() {
    let (event_lines, expected) = synthesize();
    let on_disk_events = std::fs::read_to_string(ci_dir().join("replay_events.jsonl"))
        .expect("ci/replay_events.jsonl exists — regenerate with `-- --ignored`");
    let on_disk_expected = std::fs::read_to_string(ci_dir().join("replay_expected.jsonl"))
        .expect("ci/replay_expected.jsonl exists — regenerate with `-- --ignored`");
    assert_eq!(on_disk_events, event_lines, "stale ci/replay_events.jsonl");
    assert_eq!(on_disk_expected, expected, "stale ci/replay_expected.jsonl");

    // And the replay driver itself reproduces the expected stream from the
    // on-disk events — the same equivalence CI checks through the binary.
    let (profile, cfg) = profile_and_cfg();
    let mut log = DecisionLog::new();
    {
        let observers: Vec<&mut dyn SchedObserver> = vec![&mut log];
        let mut replayer = Replayer::new(
            &profile.system,
            cfg.sched(),
            PolicyKind::Baseline.build(GaParams::default()),
            observers,
        )
        .expect("fixture config is valid");
        for (n, line) in on_disk_events.lines().enumerate() {
            let event =
                JobEvent::parse(line).unwrap_or_else(|e| panic!("fixture line {}: {e}", n + 1));
            replayer.feed(event).expect("fixture stream is valid");
        }
        let summary = replayer.finish().expect("fixture stream drains");
        assert_eq!(summary.left_waiting, 0);
        assert_eq!(summary.left_running, 0);
    }
    let replayed: String = log.lines().iter().map(|l| format!("{l}\n")).collect();
    assert_eq!(replayed, expected, "replay diverges from the expected stream");
}

#[test]
#[ignore = "writes the checked-in fixtures; run after intentional changes"]
fn regenerate_replay_fixtures() {
    let (event_lines, expected) = synthesize();
    std::fs::write(ci_dir().join("replay_events.jsonl"), event_lines).unwrap();
    std::fs::write(ci_dir().join("replay_expected.jsonl"), expected).unwrap();
}

/// Checkpointed replay across a real process boundary: a head process
/// feeds the fixture stream up to a cut, writes a checkpoint and stops
/// without flushing; a second process resumes from the checkpoint file
/// and drains the rest. The concatenated decision streams must equal the
/// golden fixture byte for byte — at an early, a middle, and a last-event
/// cut point.
#[test]
fn checkpoint_resume_across_processes_matches_the_golden_stream() {
    let events = ci_dir().join("replay_events.jsonl");
    let events = events.to_str().unwrap();
    let expected = std::fs::read_to_string(ci_dir().join("replay_expected.jsonl")).unwrap();
    let dir = std::env::temp_dir().join(format!("bbsched_ckpt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("ckpt.json");
    let ckpt = ckpt.to_str().unwrap();

    for cut in ["1", "100", "199"] {
        let head = std::process::Command::new(env!("CARGO_BIN_EXE_bbsched"))
            .args([
                "replay",
                "--events",
                events,
                "--machine",
                "cori",
                "--scale",
                "0.05",
                "--policy",
                "Baseline",
                "--checkpoint",
                ckpt,
                "--stop-after",
                cut,
            ])
            .output()
            .expect("binary must spawn");
        assert!(
            head.status.success(),
            "head (cut {cut}) failed: {}",
            String::from_utf8_lossy(&head.stderr)
        );
        let tail = std::process::Command::new(env!("CARGO_BIN_EXE_bbsched"))
            .args(["replay", "--events", events, "--resume", ckpt])
            .output()
            .expect("binary must spawn");
        assert!(
            tail.status.success(),
            "tail (cut {cut}) failed: {}",
            String::from_utf8_lossy(&tail.stderr)
        );
        let mut combined = String::from_utf8(head.stdout).unwrap();
        combined.push_str(&String::from_utf8(tail.stdout).unwrap());
        assert_eq!(combined, expected, "cut at event {cut} diverges from the golden stream");
        let stderr = String::from_utf8_lossy(&tail.stderr);
        assert!(stderr.contains(&format!("resumed from checkpoint at event {cut}")), "{stderr}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Checkpoint-flag misuse is a usage error (exit 2); an unreadable or
/// corrupt checkpoint is an input error (exit 3).
#[test]
fn checkpoint_flag_errors_have_the_right_exit_codes() {
    let events = ci_dir().join("replay_events.jsonl");
    let events = events.to_str().unwrap();
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_bbsched"))
        .args(["replay", "--events", events, "--machine", "cori", "--checkpoint-every", "5"])
        .output()
        .expect("binary must spawn");
    assert_eq!(out.status.code(), Some(2), "--checkpoint-every without --checkpoint is usage");

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_bbsched"))
        .args(["replay", "--events", events, "--resume", "/nonexistent/ckpt.json"])
        .output()
        .expect("binary must spawn");
    assert_eq!(out.status.code(), Some(3), "missing checkpoint file is an input error");

    let dir = std::env::temp_dir().join(format!("bbsched_ckpt_bad_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "{\"not\":\"a checkpoint\"}").unwrap();
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_bbsched"))
        .args(["replay", "--events", events, "--resume", bad.to_str().unwrap()])
        .output()
        .expect("binary must spawn");
    assert_eq!(out.status.code(), Some(3), "corrupt checkpoint is an input error");
    std::fs::remove_dir_all(&dir).ok();
}
