//! Typed CLI errors with stable process exit codes.
//!
//! Every failure path in the command layer is one of four kinds, each
//! with its own exit code so scripts can tell a typo from a bad input
//! file without parsing stderr:
//!
//! | variant  | exit | meaning                                        |
//! |----------|------|------------------------------------------------|
//! | `Usage`  | 2    | bad invocation: unknown command/option/value   |
//! | `Input`  | 3    | an input file is missing, unreadable, or malformed |
//! | `Output` | 4    | an output file cannot be written               |
//! | `Run`    | 1    | the simulation/replay itself failed            |

/// A command-layer failure. See the module docs for the exit-code map.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CliError {
    /// Bad invocation: unknown command, option, or unparsable value.
    Usage(String),
    /// An input file is missing, unreadable, or malformed.
    Input(String),
    /// An output file cannot be written.
    Output(String),
    /// The simulation or replay itself failed.
    Run(String),
}

impl CliError {
    /// The process exit code for this error kind.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Run(_) => 1,
            CliError::Usage(_) => 2,
            CliError::Input(_) => 3,
            CliError::Output(_) => 4,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Input(m) | CliError::Output(m) | CliError::Run(m) => {
                f.write_str(m)
            }
        }
    }
}

impl std::error::Error for CliError {}

// The hand-rolled parser helpers (`Args::require`, `get_parsed`,
// `check_known`, the `parse_*` functions) all speak `String`; every one
// of those failures is a usage error, so `?` promotes them directly.
impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Usage(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_stable() {
        assert_eq!(CliError::Run("x".into()).exit_code(), 1);
        assert_eq!(CliError::Usage("x".into()).exit_code(), 2);
        assert_eq!(CliError::Input("x".into()).exit_code(), 3);
        assert_eq!(CliError::Output("x".into()).exit_code(), 4);
    }

    #[test]
    fn string_errors_become_usage_errors() {
        fn helper() -> Result<(), String> {
            Err("bad --thing".into())
        }
        fn cmd() -> Result<(), CliError> {
            helper()?;
            Ok(())
        }
        assert_eq!(cmd(), Err(CliError::Usage("bad --thing".into())));
    }
}
