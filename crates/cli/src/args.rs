//! Minimal `--key value` argument parsing.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand, positional words, and `--key
/// value` options.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Args {
    /// The subcommand ("generate", "simulate", ...).
    pub command: String,
    options: BTreeMap<String, String>,
    /// Bare `--flag` switches (no value).
    flags: Vec<String>,
    /// Bare words after the subcommand (`snapshot inspect FILE`).
    positionals: Vec<String>,
}

impl Args {
    /// Parses `argv` (excluding the program name).
    ///
    /// Grammar: `<command> (positional | --key value | --flag)*`. A
    /// `--key` followed by another `--...` token or end of input is a
    /// flag; a bare word next to a `--key` is that key's value, while a
    /// bare word elsewhere is a positional.
    pub fn parse<I, S>(argv: I) -> Result<Self, String>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let tokens: Vec<String> = argv.into_iter().map(Into::into).collect();
        let mut args = Args::default();
        let mut it = tokens.into_iter().peekable();
        args.command = match it.next() {
            Some(c) if !c.starts_with("--") => c,
            Some(c) => return Err(format!("expected a subcommand, got option '{c}'")),
            None => return Err("no subcommand given (try 'help')".into()),
        };
        while let Some(tok) = it.next() {
            let Some(key) = tok.strip_prefix("--") else {
                args.positionals.push(tok);
                continue;
            };
            if key.is_empty() {
                return Err("empty option name".into());
            }
            let key = key.to_string();
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    let v = it.next().expect("peeked value vanished");
                    if args.options.insert(key.clone(), v).is_some() {
                        return Err(format!("duplicate option --{key}"));
                    }
                }
                _ => args.flags.push(key),
            }
        }
        Ok(args)
    }

    /// String option, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// String option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Required string option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing required option --{key}"))
    }

    /// Parsed numeric/typed option with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| {
                format!("--{key}: cannot parse '{v}' as {}", std::any::type_name::<T>())
            }),
        }
    }

    /// Whether a bare `--flag` was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Bare words after the subcommand, in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// Rejects unknown options (catch typos early) and — since most
    /// commands take none — any positional words. `known` lists valid
    /// option keys and flags; commands with positionals (`snapshot
    /// inspect FILE`) validate [`Args::positionals`] themselves before
    /// calling this with them consumed via `max_positionals`.
    pub fn check_known(&self, known: &[&str]) -> Result<(), String> {
        self.check_known_with(known, 0)
    }

    /// [`Args::check_known`] for commands accepting up to
    /// `max_positionals` bare words.
    pub fn check_known_with(&self, known: &[&str], max_positionals: usize) -> Result<(), String> {
        if self.positionals.len() > max_positionals {
            return Err(format!(
                "unexpected argument '{}' for '{}'",
                self.positionals[max_positionals], self.command
            ));
        }
        for k in self.options.keys().chain(self.flags.iter()) {
            if !known.contains(&k.as_str()) {
                return Err(format!(
                    "unknown option --{k} for '{}' (valid: {})",
                    self.command,
                    known.join(", ")
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_and_options() {
        let a = Args::parse(["simulate", "--machine", "theta", "--jobs", "100"]).unwrap();
        assert_eq!(a.command, "simulate");
        assert_eq!(a.get("machine"), Some("theta"));
        assert_eq!(a.get_parsed("jobs", 0usize).unwrap(), 100);
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn parses_flags() {
        let a = Args::parse(["generate", "--swf", "--jobs", "5", "--verbose"]).unwrap();
        assert!(a.flag("swf"));
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
        assert_eq!(a.get("jobs"), Some("5"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Args::parse(Vec::<String>::new()).is_err());
        assert!(Args::parse(["--oops"]).is_err());
        assert!(Args::parse(["cmd", "--a", "1", "--a", "2"]).is_err());
    }

    #[test]
    fn positionals_are_collected_and_guarded() {
        let a = Args::parse(["snapshot", "inspect", "file.ckpt", "--format", "json"]).unwrap();
        assert_eq!(a.positionals(), ["inspect", "file.ckpt"]);
        assert_eq!(a.get("format"), Some("json"));
        assert!(a.check_known(&["format"]).is_err(), "positionals rejected by default");
        assert!(a.check_known_with(&["format"], 2).is_ok());
        assert!(a.check_known_with(&["format"], 1).is_err());
        // A bare word adjacent to a --key is still that key's value.
        let a = Args::parse(["cmd", "--k", "v", "w"]).unwrap();
        assert_eq!(a.get("k"), Some("v"));
        assert_eq!(a.positionals(), ["w"]);
    }

    #[test]
    fn require_and_defaults() {
        let a = Args::parse(["x", "--k", "v"]).unwrap();
        assert_eq!(a.require("k").unwrap(), "v");
        assert!(a.require("nope").is_err());
        assert_eq!(a.get_or("nope", "d"), "d");
        assert_eq!(a.get_parsed("bad", 3u32).unwrap(), 3);
        let a = Args::parse(["x", "--n", "abc"]).unwrap();
        assert!(a.get_parsed("n", 0u32).is_err());
    }

    #[test]
    fn unknown_option_detection() {
        let a = Args::parse(["sim", "--machine", "cori", "--typo", "x"]).unwrap();
        assert!(a.check_known(&["machine"]).is_err());
        assert!(a.check_known(&["machine", "typo"]).is_ok());
    }
}
