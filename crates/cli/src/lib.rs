//! # bbsched-cli
//!
//! Command-line front end for the BBSched workspace. Everything the
//! figure binaries do programmatically is available ad hoc:
//!
//! ```text
//! bbsched generate --machine theta --jobs 2000 --workload S4 --out t.jsonl
//! bbsched stats    --trace t.jsonl
//! bbsched simulate --trace t.jsonl --machine theta --policy BBSched
//! bbsched compare  --machine theta --workload S4 --jobs 1000
//! ```
//!
//! Argument parsing is hand-rolled (`--key value` pairs after a
//! subcommand) to keep the dependency set at the workspace's approved
//! list; [`Args`] is the reusable, testable parser.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod args;
pub mod commands;
pub mod error;
mod serve;

pub use args::Args;
pub use error::CliError;
