//! The `bbsched` command-line tool. See `bbsched help`.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match bbsched_cli::Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", bbsched_cli::commands::usage());
            std::process::exit(bbsched_cli::CliError::Usage(e).exit_code());
        }
    };
    if let Err(e) = bbsched_cli::commands::run(&args) {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code());
    }
}
