//! `cli serve` — the long-running scheduler daemon.
//!
//! Reads job events from stdin or a path, emits one JSON decision per
//! line to stdout (flushed per line, so a downstream consumer can act
//! on each decision as it appears), and layers the `bbsched_sched`
//! durability module over the online replay driver:
//!
//! * `--journal DIR` — every consumed input line is appended to a
//!   write-ahead journal (fsync'd per line) in `DIR/events.wal`, and
//!   rolling snapshots land in the same directory;
//! * `--recover DIR` — crash recovery: newest valid snapshot + journal
//!   tail replay, then the live stream continues (the first
//!   already-journaled lines of `--events` are skipped);
//! * `{"type":"set-policy","name":…}` — live policy hot-swap: the
//!   daemon snapshots, restores under the new policy (the PR 7 what-if
//!   primitive), and journals the control line so recovery replays the
//!   swap deterministically;
//! * SIGTERM — graceful drain: a final snapshot at the exact consumed
//!   position, no final flush, exit 0. A `--recover` restart then owns
//!   every remaining decision, so the concatenated decision streams of
//!   the two processes equal the uninterrupted run byte for byte.
//!
//! Recovery *re-derives* decisions: replaying the journal tail emits
//! the decisions it implies. After a graceful SIGTERM the tail is empty
//! (the final snapshot sits at the journal head position) and the
//! concatenation is exact; after a hard kill the tail re-emits
//! decisions made since the last snapshot, and consumers resume from
//! the `recovered:` stderr marker (DESIGN.md §13).

use crate::args::Args;
use crate::commands::{
    parse_machine, parse_policy, parse_threads, sim_config, DecisionStream, SCHED_ARGS,
};
use crate::error::CliError;
use bbsched_metrics::LiveStatsLines;
use bbsched_policies::{GaParams, PolicyKind};
use bbsched_sched::durability::{Driver, Encoding, Journal, SnapshotStore};
use bbsched_sched::{JobEvent, ReplaySnapshot, Replayer, SchedConfig, SchedObserver};
use bbsched_workloads::SystemConfig;
use std::io::{BufRead, Write};
use std::path::Path;

/// A `cli serve` checkpoint: the replayer's state plus the policy
/// identity to rebuild it under, and the daemon's input position
/// (consumed journaled lines — job events *and* control lines, which
/// the replayer's own `events_fed` does not count).
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
struct DaemonCheckpoint {
    replay: ReplaySnapshot,
    policy: PolicyKind,
    ga: GaParams,
    consumed: u64,
}

/// [`Driver`] view of the daemon: position is the consumed-line
/// counter, so snapshot names line up with journal record counts.
struct DaemonDriver<'a, 'o> {
    replayer: &'a Replayer<'o>,
    policy: PolicyKind,
    ga: GaParams,
    consumed: u64,
}

impl Driver for DaemonDriver<'_, '_> {
    type Snapshot = DaemonCheckpoint;

    fn snapshot(&self) -> DaemonCheckpoint {
        DaemonCheckpoint {
            replay: self.replayer.snapshot(),
            policy: self.policy,
            ga: self.ga,
            consumed: self.consumed,
        }
    }

    fn position(&self) -> u64 {
        self.consumed
    }
}

#[cfg(unix)]
mod term {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERM: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_signum: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    /// Installs the SIGTERM flag handler (no `libc` dependency: the
    /// workspace allows none, and `signal(2)` is all the drain needs).
    pub(super) fn install() {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_term);
        }
    }

    pub(super) fn requested() -> bool {
        TERM.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod term {
    pub(super) fn install() {}

    pub(super) fn requested() -> bool {
        false
    }
}

/// One input line, classified: a control line or a wire job event.
enum ServeLine {
    Event(JobEvent),
    SetPolicy(PolicyKind),
}

fn classify_line(line: &str) -> Result<ServeLine, String> {
    let value = serde_json::value_from_slice(line.as_bytes()).map_err(|e| e.to_string())?;
    let is_set_policy = value
        .as_map()
        .and_then(|m| m.iter().find(|(k, _)| k == "type"))
        .and_then(|(_, v)| v.as_str())
        .is_some_and(|t| t == "set-policy");
    if is_set_policy {
        let name = value
            .as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == "name"))
            .and_then(|(_, v)| v.as_str())
            .ok_or("set-policy needs a string 'name'")?;
        Ok(ServeLine::SetPolicy(parse_policy(name)?))
    } else {
        Ok(ServeLine::Event(JobEvent::parse(line)?))
    }
}

/// The durability side of the daemon: the WAL and the rolling store,
/// both living in the `--journal`/`--recover` directory.
struct Durable {
    journal: Journal,
    store: SnapshotStore,
    snapshot_every: u64,
    encoding: Encoding,
}

impl Durable {
    fn save(&self, driver: &DaemonDriver<'_, '_>) -> Result<(), CliError> {
        self.store
            .save(driver.position(), &driver.snapshot(), self.encoding)
            .map_err(|e| CliError::Output(format!("cannot write snapshot: {e}")))?;
        Ok(())
    }
}

/// Why the inner segment loop returned control.
enum SegmentEnd {
    /// Hot-swap to this policy from this snapshot.
    Swap(PolicyKind, Box<ReplaySnapshot>),
    /// Input exhausted: run the final flush and summarize.
    Eof,
    /// SIGTERM: final snapshot, no flush.
    Term,
}

/// `cli serve` entry point.
pub(crate) fn cmd_serve(args: &Args) -> Result<(), CliError> {
    let mut known = vec![
        "events",
        "machine",
        "scale",
        "policy",
        "gens",
        "seed",
        "threads",
        "journal",
        "recover",
        "snapshot-every",
        "snapshot-retain",
        "snapshot-format",
        "stats-every",
    ];
    known.extend_from_slice(SCHED_ARGS);
    args.check_known(&known)?;

    let snapshot_every: u64 = args.get_parsed("snapshot-every", 0u64)?;
    let retain: usize = args.get_parsed("snapshot-retain", 3usize)?;
    let encoding: Encoding =
        args.get_or("snapshot-format", "binary").parse().map_err(CliError::Usage)?;
    let stats_every: u64 = args.get_parsed("stats-every", 0u64)?;
    let recover_dir = args.get("recover");
    // --recover implies journaling into the same directory.
    let journal_dir = args.get("journal").or(recover_dir);
    if args.get("journal").is_some() && recover_dir.is_some_and(|r| Some(r) != args.get("journal"))
    {
        return Err(CliError::Usage(
            "--journal and --recover must name the same directory".to_string(),
        ));
    }
    if snapshot_every > 0 && journal_dir.is_none() {
        return Err(CliError::Usage("--snapshot-every needs --journal DIR".to_string()));
    }

    term::install();

    let durable = match journal_dir {
        Some(dir) => {
            let store = SnapshotStore::open(dir, retain)
                .map_err(|e| CliError::Output(format!("cannot open '{dir}': {e}")))?;
            let (journal, recovery) = Journal::open(&Path::new(dir).join("events.wal"))
                .map_err(|e| CliError::Input(format!("cannot open journal in '{dir}': {e}")))?;
            if recovery.dropped_bytes > 0 {
                eprintln!(
                    "journal: dropped {} torn trailing bytes ({} records intact)",
                    recovery.dropped_bytes,
                    recovery.records.len()
                );
            }
            Some((Durable { journal, store, snapshot_every, encoding }, recovery.records))
        }
        None => None,
    };

    // Fresh start vs recovery: a fresh daemon builds system/config/policy
    // from flags; a recovering one takes everything from the newest valid
    // snapshot and replays the journal tail through the same code path.
    let mut kind: PolicyKind;
    let ga: GaParams;
    let mut pending_restore: Option<ReplaySnapshot> = None;
    let mut fresh: Option<(SystemConfig, SchedConfig)> = None;
    let mut consumed: u64;
    let mut tail: std::collections::VecDeque<String> = std::collections::VecDeque::new();
    let skip_lines: u64;

    if recover_dir.is_some() {
        let (durable_ref, records) = durable.as_ref().expect("recover implies journaling");
        let loaded = durable_ref
            .store
            .load_newest::<DaemonCheckpoint>()
            .map_err(|e| CliError::Input(format!("cannot scan snapshots: {e}")))?
            .ok_or_else(|| CliError::Input("no usable snapshot to recover from".to_string()))?;
        if loaded.skipped > 0 {
            eprintln!("recovery: skipped {} unreadable newer snapshot(s)", loaded.skipped);
        }
        let ckpt = loaded.value;
        if ckpt.consumed as usize > records.len() {
            return Err(CliError::Input(format!(
                "snapshot at consumed line {} is ahead of the journal ({} records) — wrong \
                 directory?",
                ckpt.consumed,
                records.len()
            )));
        }
        for record in &records[ckpt.consumed as usize..] {
            let line = String::from_utf8(record.clone())
                .map_err(|e| CliError::Input(format!("journal record is not UTF-8: {e}")))?;
            tail.push_back(line);
        }
        eprintln!(
            "recovered: snapshot at line {}, replaying {} journal records, resuming input at \
             line {}",
            ckpt.consumed,
            tail.len(),
            records.len()
        );
        kind = ckpt.policy;
        ga = ckpt.ga;
        consumed = ckpt.consumed;
        skip_lines = records.len() as u64;
        pending_restore = Some(ckpt.replay);
    } else {
        let scale: f64 = args.get_parsed("scale", 0.05)?;
        let machine = parse_machine(args.get_or("machine", "theta"))?;
        let profile =
            if (scale - 1.0).abs() < f64::EPSILON { machine } else { machine.scaled(scale) };
        kind = parse_policy(args.get_or("policy", "BBSched"))?;
        let cfg = sim_config(args, &profile)?.sched();
        ga = GaParams {
            generations: args.get_parsed("gens", 500usize)?,
            base_seed: args.get_parsed("seed", 7u64)?,
            threads: parse_threads(args)?,
            ..GaParams::default()
        };
        // A non-recovery start must not silently adopt half a previous
        // run's directory: an existing journal means the operator wanted
        // --recover.
        if let Some((d, records)) = &durable {
            if !records.is_empty() || d.journal.records() > 0 {
                return Err(CliError::Usage(
                    "journal directory already has records; use --recover DIR to continue it"
                        .to_string(),
                ));
            }
        }
        fresh = Some((profile.system.clone(), cfg));
        consumed = 0;
        skip_lines = 0;
    }
    let mut durable = durable.map(|(d, _)| d);

    let path = args.require("events")?;
    let reader: Box<dyn BufRead> = if path == "-" {
        Box::new(std::io::stdin().lock())
    } else {
        let file = std::fs::File::open(path)
            .map_err(|e| CliError::Input(format!("cannot open '{path}': {e}")))?;
        Box::new(std::io::BufReader::new(file))
    };
    let mut input = reader.lines();
    let mut input_line = 0u64; // non-empty lines pulled from --events
    let mut seen_eof = false;

    let stdout = std::io::stdout();
    let mut stream = DecisionStream::new(stdout.lock());
    stream.flush_each = true;
    let mut stats = (stats_every > 0).then(|| LiveStatsLines::new(stats_every, std::io::stderr()));

    // Each hot-swap ends a *segment*: the replayer (which borrows the
    // observers) is torn down, and the next iteration rebuilds it from
    // the snapshot under the new policy with fresh borrows.
    //
    // `segment_checkpointed` gates the checkpoint written at segment
    // top: a fresh start checkpoints position 0 (so every journaled
    // directory is recoverable from its first record), a live hot-swap
    // checkpoints the post-swap position, and a recovery skips it (the
    // loaded checkpoint is already on disk).
    let mut segment_checkpointed = recover_dir.is_some();
    'segments: loop {
        let mut observers: Vec<&mut dyn SchedObserver> = vec![&mut stream];
        if let Some(s) = stats.as_mut() {
            observers.push(s);
        }
        let mut replayer = match pending_restore.take() {
            Some(snapshot) => Replayer::restore(snapshot, kind.build(ga), observers)
                .map_err(|e| CliError::Run(format!("cannot restore: {e}")))?,
            None => {
                let (system, cfg) = fresh.take().expect("first segment is fresh or restored");
                Replayer::new(&system, cfg, kind.build(ga), observers)
                    .map_err(|e| CliError::Run(e.to_string()))?
            }
        };
        if let Some(d) = &durable {
            if !segment_checkpointed {
                d.save(&DaemonDriver { replayer: &replayer, policy: kind, ga, consumed })?;
            }
        }

        let end: SegmentEnd = 'lines: loop {
            if term::requested() {
                break 'lines SegmentEnd::Term;
            }
            // Journal tail first (replayed without re-journaling), then
            // the live stream.
            let (line, live) = match tail.pop_front() {
                Some(line) => (line, false),
                None if seen_eof => break 'lines SegmentEnd::Eof,
                None => {
                    let mut next = None;
                    for read in input.by_ref() {
                        let read = read
                            .map_err(|e| CliError::Input(format!("cannot read '{path}': {e}")))?;
                        if read.trim().is_empty() {
                            continue;
                        }
                        input_line += 1;
                        if input_line <= skip_lines {
                            continue; // already journaled and applied
                        }
                        next = Some(read);
                        break;
                    }
                    match next {
                        Some(line) => (line, true),
                        None => {
                            seen_eof = true;
                            // A TERM that raced the final reads still
                            // means "drain, don't flush".
                            if term::requested() {
                                break 'lines SegmentEnd::Term;
                            }
                            break 'lines SegmentEnd::Eof;
                        }
                    }
                }
            };

            match classify_line(&line)
                .map_err(|e| CliError::Input(format!("input line {consumed}: {e}")))?
            {
                ServeLine::SetPolicy(new_kind) => {
                    if live {
                        if let Some(d) = &mut durable {
                            d.journal.append_sync(line.as_bytes()).map_err(|e| {
                                CliError::Output(format!("cannot journal event: {e}"))
                            })?;
                        }
                    }
                    consumed += 1;
                    break 'lines SegmentEnd::Swap(new_kind, Box::new(replayer.snapshot()));
                }
                ServeLine::Event(event) => {
                    // Apply, then journal: a rejected event (time
                    // regression, duplicate id) is a fatal input error
                    // and must never poison the journal for recovery.
                    replayer
                        .feed(event)
                        .map_err(|e| CliError::Run(format!("input line {}: {e}", consumed + 1)))?;
                    if live {
                        if let Some(d) = &mut durable {
                            d.journal.append_sync(line.as_bytes()).map_err(|e| {
                                CliError::Output(format!("cannot journal event: {e}"))
                            })?;
                        }
                    }
                    consumed += 1;
                    if live {
                        if let Some(d) = &durable {
                            if d.snapshot_every > 0 && consumed.is_multiple_of(d.snapshot_every) {
                                d.save(&DaemonDriver {
                                    replayer: &replayer,
                                    policy: kind,
                                    ga,
                                    consumed,
                                })?;
                            }
                        }
                    }
                }
            }
        };

        match end {
            SegmentEnd::Swap(new_kind, snapshot) => {
                eprintln!(
                    "policy hot-swap at line {consumed}: {} -> {}",
                    kind.name(),
                    new_kind.name()
                );
                kind = new_kind;
                pending_restore = Some(*snapshot);
                // A live swap re-checkpoints immediately at the
                // post-swap position, so a crash right after it recovers
                // under the new policy without replaying the swap; a
                // swap replayed from the journal tail does not (its
                // checkpoints already exist or were pruned).
                segment_checkpointed = !tail.is_empty();
                continue 'segments;
            }
            SegmentEnd::Term => {
                if let Some(d) = &durable {
                    d.save(&DaemonDriver { replayer: &replayer, policy: kind, ga, consumed })?;
                    eprintln!(
                        "sigterm: drained at line {consumed}; final snapshot written (recover \
                         with --recover)"
                    );
                } else {
                    eprintln!("sigterm: drained at line {consumed} (no journal directory)");
                }
                break 'segments;
            }
            SegmentEnd::Eof => {
                if let Some(d) = &durable {
                    // Pre-flush state: recovering a completed run
                    // re-derives the final flush (see module docs).
                    d.save(&DaemonDriver { replayer: &replayer, policy: kind, ga, consumed })?;
                }
                let fed = replayer.events_fed();
                let summary = replayer.finish().map_err(|e| CliError::Run(e.to_string()))?;
                eprintln!(
                    "served {consumed} lines ({fed} job events): {} jobs ({} clamped), {} \
                     finishes, {} invocations, makespan {:.1} s, left {} waiting / {} running",
                    summary.jobs,
                    summary.clamped_jobs,
                    summary.finishes,
                    summary.invocations,
                    summary.makespan,
                    summary.left_waiting,
                    summary.left_running
                );
                break 'segments;
            }
        }
    }

    if let Some(stats) = &stats {
        if let Some(e) = stats.io_error() {
            eprintln!("warning: stats stream: {e}");
        }
    }
    stream.out.flush().ok();
    if let Some(e) = stream.io_error {
        return Err(CliError::Output(format!("cannot write decision stream: {e}")));
    }
    Ok(())
}
