//! Subcommand implementations.

use crate::args::Args;
use crate::error::CliError;
use bbsched_metrics::{
    DistributionStats, ForkSummary, MeasurementWindow, MethodSummary, UsageKind,
};
use bbsched_policies::{GaParams, PolicyKind, SelectionPolicy};
use bbsched_sched::durability::{self, Driver, Encoding};
use bbsched_sched::{Decision, JobEvent, ReplaySnapshot, Replayer, SchedObserver};
use bbsched_sim::{
    BackfillAlgorithm, BaseScheduler, DynamicWindow, SimConfig, SimResult, Simulator,
};
use bbsched_workloads::{generate, swf, GeneratorConfig, MachineProfile, Trace, Workload};
use std::io::{BufRead, Write};
use std::path::Path;

/// Top-level dispatch. The error's [`CliError::exit_code`] becomes the
/// process exit code.
pub fn run(args: &Args) -> Result<(), CliError> {
    match args.command.as_str() {
        "generate" => cmd_generate(args),
        "stats" => cmd_stats(args),
        "simulate" => cmd_simulate(args),
        "compare" => cmd_compare(args),
        "replay" => cmd_replay(args),
        "serve" => crate::serve::cmd_serve(args),
        "snapshot" => cmd_snapshot(args),
        "timeline" => cmd_timeline(args),
        "gantt" => cmd_gantt(args),
        "help" | "--help" | "-h" => {
            print!("{}", usage());
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command '{other}'\n\n{}", usage()))),
    }
}

/// Usage text.
pub fn usage() -> String {
    "\
bbsched — multi-resource HPC scheduling toolkit (BBSched, HPDC'19)

USAGE: bbsched <command> [--option value]... [--flag]...

COMMANDS
  generate   Generate a calibrated synthetic trace
             --machine cori|theta  --jobs N  --seed S  --scale F
             --load F  --workload Original|S1..S7  --out PATH  [--swf]
  stats      Print trace statistics (Table-2 style)
             --trace PATH
  simulate   Run one policy over a trace and print its metrics
             --trace PATH | (--machine + --jobs [--workload])
             --machine cori|theta  --scale F  --policy NAME  --gens G
             --window N  --starvation-bound N  --threads T
             --backfill easy|conservative|conservative-rebuild
             --backfill-scope window|queue
             --dynamic-window MIN,MAX,FRAC  [--out result.json]
  compare    Run the full §4.3 roster on one workload and print the grid
             --machine cori|theta  --workload W  --jobs N  --scale F
             --gens G  --threads T  (same scheduler knobs as simulate)
             --fork-at T [--warm-policy NAME]  warm one run to virtual
               time T, then branch every roster policy from that snapshot
               (what-if forking; metrics cover the continuations)
  replay     Drive the scheduler core online from a job-event stream and
             print one JSON decision per line to stdout (summary on stderr)
             --events PATH|-  --machine cori|theta  --scale F
             --policy NAME  --gens G  (same scheduler knobs as simulate)
             Checkpointed replay (DESIGN.md \u{a7}12):
             --checkpoint PATH [--checkpoint-every N]  write a resumable
               snapshot (every N fed events, and on --stop-after)
             --checkpoint-encoding json|binary  (default json)
             --stop-after N   stop after feeding N events (no final flush)
             --resume PATH    continue from a checkpoint in a fresh
               process; the first events-fed lines of --events are skipped
             Events (one JSON object per line):
               {\"type\":\"submit\",\"job\":{...}} | {\"type\":\"finish\",\"id\":N,\"time\":T}
  serve      Long-running scheduler daemon: journaled events, rolling
             snapshots, crash recovery, live policy hot-swap (DESIGN.md \u{a7}13)
             --events PATH|-  (same scheduler knobs as replay for a
               fresh start)
             --journal DIR          write-ahead journal + snapshots here
             --snapshot-every N     rolling snapshot every N input lines
             --snapshot-retain K    keep the newest K snapshots (default 3)
             --snapshot-format json|binary  (default binary)
             --recover DIR          resume from DIR's newest valid
               snapshot + journal tail, then continue with --events
             --stats-every N        JSON stats line to stderr every N
               scheduling invocations
             Control events (journaled, replayed on recovery):
               {\"type\":\"set-policy\",\"name\":\"Baseline\"}
             SIGTERM drains gracefully: final snapshot, then exit 0.
  snapshot   Inspect checkpoint/snapshot files without loading a core
             snapshot inspect FILE   print schema version, encoding,
               invocations, queue depth, running jobs
  timeline   Export a utilization timeline CSV from a saved result
             --result PATH  --resource nodes|bb  --dt SECONDS  --out PATH
  gantt      ASCII utilization chart of a saved result
             --result PATH  [--width N]  [--resource nodes|bb|ssd]
  help       This text.

Policies: Baseline, Weighted, Weighted_CPU, Weighted_BB, Constrained_CPU,
Constrained_BB, Constrained_SSD, Bin_Packing, BBSched
"
    .to_string()
}

pub(crate) fn parse_machine(name: &str) -> Result<MachineProfile, String> {
    match name.to_ascii_lowercase().as_str() {
        "cori" => Ok(MachineProfile::cori()),
        "theta" => Ok(MachineProfile::theta()),
        other => Err(format!("unknown machine '{other}' (cori|theta)")),
    }
}

fn parse_workload(name: &str) -> Result<Workload, String> {
    match name.to_ascii_uppercase().as_str() {
        "ORIGINAL" => Ok(Workload::Original),
        "S1" => Ok(Workload::S1),
        "S2" => Ok(Workload::S2),
        "S3" => Ok(Workload::S3),
        "S4" => Ok(Workload::S4),
        "S5" => Ok(Workload::S5),
        "S6" => Ok(Workload::S6),
        "S7" => Ok(Workload::S7),
        other => Err(format!("unknown workload '{other}' (Original, S1..S7)")),
    }
}

pub(crate) fn parse_policy(name: &str) -> Result<PolicyKind, String> {
    let all = [
        PolicyKind::Baseline,
        PolicyKind::Weighted,
        PolicyKind::WeightedCpu,
        PolicyKind::WeightedBb,
        PolicyKind::ConstrainedCpu,
        PolicyKind::ConstrainedBb,
        PolicyKind::ConstrainedSsd,
        PolicyKind::BinPacking,
        PolicyKind::BbSched,
    ];
    all.into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown policy '{name}'"))
}

fn load_trace(path: &str) -> Result<Trace, CliError> {
    let p = Path::new(path);
    let result = if path.ends_with(".swf") { swf::read_swf(p) } else { Trace::load_jsonl(p) };
    result.map_err(|e| CliError::Input(format!("cannot load trace '{path}': {e}")))
}

/// Builds a trace either from `--trace` or by generation.
fn trace_from_args(args: &Args) -> Result<(Trace, MachineProfile), CliError> {
    let scale: f64 = args.get_parsed("scale", 0.05)?;
    let machine = parse_machine(args.get_or("machine", "theta"))?;
    let profile = if (scale - 1.0).abs() < f64::EPSILON { machine } else { machine.scaled(scale) };
    let trace = match args.get("trace") {
        Some(path) => load_trace(path)?,
        None => {
            let n_jobs = args.get_parsed("jobs", 1_000usize)?;
            let seed = args.get_parsed("seed", 7u64)?;
            let load_factor = args.get_parsed("load", 1.15f64)?;
            let base = generate(
                &profile,
                &GeneratorConfig { n_jobs, seed, load_factor, ..GeneratorConfig::default() },
            );
            let workload = parse_workload(args.get_or("workload", "Original"))?;
            workload.apply_scaled(&base, seed ^ 0x5eed, scale)
        }
    };
    Ok((trace, profile))
}

fn cmd_generate(args: &Args) -> Result<(), CliError> {
    args.check_known(&["machine", "jobs", "seed", "scale", "load", "workload", "out", "swf"])?;
    let (trace, _) = trace_from_args(args)?;
    let out = args.require("out")?;
    let result = if args.flag("swf") || out.ends_with(".swf") {
        swf::write_swf(&trace, Path::new(out))
    } else {
        trace.save_jsonl(Path::new(out))
    };
    result.map_err(|e| CliError::Output(format!("cannot write '{out}': {e}")))?;
    let s = trace.stats();
    println!(
        "wrote {} jobs to {out} ({:.2}% with burst buffer, span {:.1} days)",
        s.n_jobs,
        s.bb_fraction() * 100.0,
        s.span_seconds / 86_400.0
    );
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), CliError> {
    args.check_known(&["trace"])?;
    let trace = load_trace(args.require("trace")?)?;
    let s = trace.stats();
    println!("jobs:                {}", s.n_jobs);
    println!("span:                {:.2} days", s.span_seconds / 86_400.0);
    println!("node-seconds:        {:.3e}", s.total_node_seconds);
    println!("jobs with BB:        {} ({:.3}%)", s.jobs_with_bb, s.bb_fraction() * 100.0);
    println!("jobs with BB > 1TB:  {}", s.jobs_with_bb_over_1tb);
    println!("jobs with local SSD: {}", s.jobs_with_ssd);
    match s.bb_range_gb {
        Some((lo, hi)) => println!("BB range:            [{lo:.1} GB, {:.2} TB]", hi / 1000.0),
        None => println!("BB range:            -"),
    }
    println!("aggregate BB:        {:.2} TB", s.total_bb_gb / 1000.0);
    Ok(())
}

/// The scheduler knobs shared by `simulate`, `compare`, `replay`, and
/// `serve`.
pub(crate) const SCHED_ARGS: &[&str] = &[
    "base",
    "window",
    "starvation-bound",
    "backfill",
    "backfill-scope",
    "dynamic-window",
    "conservative",
    "queue-backfill",
];

/// Loads a saved [`SimResult`] JSON file.
fn load_result(path: &str) -> Result<SimResult, CliError> {
    let bytes =
        std::fs::read(path).map_err(|e| CliError::Input(format!("cannot read '{path}': {e}")))?;
    serde_json::from_slice(&bytes)
        .map_err(|e| CliError::Input(format!("cannot parse '{path}': {e}")))
}

/// Parses `--dynamic-window min,max,frac` (e.g. `10,50,0.25`).
fn parse_dynamic_window(spec: &str) -> Result<DynamicWindow, String> {
    let parts: Vec<&str> = spec.split(',').map(str::trim).collect();
    if parts.len() != 3 {
        return Err(format!("--dynamic-window wants 'min,max,frac', got '{spec}'"));
    }
    let min: usize =
        parts[0].parse().map_err(|e| format!("--dynamic-window min '{}': {e}", parts[0]))?;
    let max: usize =
        parts[1].parse().map_err(|e| format!("--dynamic-window max '{}': {e}", parts[1]))?;
    let queue_fraction: f64 =
        parts[2].parse().map_err(|e| format!("--dynamic-window frac '{}': {e}", parts[2]))?;
    let dw = DynamicWindow { min, max, queue_fraction };
    dw.validate().map_err(|e| e.to_string())?;
    Ok(dw)
}

#[allow(clippy::field_reassign_with_default)]
pub(crate) fn sim_config(args: &Args, machine: &MachineProfile) -> Result<SimConfig, String> {
    let mut cfg = SimConfig::default();
    cfg.base =
        match args.get_or("base", if machine.system.name == "theta" { "wfp" } else { "fcfs" }) {
            b if b.eq_ignore_ascii_case("fcfs") => BaseScheduler::Fcfs,
            b if b.eq_ignore_ascii_case("wfp") => BaseScheduler::Wfp,
            other => return Err(format!("unknown base scheduler '{other}' (fcfs|wfp)")),
        };
    cfg.window.size = args.get_parsed("window", cfg.window.size)?;
    cfg.window.starvation_bound =
        args.get_parsed("starvation-bound", cfg.window.starvation_bound)?;
    // `--backfill easy|conservative` is the canonical spelling;
    // `--conservative` stays as a legacy alias.
    cfg.backfill_algorithm = match args.get("backfill") {
        Some(b) if b.eq_ignore_ascii_case("easy") => BackfillAlgorithm::Easy,
        Some(b) if b.eq_ignore_ascii_case("conservative") => BackfillAlgorithm::Conservative,
        // The frozen rebuild-per-pass reference path (bit-identical
        // schedules, pre-incremental cost) — for profiling comparisons.
        Some(b) if b.eq_ignore_ascii_case("conservative-rebuild") => {
            BackfillAlgorithm::ConservativeRebuild
        }
        Some(other) => {
            return Err(format!(
                "unknown backfill algorithm '{other}' (easy|conservative|conservative-rebuild)"
            ))
        }
        None if args.flag("conservative") => BackfillAlgorithm::Conservative,
        None => BackfillAlgorithm::Easy,
    };
    // `--backfill-scope window|queue`; `--queue-backfill` is the legacy
    // alias for the queue scope.
    cfg.backfill = match args.get("backfill-scope") {
        Some(s) if s.eq_ignore_ascii_case("window") => bbsched_sim::BackfillScope::Window,
        Some(s) if s.eq_ignore_ascii_case("queue") => bbsched_sim::BackfillScope::Queue,
        Some(other) => return Err(format!("unknown backfill scope '{other}' (window|queue)")),
        None if args.flag("queue-backfill") => bbsched_sim::BackfillScope::Queue,
        None => bbsched_sim::BackfillScope::Window,
    };
    if let Some(spec) = args.get("dynamic-window") {
        cfg.dynamic_window = Some(parse_dynamic_window(spec)?);
    }
    cfg.validate().map_err(|e| e.to_string())?;
    Ok(cfg)
}

fn print_summary(result: &SimResult) {
    let m = MethodSummary::from_result(result, MeasurementWindow::default());
    let waits = DistributionStats::of_waits(&result.records);
    println!("policy:          {} (base {})", result.policy, result.base);
    println!(
        "jobs:            {} ({} backfilled, {} starvation-forced)",
        result.records.len(),
        result.backfilled,
        result.starvation_forced
    );
    println!("node usage:      {:.2}%", m.node_usage() * 100.0);
    println!("BB usage:        {:.2}%", m.bb_usage() * 100.0);
    if result.system.has_local_ssd() {
        println!(
            "SSD usage:       {:.2}% (wasted {:.2}%)",
            m.ssd_usage() * 100.0,
            m.ssd_wasted() * 100.0
        );
    }
    println!("avg wait:        {:.2} h", m.avg_wait / 3600.0);
    println!(
        "wait P50/P90/P99: {:.2} / {:.2} / {:.2} h",
        waits.p50 / 3600.0,
        waits.p90 / 3600.0,
        waits.p99 / 3600.0
    );
    println!("avg slowdown:    {:.2}", m.avg_slowdown);
    println!("makespan:        {:.2} days", result.makespan / 86_400.0);
}

/// Parses `--threads` (worker threads for GA evaluation and the compare
/// roster; 1 = serial, the default).
pub(crate) fn parse_threads(args: &Args) -> Result<usize, String> {
    let threads: usize = args.get_parsed("threads", 1usize)?;
    if threads == 0 {
        return Err("--threads must be >= 1".to_string());
    }
    Ok(threads)
}

fn cmd_simulate(args: &Args) -> Result<(), CliError> {
    let mut known = vec![
        "trace", "machine", "jobs", "seed", "scale", "load", "workload", "policy", "gens",
        "threads", "out",
    ];
    known.extend_from_slice(SCHED_ARGS);
    args.check_known(&known)?;
    let (trace, profile) = trace_from_args(args)?;
    let kind = parse_policy(args.get_or("policy", "BBSched"))?;
    let cfg = sim_config(args, &profile)?;
    let ga = GaParams {
        generations: args.get_parsed("gens", 500usize)?,
        base_seed: args.get_parsed("seed", 7u64)?,
        threads: parse_threads(args)?,
        ..GaParams::default()
    };
    let policy: Box<dyn SelectionPolicy> = kind.build(ga);
    let result = Simulator::new(&profile.system, &trace, cfg)
        .map_err(|e| CliError::Run(e.to_string()))?
        .run(policy);
    print_summary(&result);
    if let Some(out) = args.get("out") {
        let bytes = serde_json::to_vec_pretty(&result)
            .map_err(|e| CliError::Output(format!("serialize: {e}")))?;
        std::fs::write(out, bytes)
            .map_err(|e| CliError::Output(format!("cannot write '{out}': {e}")))?;
        println!("full result written to {out}");
    }
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), CliError> {
    let mut known = vec![
        "trace",
        "machine",
        "jobs",
        "seed",
        "scale",
        "load",
        "workload",
        "gens",
        "threads",
        "fork-at",
        "warm-policy",
    ];
    known.extend_from_slice(SCHED_ARGS);
    args.check_known(&known)?;
    let (trace, profile) = trace_from_args(args)?;
    let cfg = sim_config(args, &profile)?;
    let threads = parse_threads(args)?;
    let ga = GaParams {
        generations: args.get_parsed("gens", 200usize)?,
        base_seed: args.get_parsed("seed", 7u64)?,
        ..GaParams::default()
    };
    let roster: Vec<PolicyKind> = if profile.system.has_local_ssd() {
        PolicyKind::ssd_roster().to_vec()
    } else {
        PolicyKind::main_roster().to_vec()
    };
    // With `--fork-at T`, the trace is warmed up once under the warm
    // policy to virtual time T, and every roster entry continues from the
    // same mid-trace snapshot (what-if forking): the grid then measures
    // only the diverging continuations. Without it, each entry is an
    // independent full simulation. Either way, whole-task batch jobs in
    // roster order keep the grid byte-identical whatever the thread count.
    let fork_at: Option<f64> = match args.get("fork-at") {
        None => None,
        Some(_) => {
            let t = args.get_parsed("fork-at", 0.0f64)?;
            if !t.is_finite() || t < 0.0 {
                return Err(CliError::Usage("--fork-at must be a non-negative time".to_string()));
            }
            Some(t)
        }
    };
    if args.get("warm-policy").is_some() && fork_at.is_none() {
        return Err(CliError::Usage("--warm-policy needs --fork-at".to_string()));
    }
    let sim =
        Simulator::new(&profile.system, &trace, cfg).map_err(|e| CliError::Run(e.to_string()))?;
    let warm = match fork_at {
        None => None,
        Some(t) => {
            let warm_kind = parse_policy(args.get_or("warm-policy", "Baseline"))?;
            let warm =
                sim.warm_until(warm_kind.build(ga), t).map_err(|e| CliError::Run(e.to_string()))?;
            println!(
                "forked at t={t} s after {} of {} jobs (warmed under {}); \
                 metrics cover the continuations only",
                warm.consumed,
                trace.len(),
                warm_kind.name()
            );
            Some(warm)
        }
    };
    let jobs: Vec<_> = roster
        .iter()
        .map(|&kind| {
            let (sim, warm) = (&sim, warm.as_ref());
            move || -> Result<SimResult, CliError> {
                Ok(match warm {
                    Some(w) => sim
                        .continue_from(w, kind.build(ga))
                        .map_err(|e| CliError::Run(e.to_string()))?,
                    None => sim.run_shared(kind.build(ga)),
                })
            }
        })
        .collect();
    let results: Vec<SimResult> =
        bbsched_core::parallel::run_batch(threads, jobs).into_iter().collect::<Result<_, _>>()?;
    match &warm {
        // Forked grid: per-branch continuation metrics plus the wait delta
        // against the first roster entry (the branches share their prefix,
        // so the delta is attributable to the policy alone).
        Some(w) => {
            let fork = ForkSummary::from_continuations(
                fork_at.expect("warm implies fork-at"),
                w.consumed,
                &results,
                MeasurementWindow::default(),
            );
            let base = roster[0].name();
            println!(
                "{:<16} {:>9} {:>9} {:>10} {:>10} {:>12}",
                "Method", "Node", "BB", "Avg wait", "Slowdown", "Dwait(base)"
            );
            for (kind, m) in roster.iter().zip(&fork.branches) {
                let delta = fork.wait_delta(kind.name(), base).unwrap_or(0.0);
                println!(
                    "{:<16} {:>8.2}% {:>8.2}% {:>9.2}h {:>10.2} {:>11.2}h",
                    kind.name(),
                    m.node_usage() * 100.0,
                    m.bb_usage() * 100.0,
                    m.avg_wait / 3600.0,
                    m.avg_slowdown,
                    delta / 3600.0
                );
            }
        }
        None => {
            println!(
                "{:<16} {:>9} {:>9} {:>10} {:>10}",
                "Method", "Node", "BB", "Avg wait", "Slowdown"
            );
            for (kind, result) in roster.iter().zip(&results) {
                let m = MethodSummary::from_result(result, MeasurementWindow::default());
                println!(
                    "{:<16} {:>8.2}% {:>8.2}% {:>9.2}h {:>10.2}",
                    kind.name(),
                    m.node_usage() * 100.0,
                    m.bb_usage() * 100.0,
                    m.avg_wait / 3600.0,
                    m.avg_slowdown
                );
            }
        }
    }
    Ok(())
}

/// A [`SchedObserver`] that streams each decision to a writer as it is
/// made, in the canonical JSON-line encoding. IO failures are latched
/// (the observer hooks cannot return errors) and surfaced after the run.
pub(crate) struct DecisionStream<W: Write> {
    pub(crate) out: W,
    pub(crate) io_error: Option<std::io::Error>,
    /// Flush after every line — the daemon's mode, where a downstream
    /// consumer acts on each decision as it appears.
    pub(crate) flush_each: bool,
}

impl<W: Write> DecisionStream<W> {
    pub(crate) fn new(out: W) -> Self {
        Self { out, io_error: None, flush_each: false }
    }
}

impl<W: Write> SchedObserver for DecisionStream<W> {
    fn on_decision(&mut self, now: f64, decision: &Decision) {
        if self.io_error.is_some() {
            return;
        }
        let result = writeln!(self.out, "{}", decision.json_line(now)).and_then(|()| {
            if self.flush_each {
                self.out.flush()
            } else {
                Ok(())
            }
        });
        if let Err(e) = result {
            self.io_error = Some(e);
        }
    }
}

/// A `cli replay` checkpoint file: the replayer's [`ReplaySnapshot`]
/// plus the policy identity and GA hyper-parameters needed to rebuild
/// the policy object in the resuming process (a policy is a trait object
/// the snapshot itself cannot carry).
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub(crate) struct ReplayCheckpoint {
    pub(crate) replay: ReplaySnapshot,
    pub(crate) policy: PolicyKind,
    pub(crate) ga: GaParams,
}

/// [`Driver`] view of a replayer plus the policy identity its
/// checkpoint must carry — the adapter that routes `cli replay
/// --checkpoint` through the durability layer's single write path.
struct ReplayDriver<'a, 'o> {
    replayer: &'a Replayer<'o>,
    policy: PolicyKind,
    ga: GaParams,
}

impl Driver for ReplayDriver<'_, '_> {
    type Snapshot = ReplayCheckpoint;

    fn snapshot(&self) -> ReplayCheckpoint {
        ReplayCheckpoint { replay: self.replayer.snapshot(), policy: self.policy, ga: self.ga }
    }

    fn position(&self) -> u64 {
        self.replayer.events_fed()
    }
}

/// Writes a replay checkpoint through [`durability::write_checkpoint`]
/// (atomic temp + fsync + rename; the pre-durability path skipped the
/// fsync, so a power cut could surface an empty rename target).
fn write_replay_checkpoint(
    driver: &ReplayDriver<'_, '_>,
    path: &str,
    encoding: Encoding,
) -> Result<(), CliError> {
    durability::write_checkpoint(driver, Path::new(path), encoding)
        .map_err(|e| CliError::Output(format!("cannot write checkpoint '{path}': {e}")))
}

fn read_replay_checkpoint(path: &str) -> Result<ReplayCheckpoint, CliError> {
    durability::read_checkpoint(Path::new(path))
        .map(|(ckpt, _)| ckpt)
        .map_err(|e| CliError::Input(format!("cannot read checkpoint '{path}': {e}")))
}

fn cmd_replay(args: &Args) -> Result<(), CliError> {
    let mut known = vec![
        "events",
        "machine",
        "scale",
        "policy",
        "gens",
        "seed",
        "threads",
        "checkpoint",
        "checkpoint-every",
        "checkpoint-encoding",
        "resume",
        "stop-after",
    ];
    known.extend_from_slice(SCHED_ARGS);
    args.check_known(&known)?;
    let checkpoint_path = args.get("checkpoint");
    let checkpoint_encoding: Encoding =
        args.get_or("checkpoint-encoding", "json").parse().map_err(CliError::Usage)?;
    let checkpoint_every: Option<u64> = match args.get("checkpoint-every") {
        None => None,
        Some(_) => {
            if checkpoint_path.is_none() {
                return Err(CliError::Usage(
                    "--checkpoint-every needs --checkpoint PATH".to_string(),
                ));
            }
            let every: u64 = args.get_parsed("checkpoint-every", 0u64)?;
            if every == 0 {
                return Err(CliError::Usage("--checkpoint-every must be >= 1".to_string()));
            }
            Some(every)
        }
    };
    let stop_after: Option<u64> = match args.get("stop-after") {
        None => None,
        Some(_) => Some(args.get_parsed("stop-after", 0u64)?),
    };

    // A fresh run builds everything from flags; a resumed run rebuilds
    // everything from the checkpoint (system, configuration, policy and
    // its cross-invocation state all come from the snapshot — scheduler
    // flags are not consulted).
    let resume = match args.get("resume") {
        Some(path) => Some(read_replay_checkpoint(path)?),
        None => None,
    };

    let path = args.require("events")?;
    let reader: Box<dyn BufRead> = if path == "-" {
        Box::new(std::io::stdin().lock())
    } else {
        let file = std::fs::File::open(path)
            .map_err(|e| CliError::Input(format!("cannot open '{path}': {e}")))?;
        Box::new(std::io::BufReader::new(file))
    };

    let stdout = std::io::stdout();
    let mut stream = DecisionStream::new(std::io::BufWriter::new(stdout.lock()));
    {
        let (mut replayer, kind, ga, skip) = match resume {
            Some(ckpt) => {
                let policy = ckpt.policy.build(ckpt.ga);
                let skip = ckpt.replay.events_fed;
                let replayer = Replayer::restore(ckpt.replay, policy, vec![&mut stream])
                    .map_err(|e| CliError::Run(format!("cannot resume: {e}")))?;
                eprintln!("resumed from checkpoint at event {skip}");
                (replayer, ckpt.policy, ckpt.ga, skip)
            }
            None => {
                let scale: f64 = args.get_parsed("scale", 0.05)?;
                let machine = parse_machine(args.get_or("machine", "theta"))?;
                let profile = if (scale - 1.0).abs() < f64::EPSILON {
                    machine
                } else {
                    machine.scaled(scale)
                };
                let kind = parse_policy(args.get_or("policy", "BBSched"))?;
                let cfg = sim_config(args, &profile)?.sched();
                let ga = GaParams {
                    generations: args.get_parsed("gens", 500usize)?,
                    base_seed: args.get_parsed("seed", 7u64)?,
                    threads: parse_threads(args)?,
                    ..GaParams::default()
                };
                let replayer =
                    Replayer::new(&profile.system, cfg, kind.build(ga), vec![&mut stream])
                        .map_err(|e| CliError::Run(e.to_string()))?;
                (replayer, kind, ga, 0)
            }
        };

        let mut events = 0u64; // events seen in the stream, fed or skipped
        let mut stopped = false;
        for (n, line) in reader.lines().enumerate() {
            let line = line.map_err(|e| CliError::Input(format!("{path} line {}: {e}", n + 1)))?;
            if line.trim().is_empty() {
                continue;
            }
            events += 1;
            if events <= skip {
                continue; // already applied before the checkpoint
            }
            let event = JobEvent::parse(&line)
                .map_err(|e| CliError::Input(format!("{path} line {}: {e}", n + 1)))?;
            replayer
                .feed(event)
                .map_err(|e| CliError::Run(format!("{path} line {}: {e}", n + 1)))?;
            if let (Some(every), Some(ckpt_path)) = (checkpoint_every, checkpoint_path) {
                if replayer.events_fed() % every == 0 {
                    let driver = ReplayDriver { replayer: &replayer, policy: kind, ga };
                    write_replay_checkpoint(&driver, ckpt_path, checkpoint_encoding)?;
                }
            }
            if stop_after.is_some_and(|limit| replayer.events_fed() >= limit) {
                stopped = true;
                break;
            }
        }

        if stopped {
            // Stop *without* flushing the pending batch: the continuation
            // (via --resume) owns every decision from here on, so the
            // concatenated decision streams of the two processes equal
            // the uninterrupted run byte for byte.
            if let Some(ckpt_path) = checkpoint_path {
                let driver = ReplayDriver { replayer: &replayer, policy: kind, ga };
                write_replay_checkpoint(&driver, ckpt_path, checkpoint_encoding)?;
                eprintln!(
                    "stopped after {} events; checkpoint written to {ckpt_path}",
                    replayer.events_fed()
                );
            } else {
                eprintln!("stopped after {} events", replayer.events_fed());
            }
        } else {
            let fed = replayer.events_fed();
            let summary = replayer.finish().map_err(|e| CliError::Run(e.to_string()))?;
            eprintln!(
                "replayed {fed} events ({skip} skipped): {} jobs ({} clamped), {} finishes, \
                 {} invocations, makespan {:.1} s, left {} waiting / {} running",
                summary.jobs,
                summary.clamped_jobs,
                summary.finishes,
                summary.invocations,
                summary.makespan,
                summary.left_waiting,
                summary.left_running
            );
        }
    }
    stream.out.flush().ok();
    if let Some(e) = stream.io_error {
        return Err(CliError::Output(format!("cannot write decision stream: {e}")));
    }
    Ok(())
}

/// `snapshot inspect FILE`: shallow facts about a checkpoint/snapshot
/// file — schema version, encoding, invocation count, queue depth,
/// running jobs — read from the value tree without ever constructing a
/// scheduler core.
fn cmd_snapshot(args: &Args) -> Result<(), CliError> {
    args.check_known_with(&[], 2)?;
    let [verb, file] = args.positionals() else {
        return Err(CliError::Usage("usage: snapshot inspect FILE".to_string()));
    };
    if verb != "inspect" {
        return Err(CliError::Usage(format!("unknown snapshot verb '{verb}' (inspect)")));
    }
    let bytes =
        std::fs::read(file).map_err(|e| CliError::Input(format!("cannot read '{file}': {e}")))?;
    let info = durability::inspect_bytes(&bytes)
        .map_err(|e| CliError::Input(format!("cannot inspect '{file}': {e}")))?;
    let opt = |v: Option<String>| v.unwrap_or_else(|| "-".to_string());
    println!("file:           {file} ({} bytes)", bytes.len());
    println!("kind:           {}", info.kind);
    println!("encoding:       {}", info.encoding);
    println!("schema version: {}", opt(info.schema_version.map(|v| v.to_string())));
    println!("policy:         {}", opt(info.policy));
    println!("invocations:    {}", opt(info.invocations.map(|v| v.to_string())));
    println!("clock:          {}", opt(info.clock.map(|v| format!("{v:.1} s"))));
    println!("jobs submitted: {}", opt(info.jobs_submitted.map(|v| v.to_string())));
    println!("queue depth:    {}", opt(info.queue_depth.map(|v| v.to_string())));
    println!("running jobs:   {}", opt(info.running_jobs.map(|v| v.to_string())));
    Ok(())
}

fn cmd_timeline(args: &Args) -> Result<(), CliError> {
    args.check_known(&["result", "resource", "dt", "out"])?;
    let path = args.require("result")?;
    let result: SimResult = load_result(path)?;
    let kind = match args.get_or("resource", "nodes") {
        "nodes" => UsageKind::Nodes,
        "bb" => UsageKind::BurstBuffer,
        "ssd" => UsageKind::LocalSsdUsed,
        other => return Err(CliError::Usage(format!("unknown resource '{other}' (nodes|bb|ssd)"))),
    };
    let dt: f64 = args.get_parsed("dt", 600.0)?;
    let t1 = result.makespan;
    let series = bbsched_metrics::stats::utilization_timeline(
        &result.records,
        &result.system,
        kind,
        0.0,
        t1,
        dt,
    );
    let out = args.require("out")?;
    bbsched_metrics::stats::write_timeline_csv(&series, Path::new(out))
        .map_err(|e| CliError::Output(format!("cannot write '{out}': {e}")))?;
    println!("wrote {} samples to {out}", series.len());
    Ok(())
}

fn cmd_gantt(args: &Args) -> Result<(), CliError> {
    args.check_known(&["result", "width", "resource"])?;
    let path = args.require("result")?;
    let result: SimResult = load_result(path)?;
    let width: usize = args.get_parsed("width", 72usize)?;
    let kind = match args.get_or("resource", "nodes") {
        "nodes" => UsageKind::Nodes,
        "bb" => UsageKind::BurstBuffer,
        "ssd" => UsageKind::LocalSsdUsed,
        other => return Err(CliError::Usage(format!("unknown resource '{other}' (nodes|bb|ssd)"))),
    };
    let t1 = result.makespan.max(1.0);
    let dt = t1 / width.max(1) as f64;
    let series = bbsched_metrics::stats::utilization_timeline(
        &result.records,
        &result.system,
        kind,
        0.0,
        t1,
        dt,
    );
    println!(
        "{} utilization over {:.2} days ({} on {}, each column {:.1} h):\n",
        args.get_or("resource", "nodes"),
        t1 / 86_400.0,
        result.policy,
        result.system.name,
        dt / 3_600.0,
    );
    const LEVELS: &[char] = &[' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    for row in (0..5).rev() {
        let lo = row as f64 * 0.2;
        let mut line = String::with_capacity(width + 8);
        line.push_str(&format!("{:>3.0}% |", (lo + 0.2) * 100.0));
        for &(_, u) in series.iter().take(width) {
            let within = ((u - lo) / 0.2).clamp(0.0, 1.0);
            let idx = (within * (LEVELS.len() - 1) as f64).round() as usize;
            line.push(LEVELS[idx]);
        }
        println!("{line}");
    }
    println!("     +{}", "-".repeat(width));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parsers_accept_paper_names() {
        assert!(parse_machine("Cori").is_ok());
        assert!(parse_machine("THETA").is_ok());
        assert!(parse_machine("summit").is_err());
        assert!(parse_workload("s4").is_ok());
        assert!(parse_workload("original").is_ok());
        assert!(parse_workload("s9").is_err());
        assert_eq!(parse_policy("bbsched").unwrap(), PolicyKind::BbSched);
        assert_eq!(parse_policy("Bin_Packing").unwrap(), PolicyKind::BinPacking);
        assert!(parse_policy("magic").is_err());
    }

    #[test]
    fn generate_stats_simulate_pipeline() {
        let dir = std::env::temp_dir().join(format!("bbsched_cli_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t.jsonl");
        let args = Args::parse([
            "generate",
            "--machine",
            "theta",
            "--jobs",
            "80",
            "--scale",
            "0.02",
            "--workload",
            "S2",
            "--out",
            trace_path.to_str().unwrap(),
        ])
        .unwrap();
        run(&args).unwrap();
        assert!(trace_path.exists());

        let args = Args::parse(["stats", "--trace", trace_path.to_str().unwrap()]).unwrap();
        run(&args).unwrap();

        let result_path = dir.join("r.json");
        let args = Args::parse([
            "simulate",
            "--trace",
            trace_path.to_str().unwrap(),
            "--machine",
            "theta",
            "--scale",
            "0.02",
            "--policy",
            "Baseline",
            "--out",
            result_path.to_str().unwrap(),
        ])
        .unwrap();
        run(&args).unwrap();
        assert!(result_path.exists());

        let csv_path = dir.join("tl.csv");
        let args = Args::parse([
            "timeline",
            "--result",
            result_path.to_str().unwrap(),
            "--resource",
            "nodes",
            "--dt",
            "1000",
            "--out",
            csv_path.to_str().unwrap(),
        ])
        .unwrap();
        run(&args).unwrap();
        assert!(csv_path.exists());

        let args =
            Args::parse(["gantt", "--result", result_path.to_str().unwrap(), "--width", "40"])
                .unwrap();
        run(&args).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn swf_generation() {
        let dir = std::env::temp_dir().join(format!("bbsched_cli_swf_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.swf");
        let args = Args::parse([
            "generate",
            "--machine",
            "cori",
            "--jobs",
            "50",
            "--scale",
            "0.02",
            "--out",
            path.to_str().unwrap(),
        ])
        .unwrap();
        run(&args).unwrap();
        let trace = load_trace(path.to_str().unwrap()).unwrap();
        assert_eq!(trace.len(), 50);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scheduler_knobs_parse() {
        let profile = MachineProfile::cori();
        let args = Args::parse([
            "simulate",
            "--window",
            "30",
            "--starvation-bound",
            "17",
            "--backfill",
            "conservative",
            "--backfill-scope",
            "queue",
            "--dynamic-window",
            "5,40,0.3",
        ])
        .unwrap();
        let cfg = sim_config(&args, &profile).unwrap();
        assert_eq!(cfg.window.size, 30);
        assert_eq!(cfg.window.starvation_bound, 17);
        assert_eq!(cfg.backfill_algorithm, BackfillAlgorithm::Conservative);
        assert_eq!(cfg.backfill, bbsched_sim::BackfillScope::Queue);
        assert_eq!(
            cfg.dynamic_window,
            Some(DynamicWindow { min: 5, max: 40, queue_fraction: 0.3 })
        );
    }

    #[test]
    fn legacy_backfill_flags_still_work() {
        let profile = MachineProfile::cori();
        let args = Args::parse(["simulate", "--conservative", "--queue-backfill"]).unwrap();
        let cfg = sim_config(&args, &profile).unwrap();
        assert_eq!(cfg.backfill_algorithm, BackfillAlgorithm::Conservative);
        assert_eq!(cfg.backfill, bbsched_sim::BackfillScope::Queue);
    }

    #[test]
    fn bad_scheduler_knobs_are_rejected() {
        let profile = MachineProfile::cori();
        for bad in [
            vec!["simulate", "--backfill", "aggressive"],
            vec!["simulate", "--backfill-scope", "galaxy"],
            vec!["simulate", "--dynamic-window", "50,10,0.25"],
            vec!["simulate", "--dynamic-window", "5,40"],
            vec!["simulate", "--dynamic-window", "5,40,NaN,9"],
        ] {
            let args = Args::parse(bad.clone()).unwrap();
            assert!(sim_config(&args, &profile).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn threads_flag_parses_and_rejects_zero() {
        let args = Args::parse(["simulate", "--threads", "4"]).unwrap();
        assert_eq!(parse_threads(&args).unwrap(), 4);
        let args = Args::parse(["simulate"]).unwrap();
        assert_eq!(parse_threads(&args).unwrap(), 1, "default is serial");
        let args = Args::parse(["simulate", "--threads", "0"]).unwrap();
        assert!(parse_threads(&args).is_err());
    }

    #[test]
    fn compare_runs_with_worker_threads() {
        let args = Args::parse([
            "compare",
            "--machine",
            "theta",
            "--jobs",
            "40",
            "--scale",
            "0.02",
            "--gens",
            "20",
            "--threads",
            "4",
        ])
        .unwrap();
        run(&args).unwrap();
    }

    #[test]
    fn compare_forks_mid_trace() {
        let args = Args::parse([
            "compare",
            "--machine",
            "theta",
            "--jobs",
            "40",
            "--scale",
            "0.02",
            "--gens",
            "20",
            "--threads",
            "2",
            "--fork-at",
            "5000",
        ])
        .unwrap();
        run(&args).unwrap();

        // --warm-policy without --fork-at, and bad fork times, are usage
        // errors.
        let args =
            Args::parse(["compare", "--machine", "theta", "--warm-policy", "Baseline"]).unwrap();
        assert!(matches!(run(&args), Err(CliError::Usage(_))));
        let args = Args::parse(["compare", "--machine", "theta", "--fork-at", "-3"]).unwrap();
        assert!(matches!(run(&args), Err(CliError::Usage(_))));
    }

    #[test]
    fn unknown_command_and_typo_errors() {
        let args = Args::parse(["frobnicate"]).unwrap();
        assert!(run(&args).is_err());
        let args = Args::parse(["stats", "--trase", "x"]).unwrap();
        assert!(run(&args).is_err());
    }

    #[test]
    fn usage_mentions_every_command() {
        let u = usage();
        for cmd in
            ["generate", "stats", "simulate", "compare", "replay", "serve", "snapshot", "timeline"]
        {
            assert!(u.contains(cmd), "usage must document '{cmd}'");
        }
    }
}
