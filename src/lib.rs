//! # bbsched — Scheduling Beyond CPUs for HPC
//!
//! A from-scratch Rust reproduction of **BBSched** (Fan, Lan, Rich, Allcock,
//! Papka, Austin, Paul — *Scheduling Beyond CPUs for HPC*, HPDC 2019): a
//! multi-resource HPC scheduling scheme that co-schedules compute nodes,
//! shared burst buffers, and local SSDs by solving a multi-objective
//! optimization problem with a genetic algorithm at every scheduling
//! invocation.
//!
//! This facade crate re-exports the workspace's sub-crates:
//!
//! * [`core`] — MOO formulations, GA solver, Pareto fronts, decision rules,
//!   window bookkeeping ([`bbsched_core`]).
//! * [`workloads`] — Cori/Theta-calibrated synthetic trace generators and
//!   the S1–S7 stress transforms ([`bbsched_workloads`]).
//! * [`policies`] — the eight multi-resource selection methods compared in
//!   the paper ([`bbsched_policies`]).
//! * [`sched`] — the driver-agnostic scheduler-service core: queue, window,
//!   starvation bound, allocation ledger, backfilling, and the six-phase
//!   invocation behind `submit`/`job_finished`/`invoke`, plus the online
//!   replay driver ([`bbsched_sched`]).
//! * [`sim`] — the discrete-event cluster simulator, now a trace-driven
//!   *driver* of the service core, with FCFS/WFP base scheduling and
//!   multi-resource EASY backfilling ([`bbsched_sim`]).
//! * [`metrics`] — node/burst-buffer usage, wait time, bounded slowdown,
//!   breakdowns, and Kiviat normalization ([`bbsched_metrics`]).
//!
//! See `examples/quickstart.rs` for a five-minute tour and DESIGN.md for the
//! full system inventory and experiment index.

pub use bbsched_core as core;
pub use bbsched_metrics as metrics;
pub use bbsched_policies as policies;
pub use bbsched_sched as sched;
pub use bbsched_sim as sim;
pub use bbsched_workloads as workloads;
